//! Derive macros for the offline serde shim.
//!
//! The shim's `Serialize`/`Deserialize` are marker traits, so the derives only need to
//! emit `impl serde::Serialize for T {}` blocks. The input is parsed with a tiny hand
//! parser (no `syn`/`quote` — they are unavailable offline): it extracts the type name and
//! the generic parameter names, and mirrors the generics onto the impl with
//! `Serialize`/`Deserialize` bounds, exactly like real serde's default bound inference.

#![warn(missing_docs)]

use proc_macro::{TokenStream, TokenTree};

/// The parsed shape of a `derive` input: type name plus generic parameter names.
struct DeriveInput {
    name: String,
    /// Type/lifetime parameter names in declaration order, e.g. `["'a", "T"]`.
    generics: Vec<String>,
}

/// Extracts the type name and generic parameter names from a `struct`/`enum`/`union` item.
fn parse_input(input: TokenStream) -> DeriveInput {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes, doc comments, visibility, and modifiers until the item keyword.
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the attribute group that follows `#`.
                let _ = tokens.next();
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" || word == "union" {
                    break;
                }
                // `pub`, `pub(crate)` (group consumed on next iteration), `r#ident`, etc.
            }
            _ => {}
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            let mut expect_param = true;
            while let Some(tt) = tokens.next() {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        expect_param = true;
                    }
                    TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && expect_param => {
                        // A lifetime parameter: join the quote with the following ident.
                        if let Some(TokenTree::Ident(id)) = tokens.next() {
                            generics.push(format!("'{id}"));
                        }
                        expect_param = false;
                    }
                    TokenTree::Ident(id) if depth == 1 && expect_param => {
                        let word = id.to_string();
                        if word != "const" {
                            generics.push(word);
                            expect_param = false;
                        }
                        // `const N: usize` params would need their own handling; none of
                        // the workspace types use them with serde derives.
                    }
                    _ => {
                        if depth == 1 {
                            // Inside a bound (`T: Clone`) or default (`= u64`): not a new
                            // parameter until the next top-level comma.
                            expect_param = false;
                        }
                    }
                }
            }
        }
    }
    DeriveInput { name, generics }
}

/// Builds `impl<PARAMS> TRAIT for NAME<PARAMS> {}` with `TRAIT` bounds on type params.
fn marker_impl(input: &DeriveInput, trait_path: &str, extra_lifetime: Option<&str>) -> String {
    let mut impl_params: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        impl_params.push(lt.to_string());
    }
    for g in &input.generics {
        if g.starts_with('\'') {
            impl_params.push(g.clone());
        } else {
            impl_params.push(format!("{g}: {trait_path}"));
        }
    }
    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let ty_generics = if input.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", input.generics.join(", "))
    };
    let trait_with_lt = match extra_lifetime {
        Some(lt) => format!("{trait_path}<{lt}>"),
        None => trait_path.to_string(),
    };
    format!(
        "#[automatically_derived] impl{impl_generics} {trait_with_lt} for {}{ty_generics} {{}}",
        input.name
    )
}

/// Derives the shim's marker `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    marker_impl(&parsed, "serde::Serialize", None)
        .parse()
        .expect("serde shim derive emitted invalid tokens")
}

/// Derives the shim's marker `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    marker_impl(&parsed, "serde::Deserialize", Some("'de"))
        .parse()
        .expect("serde shim derive emitted invalid tokens")
}
