//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand) 0.8 crate.
//!
//! The build environment of this workspace has no access to crates.io, so the handful of
//! `rand` APIs the simulation stack uses are re-implemented here behind the same paths and
//! signatures (`rand::Rng`, `rand::SeedableRng`, `rand::rngs::SmallRng`,
//! `rand::seq::SliceRandom`, `rand::seq::index::sample`). Swapping this shim for the real
//! crate is a one-line `Cargo.toml` change; no source file needs touching.
//!
//! The generator behind [`rngs::SmallRng`] is xoshiro256++ — the same family upstream
//! `SmallRng` uses on 64-bit targets — seeded through SplitMix64 exactly like upstream's
//! `seed_from_u64`. Streams are deterministic, portable, and of more than adequate quality
//! for discrete-event simulation (xoshiro256++ passes BigCrush).

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of raw random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns a random value of type `T` drawn from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Returns a random value uniformly distributed over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must lie in [0, 1]"
        );
        // Compare against 53 random mantissa bits, like upstream's Bernoulli.
        let scale = (1u64 << 53) as f64;
        ((self.next_u64() >> 11) as f64) < p * scale
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 like upstream.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64: recommended by the xoshiro authors for seeding, and the exact
            // routine upstream `seed_from_u64` uses.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a: u64 = SmallRng::seed_from_u64(1).gen();
        let b: u64 = SmallRng::seed_from_u64(2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "got {hits} hits of ~2500");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(10..=20);
            assert!((10..=20).contains(&w));
            let f: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from 10000"
            );
        }
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..1_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
