//! Sequence-related helpers: slice shuffling/choosing and index sampling, mirroring
//! `rand::seq`.

use crate::distributions::uniform::SampleRange;
use crate::RngCore;

/// Extension trait adding random operations to slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a reference to one element chosen uniformly at random, or `None` if the
    /// slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Returns an iterator over `amount` distinct elements chosen uniformly at random, in
    /// random order. If the slice has fewer than `amount` elements, all are returned.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((0..self.len()).sample_single(rng))
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let picked = index::sample(rng, self.len(), amount.min(self.len()));
        picked
            .into_iter()
            .map(|i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }
}

pub mod index {
    //! Uniform sampling of distinct indices, mirroring `rand::seq::index`.

    use crate::distributions::uniform::SampleRange;
    use crate::RngCore;

    /// A set of sampled indices.
    ///
    /// Upstream returns an enum optimised for `u32`; the shim stores plain `usize`s, which
    /// is entirely adequate at simulation scale.
    #[derive(Clone, Debug)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Returns `true` when no index was sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Converts into a plain vector of indices.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Iterates over the sampled indices.
        pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, usize>> {
            self.0.iter().copied()
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Samples `amount` distinct indices from `0..length`, uniformly at random, in random
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `amount > length` (matching upstream).
    pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "cannot sample {amount} distinct indices from 0..{length}"
        );
        // Partial Fisher–Yates over a scratch index table: O(length) memory, O(amount)
        // swaps. At simulation scale (≤ a few hundred thousand nodes) this is simpler and
        // faster than upstream's adaptive choice between Floyd's algorithm and rejection.
        let mut indices: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = (i..length).sample_single(rng);
            indices.swap(i, j);
        }
        indices.truncate(amount);
        IndexVec(indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_preserves_elements() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = SmallRng::seed_from_u64(1);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle staying sorted is ~impossible"
        );
    }

    #[test]
    fn choose_empty_is_none() {
        let v: Vec<u32> = Vec::new();
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(v.choose(&mut rng).is_none());
    }

    #[test]
    fn choose_is_uniformish() {
        let v: Vec<usize> = (0..4).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[*v.choose(&mut rng).unwrap()] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket {c} far from 10000");
        }
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        let picked = index::sample(&mut rng, 50, 10);
        assert_eq!(picked.len(), 10);
        let mut v = picked.into_vec();
        assert!(v.iter().all(|&i| i < 50));
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn choose_multiple_caps_at_len() {
        let v = [1, 2, 3];
        let mut rng = SmallRng::seed_from_u64(5);
        let mut picked: Vec<i32> = v.choose_multiple(&mut rng, 10).copied().collect();
        picked.sort_unstable();
        assert_eq!(picked, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn index_sample_rejects_oversized_amount() {
        let mut rng = SmallRng::seed_from_u64(6);
        index::sample(&mut rng, 3, 4);
    }
}
