//! Distributions: the [`Standard`] distribution and uniform range sampling.

use crate::RngCore;

/// Types that can produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform over all values for integers and `bool`,
/// uniform over `[0, 1)` for floats.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<i128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        <Standard as Distribution<u128>>::sample(self, rng) as i128
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1), matching upstream's Standard for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

pub mod uniform {
    //! Uniform sampling over ranges, mirroring `rand::distributions::uniform`.

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that can produce uniformly distributed samples of `T`.
    ///
    /// Implemented for `Range` and `RangeInclusive` over the primitive integers and floats,
    /// which is what `Rng::gen_range` accepts.
    pub trait SampleRange<T> {
        /// Draws one sample uniformly from the range.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Uniformly draws from `[0, bound)` without modulo bias (Lemire's method with a
    /// widening multiply and rejection on the low word).
    #[inline]
    fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = rng.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    macro_rules! sample_range_int {
        ($($t:ty => $wide:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    let offset = uniform_u64_below(rng, span);
                    ((self.start as $wide).wrapping_add(offset as $wide)) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let offset = uniform_u64_below(rng, span + 1);
                    ((start as $wide).wrapping_add(offset as $wide)) as $t
                }
            }
        )*};
    }

    sample_range_int!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
    );

    macro_rules! sample_range_float {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    let span = self.end as f64 - self.start as f64;
                    let v = self.start as f64 + unit * span;
                    // Floating-point rounding can land exactly on `end`; clamp back inside.
                    if v as $t >= self.end { self.start } else { v as $t }
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    (start as f64 + unit * (end as f64 - start as f64)) as $t
                }
            }
        )*};
    }

    sample_range_float!(f32, f64);
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleRange;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn signed_ranges_work() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v: i64 = (-5i64..5).sample_single(&mut rng);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _: u64 = (5u64..5).sample_single(&mut rng);
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut saw = [false; 3];
        for _ in 0..200 {
            let v: u8 = (0u8..=2).sample_single(&mut rng);
            saw[v as usize] = true;
        }
        assert_eq!(saw, [true; 3]);
    }
}
