//! Concrete generators. Only [`SmallRng`] is provided: the deterministic simulation stack
//! never uses OS entropy.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG: xoshiro256++ (Blackman & Vigna, 2019).
///
/// Upstream `rand`'s `SmallRng` is the same algorithm on 64-bit platforms. Not suitable
/// for cryptography; entirely suitable for reproducible simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.step().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.step().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // The all-zero state is a fixed point of xoshiro; nudge it like upstream does.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_a_fixed_point() {
        let mut rng = SmallRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn clone_replays_the_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
