//! Offline shim of the [`serde`](https://crates.io/crates/serde) surface this workspace
//! uses.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` to mark types as
//! wire-representable; nothing serializes through a `Serializer` yet (experiment output is
//! written as CSV by hand). With no crates.io access, this shim supplies the two traits as
//! markers plus a derive macro emitting trivial impls, so every `#[derive(Serialize,
//! Deserialize)]` in the tree compiles unchanged and can later be switched to real serde by
//! swapping one path dependency.

#![warn(missing_docs)]

/// Marker for types with a serializable representation.
///
/// The shim carries no serializer plumbing; the trait exists so derives and generic bounds
/// written against real serde keep compiling.
pub trait Serialize {}

/// Marker for types that can be reconstructed from a serialized representation.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing from the input, mirroring
/// `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_for_primitives {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_for_primitives!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl Serialize for str {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<T: Serialize> Serialize for std::collections::HashSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::HashSet<T> {}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}
