//! Offline shim of the [`criterion`](https://crates.io/crates/criterion) API subset the
//! bench crate uses.
//!
//! The build environment has no crates.io access, so this crate re-implements the
//! `criterion_group!`/`criterion_main!` macros, `Criterion`, `BenchmarkGroup`, `Bencher`,
//! `BenchmarkId`, `BatchSize` and `black_box` with the same signatures. Statistically it is
//! a *much* simpler harness: each benchmark is warmed up once, then timed over a bounded
//! number of iterations (capped by both the group's `sample_size` and a wall-clock budget),
//! and the mean/min time per iteration is printed. That is enough to compare hot paths and
//! keep every `cargo bench` target runnable end-to-end; swap the path dependency for real
//! criterion to get rigorous statistics, outlier analysis and HTML reports.
//!
//! Beyond the upstream API, every bench run also emits a machine-readable report
//! `BENCH_<target>.json` (one entry per benchmark: mean/min ns, ops/sec, sample count)
//! into `target/bench-json/` — override the directory with the `BENCH_JSON_DIR`
//! environment variable. The `xtask bench-compare` command diffs two such reports and is
//! what the CI `bench-regression` job runs against the committed baseline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching `criterion::black_box`.
pub use std::hint::black_box;

/// Wall-clock budget per benchmark; keeps whole-simulation benches bounded.
const DEFAULT_MEASUREMENT_BUDGET: Duration = Duration::from_secs(2);

/// How batched inputs are grouped per measurement, mirroring `criterion::BatchSize`.
///
/// The shim times every iteration individually, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many fit in memory at once.
    SmallInput,
    /// Large inputs: few fit in memory at once.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifies a benchmark within a group, mirroring `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures, mirroring `criterion::Bencher`.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    max_samples: usize,
    budget: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, called repeatedly with no per-iteration setup.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up iteration, untimed (also forces lazy statics, caches, etc.).
        black_box(routine());
        let started = Instant::now();
        while self.samples.len() < self.max_samples && started.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let started = Instant::now();
        while self.samples.len() < self.max_samples && started.elapsed() < self.budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`] but hands the routine a mutable reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        black_box(routine(&mut setup()));
        let started = Instant::now();
        while self.samples.len() < self.max_samples && started.elapsed() < self.budget {
            let mut input = setup();
            let t0 = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(t0.elapsed());
        }
    }
}

/// One finished benchmark, as recorded for the JSON report.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Full benchmark name (`group/function`).
    pub name: String,
    /// Mean time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Fastest iteration in nanoseconds.
    pub min_ns: f64,
    /// Iterations per second implied by the mean (`1e9 / mean_ns`).
    pub ops_per_sec: f64,
    /// Number of timed iterations.
    pub samples: usize,
}

/// Results accumulated across all groups of the current bench binary.
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn record_result(record: BenchRecord) {
    RESULTS
        .lock()
        .expect("benchmark registry poisoned")
        .push(record);
}

/// Records a non-timing measurement (memory footprints, counters, ratios) into the JSON
/// report. Beyond the upstream criterion API: the value is stored in the `mean_ns` and
/// `min_ns` fields with `samples: 0`, which marks the entry as **informational** — `xtask
/// bench-compare` prints it but never judges it against the regression threshold.
pub fn record_informational(name: impl Into<String>, value: f64) {
    let name = name.into();
    println!("{name:<50} {value:>12.1} (informational)");
    record_result(BenchRecord {
        name,
        mean_ns: value,
        min_ns: value,
        ops_per_sec: 0.0,
        samples: 0,
    });
}

fn run_one(name: &str, max_samples: usize, budget: Duration, f: impl FnOnce(&mut Bencher<'_>)) {
    let mut samples = Vec::new();
    {
        let mut bencher = Bencher {
            samples: &mut samples,
            max_samples,
            budget,
        };
        f(&mut bencher);
    }
    if samples.is_empty() {
        println!("{name:<50} no samples collected");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    println!(
        "{name:<50} mean {mean:>12.3?}   min {min:>12.3?}   ({} samples)",
        samples.len()
    );
    let mean_ns = total.as_nanos() as f64 / samples.len() as f64;
    record_result(BenchRecord {
        name: name.to_string(),
        mean_ns,
        min_ns: min.as_nanos() as f64,
        ops_per_sec: if mean_ns > 0.0 { 1e9 / mean_ns } else { 0.0 },
        samples: samples.len(),
    });
}

/// Strips the `-<16 hex digit>` disambiguation hash cargo appends to bench binary names.
fn strip_cargo_hash(stem: &str) -> &str {
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base
        }
        _ => stem,
    }
}

/// Renders the accumulated results as the `BENCH_<target>.json` document.
fn render_json(target: &str, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"target\": \"{target}\",\n"));
    out.push_str("  \"entries\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let name = r.name.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"ops_per_sec\": {:.3}, \"samples\": {}}}{comma}\n",
            r.mean_ns, r.min_ns, r.ops_per_sec, r.samples
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the accumulated results of this bench binary as `BENCH_<target>.json`.
///
/// Called automatically at the end of [`criterion_main!`]; the output directory defaults
/// to `target/bench-json` and can be overridden with the `BENCH_JSON_DIR` environment
/// variable. Failures to write are reported on stderr but never fail the bench run.
pub fn write_json_report() {
    let records = RESULTS.lock().expect("benchmark registry poisoned");
    if records.is_empty() {
        return;
    }
    let exe = std::env::current_exe().ok();
    let target = exe
        .as_deref()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| String::from("bench"));
    let target = strip_cargo_hash(&target).to_string();
    // Default next to the binary (<target dir>/bench-json): bench binaries run with the
    // *package* directory as cwd, so a cwd-relative default would scatter reports across
    // member crates.
    let default_dir = exe
        .as_deref()
        .and_then(|p| p.ancestors().nth(3))
        .map(|t| t.join("bench-json").to_string_lossy().into_owned())
        .unwrap_or_else(|| String::from("target/bench-json"));
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or(default_dir);
    let json = render_json(&target, &records);
    let path = std::path::Path::new(&dir).join(format!("BENCH_{target}.json"));
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(&dir)?;
        std::fs::write(&path, &json)
    };
    match write() {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}

/// A named collection of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    budget: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the wall-clock measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut f = f;
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.budget,
            |b| f(b),
        );
        self
    }

    /// Benchmarks `f` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut f = f;
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.budget,
            |b| f(b, input),
        );
        self
    }

    /// Finishes the group. The shim prints eagerly, so this only marks the end of scope.
    pub fn finish(self) {}
}

/// The benchmark harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default target number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            budget: DEFAULT_MEASUREMENT_BUDGET,
            _criterion: self,
        }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut f = f;
        run_one(
            &id.to_string(),
            self.sample_size,
            DEFAULT_MEASUREMENT_BUDGET,
            |b| f(b),
        );
        self
    }

    /// Hook for `criterion_main!`'s final reporting; a no-op in the shim.
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[doc = concat!("Runs the `", stringify!($name), "` benchmark group.")]
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        #[doc = concat!("Runs the `", stringify!($name), "` benchmark group.")]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_batched_iteration_work() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }

    #[test]
    fn run_one_records_results_for_the_json_report() {
        let before = RESULTS.lock().unwrap().len();
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("json_record_probe", |b| b.iter(|| 2 + 2));
        let results = RESULTS.lock().unwrap();
        assert!(results.len() > before);
        let r = results
            .iter()
            .find(|r| r.name == "json_record_probe")
            .expect("record registered");
        assert!(r.mean_ns > 0.0);
        assert!(r.ops_per_sec > 0.0);
        assert!(r.samples >= 1);
    }

    #[test]
    fn informational_records_carry_zero_samples() {
        record_informational("probe/bytes_per_node", 612.0);
        let results = RESULTS.lock().unwrap();
        let r = results
            .iter()
            .find(|r| r.name == "probe/bytes_per_node")
            .expect("informational record registered");
        assert_eq!(r.samples, 0, "zero samples marks the entry informational");
        assert_eq!(r.mean_ns, 612.0);
        assert_eq!(r.ops_per_sec, 0.0);
    }

    #[test]
    fn cargo_hash_is_stripped_from_binary_stems() {
        assert_eq!(
            strip_cargo_hash("microbench_core-0123456789abcdef"),
            "microbench_core"
        );
        assert_eq!(strip_cargo_hash("microbench_core"), "microbench_core");
        assert_eq!(
            strip_cargo_hash("multi-word-name-0123456789abcdef"),
            "multi-word-name"
        );
        assert_eq!(strip_cargo_hash("name-notahash"), "name-notahash");
    }

    #[test]
    fn json_rendering_is_well_formed_and_one_entry_per_line() {
        let records = vec![
            BenchRecord {
                name: String::from("group/bench \"a\""),
                mean_ns: 120.5,
                min_ns: 100.0,
                ops_per_sec: 8_298_755.187,
                samples: 20,
            },
            BenchRecord {
                name: String::from("solo"),
                mean_ns: 10.0,
                min_ns: 9.0,
                ops_per_sec: 1e8,
                samples: 5,
            },
        ];
        let json = render_json("microbench_core", &records);
        assert!(json.contains("\"target\": \"microbench_core\""));
        assert!(json.contains("\\\"a\\\""), "quotes escaped: {json}");
        assert!(json.contains("\"mean_ns\": 120.5"));
        // One entry per line keeps the xtask parser trivial.
        let entry_lines = json
            .lines()
            .filter(|l| l.trim_start().starts_with('{') && l.contains("\"name\""))
            .count();
        assert_eq!(entry_lines, 2);
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
    }
}
