//! Repository automation (`cargo xtask <command>` via the `xtask` alias pattern: the
//! workspace member is a plain binary, so `cargo run -p xtask -- <command>` works without
//! any alias).
//!
//! Commands:
//!
//! * `bench-compare` — the guts of the CI `bench-regression` job: reads the
//!   `BENCH_<target>.json` reports emitted by the criterion shim for the current run and
//!   for the committed baseline, matches benchmarks by name, and fails (exit code 1) when
//!   any benchmark regressed beyond the threshold **or disappeared from the run** (a
//!   deleted benchmark silently ungates its hot path otherwise). When `--current` holds
//!   `run*/` subdirectories (one report per repeated bench invocation), the runs are
//!   merged best-of-N — each benchmark keeps its fastest observation — and the per-entry
//!   spread between the fastest and slowest run is printed so noisy rows are visible.
//!
//!   ```text
//!   cargo run -p xtask -- bench-compare \
//!       --baseline ci/bench-baseline --current target/bench-json \
//!       [--targets microbench_core,microbench_engine,microbench_metrics] \
//!       [--threshold 0.25] [--update]
//!   ```
//!
//!   `--update` rewrites the baseline files from the (merged) current run instead of
//!   comparing — commit the result when a speedup or an intentional regression moves the
//!   floor. Targets listed in `ROOT_MIRRORED_TARGETS` also refresh their repo-root
//!   `BENCH_<target>.json` mirror, keeping the documented numbers in sync.
//!
//! * `scenario-matrix` — runs the NAT-dynamics scenario matrix (the CI `scenario-matrix`
//!   job): a thin wrapper around `cargo run --release -p croupier-experiments --bin
//!   scenario_matrix`, forwarding every argument.
//!
//!   ```text
//!   cargo run -p xtask -- scenario-matrix --scale quick --out target/scenario-json
//!   ```
//!
//! * `workload-matrix` — runs the streaming-dissemination workload tier (the CI
//!   `workload-matrix` job) the same way, wrapping the `workload_matrix` binary:
//!
//!   ```text
//!   cargo run -p xtask -- workload-matrix --scale quick --out target/workload-json
//!   ```
//!
//! * `public-api` — the API-stability gate: line-scans every workspace library crate for
//!   `pub` items and compares the sorted list against the committed snapshot under
//!   `ci/public-api/`. An undeclared addition, removal or signature change fails with a
//!   `+`/`-` diff; `--update` rewrites the snapshots (commit the result alongside the
//!   intentional API change).
//!
//!   ```text
//!   cargo run -p xtask -- public-api [--update]
//!   ```
//!
//! * `ci-local` — mirrors every CI job offline so contributors can reproduce CI failures
//!   before pushing: `fmt`, `clippy` (deny warnings), `doc` (deny warnings),
//!   `public-api` (snapshot diff), `test` (release build + workspace tests), `bench`
//!   (guarded benches run `BENCH_RUNS` times, merged best-of-N through
//!   `bench-compare`), a `scenario-matrix` smoke run of the clean-network scenarios at
//!   tiny scale, a `fault-matrix` smoke run of the fault-injection tier (`lossy_10`,
//!   `burst_loss`, `dup_reorder`) at tiny scale, a `workload-matrix` smoke run of the
//!   streaming-dissemination tier (`reboot_storm`, `mobility_wave`, `lossy_10`) at tiny
//!   scale, and `huge-smoke` (the ignored million-node `scale_smoke` test, the same
//!   command the CI job runs).
//!   All steps run even when an earlier one fails; the summary lists every verdict.
//!
//!   ```text
//!   cargo run -p xtask -- ci-local [--skip bench,scenario-matrix,workload-matrix,huge-smoke]
//!   ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// One benchmark entry parsed from a `BENCH_<target>.json` report.
#[derive(Clone, Debug, PartialEq)]
struct Entry {
    name: String,
    mean_ns: f64,
    min_ns: f64,
    ops_per_sec: f64,
    /// Number of timed iterations. Zero marks an **informational** entry (a memory
    /// footprint or counter recorded via the shim's `record_informational`), which is
    /// printed but never judged against the regression threshold.
    samples: usize,
}

impl Entry {
    fn is_informational(&self) -> bool {
        self.samples == 0
    }
}

/// Which per-iteration time the comparison judges.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Metric {
    /// Mean time per iteration; matches the headline number the shim prints.
    Mean,
    /// Fastest iteration; much more stable than the mean on noisy shared runners, so it is
    /// the default for the CI gate.
    Min,
}

impl Metric {
    fn of(self, entry: &Entry) -> f64 {
        match self {
            Metric::Mean => entry.mean_ns,
            Metric::Min => entry.min_ns,
        }
    }
}

/// The verdict for one benchmark present in the baseline or the current run.
#[derive(Clone, Debug, PartialEq)]
enum Verdict {
    /// Current mean is within the threshold of the baseline mean.
    Ok { ratio: f64 },
    /// Current mean exceeds baseline mean by more than the threshold.
    Regressed { ratio: f64 },
    /// The benchmark disappeared from the current run.
    Missing,
    /// The benchmark exists only in the current run — informational, never a failure,
    /// but a visible reminder to refresh the committed baseline (`--update`) so the
    /// regression gate starts covering it.
    New,
    /// A non-timing measurement (`samples: 0` in either report): the current value is
    /// shown next to the baseline for the record, but it never fails the gate.
    Info { baseline: f64, current: f64 },
}

/// Extracts the string value of `"key": "..."` from a single JSON entry line.
fn field_str(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\": \"");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                if let Some(escaped) = chars.next() {
                    out.push(escaped);
                }
            }
            '"' => return Some(out),
            c => out.push(c),
        }
    }
    None
}

/// Extracts the numeric value of `"key": <number>` from a single JSON entry line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\": ");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a `BENCH_<target>.json` report. The criterion shim writes one entry per line,
/// so a line-oriented scan is sufficient and keeps this free of a JSON dependency.
fn parse_report(text: &str) -> Vec<Entry> {
    text.lines()
        .filter_map(|line| {
            let name = field_str(line, "name")?;
            let mean_ns = field_num(line, "mean_ns")?;
            let min_ns = field_num(line, "min_ns").unwrap_or(mean_ns);
            let ops_per_sec = field_num(line, "ops_per_sec").unwrap_or(0.0);
            // Reports written before the field existed carry timed entries only.
            let samples = field_num(line, "samples").unwrap_or(1.0) as usize;
            Some(Entry {
                name,
                mean_ns,
                min_ns,
                ops_per_sec,
                samples,
            })
        })
        .collect()
}

/// Compares current entries against the baseline. `threshold` is the tolerated relative
/// slowdown of the chosen metric (0.25 = fail beyond +25 %).
fn compare(
    baseline: &[Entry],
    current: &[Entry],
    threshold: f64,
    metric: Metric,
) -> Vec<(String, Verdict)> {
    let mut verdicts: Vec<(String, Verdict)> = baseline
        .iter()
        .map(|base| {
            let base_ns = metric.of(base);
            let verdict = match current.iter().find(|c| c.name == base.name) {
                None => Verdict::Missing,
                Some(cur) if base.is_informational() || cur.is_informational() => Verdict::Info {
                    baseline: base_ns,
                    current: metric.of(cur),
                },
                Some(cur) if base_ns <= 0.0 => Verdict::Ok {
                    ratio: metric.of(cur),
                },
                Some(cur) => {
                    let ratio = metric.of(cur) / base_ns;
                    if ratio > 1.0 + threshold {
                        Verdict::Regressed { ratio }
                    } else {
                        Verdict::Ok { ratio }
                    }
                }
            };
            (base.name.clone(), verdict)
        })
        .collect();
    // Benchmarks that exist only in the current run are surfaced (not judged) so a newly
    // added hot-path variant cannot silently run ungated until the baseline is refreshed.
    for cur in current {
        if !baseline.iter().any(|base| base.name == cur.name) {
            verdicts.push((cur.name.clone(), Verdict::New));
        }
    }
    verdicts
}

fn report_path(dir: &Path, target: &str) -> PathBuf {
    dir.join(format!("BENCH_{target}.json"))
}

/// Collects every report for `target` under the `--current` directory: the file in the
/// directory itself (the single-run layout) plus any in `run*/` subdirectories (the
/// best-of-N layout `ci-local` and the CI bench job produce). At least one must exist.
fn collect_runs(dir: &Path, target: &str) -> Result<Vec<Vec<Entry>>, String> {
    let mut reports = Vec::new();
    if let Ok(text) = std::fs::read_to_string(report_path(dir, target)) {
        reports.push(parse_report(&text));
    }
    let mut run_dirs: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()
        .into_iter()
        .flat_map(|entries| entries.flatten().map(|e| e.path()))
        .filter(|p| {
            p.is_dir()
                && p.file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with("run"))
        })
        .collect();
    run_dirs.sort();
    for run in run_dirs {
        if let Ok(text) = std::fs::read_to_string(report_path(&run, target)) {
            reports.push(parse_report(&text));
        }
    }
    if reports.is_empty() {
        return Err(format!(
            "no BENCH_{target}.json under {} (or its run*/ subdirectories)",
            dir.display()
        ));
    }
    Ok(reports)
}

/// Best-of-N merge: timed entries matched by name keep the fastest run's mean and min
/// (and the highest throughput, with samples summed), because the fastest observation is
/// the one closest to the code's true cost on a noisy runner; informational entries keep
/// the last run's value. The second return lists each timed entry's `(fastest, slowest)`
/// min-ns across runs — the spread the comparison prints so noisy rows stay visible.
fn merge_runs(reports: &[Vec<Entry>]) -> (Vec<Entry>, Vec<(String, f64, f64)>) {
    let mut merged: Vec<Entry> = Vec::new();
    let mut spread: Vec<(String, f64, f64)> = Vec::new();
    for report in reports {
        for entry in report {
            let Some(existing) = merged.iter_mut().find(|e| e.name == entry.name) else {
                merged.push(entry.clone());
                if !entry.is_informational() {
                    spread.push((entry.name.clone(), entry.min_ns, entry.min_ns));
                }
                continue;
            };
            if entry.is_informational() || existing.is_informational() {
                *existing = entry.clone();
                continue;
            }
            existing.mean_ns = existing.mean_ns.min(entry.mean_ns);
            existing.min_ns = existing.min_ns.min(entry.min_ns);
            existing.ops_per_sec = existing.ops_per_sec.max(entry.ops_per_sec);
            existing.samples += entry.samples;
            if let Some(s) = spread.iter_mut().find(|(name, _, _)| name == &entry.name) {
                s.1 = s.1.min(entry.min_ns);
                s.2 = s.2.max(entry.min_ns);
            }
        }
    }
    (merged, spread)
}

/// Renders the per-entry best-of-N spread (slowest over fastest min-ns across runs);
/// silent for single-run layouts, where there is no spread to report.
fn render_spread(target: &str, spread: &[(String, f64, f64)], runs: usize) -> String {
    let mut out = String::new();
    if runs < 2 {
        return out;
    }
    for (name, fastest, slowest) in spread {
        if *fastest <= 0.0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  spread    {target}::{name} best-of-{runs}: {fastest:.0} ns, slowest run \
             {slowest:.0} ns ({:.2}x)",
            slowest / fastest
        );
    }
    out
}

/// Renders entries back into the criterion shim's `BENCH_<target>.json` shape, so a
/// merged best-of-N baseline is indistinguishable from a single-run report.
fn render_report(target: &str, entries: &[Entry]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"target\": \"{target}\",");
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let name = e.name.replace('\\', "\\\\").replace('"', "\\\"");
        let _ = writeln!(
            out,
            "    {{\"name\": \"{name}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \
             \"ops_per_sec\": {:.3}, \"samples\": {}}}{comma}",
            e.mean_ns, e.min_ns, e.ops_per_sec, e.samples
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn render_table(target: &str, verdicts: &[(String, Verdict)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {target} ==");
    for (name, verdict) in verdicts {
        match verdict {
            Verdict::Ok { ratio } => {
                let _ = writeln!(out, "  ok        {name:<50} {:>7.2}x", ratio);
            }
            Verdict::Regressed { ratio } => {
                let _ = writeln!(out, "  REGRESSED {name:<50} {:>7.2}x", ratio);
            }
            Verdict::Missing => {
                let _ = writeln!(out, "  MISSING   {name}");
            }
            Verdict::New => {
                let _ = writeln!(
                    out,
                    "  new       {name:<50} (not in baseline; run --update)"
                );
            }
            Verdict::Info { baseline, current } => {
                let _ = writeln!(
                    out,
                    "  info      {name:<50} {current:>10.1} (baseline {baseline:.1}, not gated)"
                );
            }
        }
    }
    out
}

/// Renders the informational worker-scaling summary of an engine report: for each node
/// count with both a `threads_8` and a `threads_4` row, the ratio of their throughputs.
/// On hardware with eight or more cores the partitioned barrier merge should push this
/// well above 1.0; on fewer cores it honestly reports ~1.0 (never gated).
fn render_scaling(target: &str, current: &[Entry]) -> String {
    let mut out = String::new();
    for entry in current {
        let Some(group) = entry.name.strip_suffix("/threads_8") else {
            continue;
        };
        let four = format!("{group}/threads_4");
        let Some(four) = current.iter().find(|c| c.name == four) else {
            continue;
        };
        if four.ops_per_sec <= 0.0 || entry.ops_per_sec <= 0.0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  scaling   {target}::{group} threads_8 vs threads_4: {:.2}x ops/sec \
             (informational)",
            entry.ops_per_sec / four.ops_per_sec
        );
    }
    out
}

struct Args {
    baseline: PathBuf,
    current: PathBuf,
    targets: Vec<String>,
    threshold: f64,
    metric: Metric,
    update: bool,
}

const USAGE: &str = "usage: xtask bench-compare --baseline <dir> --current <dir> \
                     [--targets a,b] [--threshold 0.25] [--metric min|mean] [--update]\n\
                     xtask scenario-matrix [scenario_matrix args...]\n\
                     xtask workload-matrix [workload_matrix args...]\n\
                     xtask public-api [--update]\n\
                     xtask ci-local [--skip \
                     fmt,clippy,doc,public-api,test,bench,scenario-matrix,fault-matrix,\
                     workload-matrix,huge-smoke]";

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut baseline = None;
    let mut current = None;
    let mut targets: Vec<String> = GUARDED_BENCH_TARGETS
        .iter()
        .map(|t| t.to_string())
        .collect();
    let mut threshold = DEFAULT_BENCH_THRESHOLD;
    let mut metric = Metric::Min;
    let mut update = false;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--baseline" => {
                baseline = Some(PathBuf::from(
                    argv.next().ok_or("--baseline requires a value")?,
                ));
            }
            "--current" => {
                current = Some(PathBuf::from(
                    argv.next().ok_or("--current requires a value")?,
                ));
            }
            "--targets" => {
                targets = argv
                    .next()
                    .ok_or("--targets requires a value")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--threshold" => {
                threshold = argv
                    .next()
                    .ok_or("--threshold requires a value")?
                    .parse()
                    .map_err(|_| String::from("--threshold must be a number"))?;
            }
            "--metric" => {
                metric = match argv.next().as_deref() {
                    Some("min") => Metric::Min,
                    Some("mean") => Metric::Mean,
                    _ => return Err(String::from("--metric must be 'min' or 'mean'")),
                };
            }
            "--update" => update = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("--baseline is required")?,
        current: current.ok_or("--current is required")?,
        targets,
        threshold,
        metric,
        update,
    })
}

/// What failed the bench gate, aggregated across targets. Regressions and missing
/// benchmarks are reported separately: a benchmark that vanished from the run is not a
/// slowdown, it is the regression gate silently losing coverage, and the fix (restore
/// the benchmark, or `--update` the baseline when the removal is intentional) differs.
#[derive(Clone, Debug, Default, PartialEq)]
struct GateOutcome {
    regressed: Vec<String>,
    missing: Vec<String>,
}

impl GateOutcome {
    fn is_ok(&self) -> bool {
        self.regressed.is_empty() && self.missing.is_empty()
    }
}

/// Sorts one target's verdicts into the gate outcome; `Ok` and `New` pass.
fn gate(target: &str, verdicts: &[(String, Verdict)], outcome: &mut GateOutcome) {
    for (name, verdict) in verdicts {
        let qualified = format!("{target}::{name}");
        match verdict {
            Verdict::Regressed { .. } => outcome.regressed.push(qualified),
            Verdict::Missing => outcome.missing.push(qualified),
            Verdict::Ok { .. } | Verdict::New | Verdict::Info { .. } => {}
        }
    }
}

fn bench_compare(args: &Args) -> Result<GateOutcome, String> {
    let mut outcome = GateOutcome::default();
    for target in &args.targets {
        let runs = collect_runs(&args.current, target)?;
        let (current, spread) = merge_runs(&runs);
        if args.update {
            let text = render_report(target, &current);
            std::fs::create_dir_all(&args.baseline)
                .map_err(|e| format!("cannot create {}: {e}", args.baseline.display()))?;
            let dest = report_path(&args.baseline, target);
            std::fs::write(&dest, &text)
                .map_err(|e| format!("cannot write {}: {e}", dest.display()))?;
            println!("updated {}", dest.display());
            if ROOT_MIRRORED_TARGETS.contains(&target.as_str()) {
                let mirror = report_path(Path::new("."), target);
                std::fs::write(&mirror, &text)
                    .map_err(|e| format!("cannot write {}: {e}", mirror.display()))?;
                println!("updated {}", mirror.display());
            }
            continue;
        }
        let baseline_path = report_path(&args.baseline, target);
        let baseline_text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
        let baseline = parse_report(&baseline_text);
        if baseline.is_empty() {
            return Err(format!("no entries in {}", baseline_path.display()));
        }
        let verdicts = compare(&baseline, &current, args.threshold, args.metric);
        print!("{}", render_table(target, &verdicts));
        print!("{}", render_spread(target, &spread, runs.len()));
        print!("{}", render_scaling(target, &current));
        gate(target, &verdicts, &mut outcome);
    }
    Ok(outcome)
}

/// Prints the gate outcome's failure details and returns the process exit code.
fn report_gate(outcome: &GateOutcome, threshold: f64) -> ExitCode {
    if outcome.is_ok() {
        println!("bench-compare: all benchmarks within threshold");
        return ExitCode::SUCCESS;
    }
    if !outcome.regressed.is_empty() {
        eprintln!(
            "bench-compare: regression beyond {:.0}% in: {}",
            threshold * 100.0,
            outcome.regressed.join(", ")
        );
    }
    if !outcome.missing.is_empty() {
        eprintln!(
            "bench-compare: baseline benchmarks missing from the run (restore them or \
             refresh the baseline with --update): {}",
            outcome.missing.join(", ")
        );
    }
    ExitCode::FAILURE
}

/// The cargo executable to shell out to (`$CARGO` when cargo invoked us, so nested calls
/// use the same toolchain).
fn cargo_bin() -> String {
    std::env::var("CARGO").unwrap_or_else(|_| String::from("cargo"))
}

/// The bench targets guarded by the regression gate — shared by the `bench-compare`
/// defaults and the `ci-local` bench step so the two cannot drift.
const GUARDED_BENCH_TARGETS: [&str; 3] =
    ["microbench_core", "microbench_engine", "microbench_metrics"];

/// The regression threshold both CI and `ci-local` judge against.
const DEFAULT_BENCH_THRESHOLD: f64 = 0.25;

/// How many times the `ci-local` bench step (and the CI bench job) runs each bench
/// target; `bench-compare` then judges the fastest run per benchmark. Three runs strip
/// the scheduler noise a single run cannot while keeping bench time bounded.
const BENCH_RUNS: usize = 3;

/// Bench targets whose `BENCH_<target>.json` is additionally mirrored at the repository
/// root for README-linkable reference. `bench-compare --update` refreshes the mirrors
/// together with the baseline so the two cannot drift.
const ROOT_MIRRORED_TARGETS: [&str; 2] = ["microbench_engine", "microbench_metrics"];

/// Runs a matrix binary (`scenario_matrix` or `workload_matrix`) through cargo with
/// `extra` appended — the single invocation site behind the `xtask` forwarding commands
/// and the `ci-local` smoke steps.
fn run_matrix_bin(bin: &str, extra: &[String]) -> bool {
    let mut args = vec![
        "run",
        "--release",
        "-p",
        "croupier-experiments",
        "--bin",
        bin,
        "--",
    ];
    args.extend(extra.iter().map(String::as_str));
    run_command(&cargo_bin(), &args, &[])
}

fn run_scenario_matrix(extra: &[String]) -> bool {
    run_matrix_bin("scenario_matrix", extra)
}

fn run_workload_matrix(extra: &[String]) -> bool {
    run_matrix_bin("workload_matrix", extra)
}

/// Directory holding the committed public-API snapshots, one file per library crate.
const PUBLIC_API_DIR: &str = "ci/public-api";

/// The workspace's library crates: snapshot file stem and `src/` directory. `xtask`
/// itself and the bench/experiment binaries' crates still appear because their `pub`
/// items are importable by other members; only `xtask` (a pure binary, never a
/// dependency) is excluded.
fn workspace_library_crates() -> Vec<(String, PathBuf)> {
    let mut crates = vec![(String::from("croupier-suite"), PathBuf::from("src"))];
    let mut dirs: Vec<PathBuf> = match std::fs::read_dir("crates") {
        Ok(entries) => entries.flatten().map(|e| e.path()).collect(),
        Err(_) => Vec::new(),
    };
    dirs.sort();
    for dir in dirs {
        let manifest = dir.join("Cargo.toml");
        let src = dir.join("src");
        if !manifest.exists() || !src.is_dir() {
            continue;
        }
        let name = std::fs::read_to_string(&manifest)
            .ok()
            .and_then(|text| {
                text.lines()
                    .find_map(|l| l.trim().strip_prefix("name = ").map(str::to_string))
            })
            .map(|raw| raw.trim_matches(|c| c == '"' || c == ' ').to_string())
            .unwrap_or_else(|| dir.file_name().unwrap().to_string_lossy().into_owned());
        crates.push((name, src));
    }
    crates
}

/// Every `.rs` file under `dir`, recursively, in sorted order.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

/// Item keywords that may follow `pub` (possibly behind `const`/`unsafe`/`async`/
/// `extern "..."` qualifiers). Anything else after `pub ` is not an item declaration.
const PUB_ITEM_KEYWORDS: [&str; 11] = [
    "fn", "struct", "enum", "trait", "const", "static", "type", "mod", "union", "use", "macro",
];

/// Extracts the normalised declaration if `line` declares a crate-public item.
///
/// This is a deliberate *line scan*, not a parse: it sees exactly what a reviewer sees
/// in the diff, costs nothing to run, and `rustfmt --check` (a separate CI step) pins
/// the formatting it relies on. Restricted visibility (`pub(crate)`, `pub(super)`) is
/// not part of the external API and is skipped.
fn public_item_of(line: &str) -> Option<String> {
    let trimmed = line.trim();
    let rest = trimmed.strip_prefix("pub ")?;
    let mut words = rest.split_whitespace();
    let mut first = words.next()?;
    // Skip qualifiers — but `const NAME` (no second keyword) is itself an item.
    while matches!(first, "const" | "unsafe" | "async") || first.starts_with("extern") {
        match words.next() {
            Some(next) if PUB_ITEM_KEYWORDS.contains(&next) => first = next,
            _ => break,
        }
    }
    if !PUB_ITEM_KEYWORDS.contains(&first) {
        return None;
    }
    // Normalise to the first line of the declaration, without the body opener.
    let mut decl = trimmed.trim_end();
    if let Some(stripped) = decl.strip_suffix('{') {
        decl = stripped.trim_end();
    }
    Some(decl.to_string())
}

/// The sorted public-item snapshot of one crate, one `file: declaration` line each.
fn public_api_snapshot(src: &Path) -> Vec<String> {
    let mut files = Vec::new();
    collect_rs_files(src, &mut files);
    let mut lines = Vec::new();
    for file in files {
        let Ok(text) = std::fs::read_to_string(&file) else {
            continue;
        };
        let rel = file.display().to_string().replace('\\', "/");
        for line in text.lines() {
            if let Some(decl) = public_item_of(line) {
                lines.push(format!("{rel}: {decl}"));
            }
        }
    }
    lines.sort();
    lines
}

/// `xtask public-api`: regenerates every crate's snapshot and either rewrites the
/// committed files (`update`) or diffs against them, failing on any discrepancy.
fn public_api_gate(update: bool) -> ExitCode {
    let dir = PathBuf::from(PUBLIC_API_DIR);
    let mut clean = true;
    for (name, src) in workspace_library_crates() {
        let current = public_api_snapshot(&src);
        let snapshot_path = dir.join(format!("{name}.txt"));
        if update {
            if std::fs::create_dir_all(&dir).is_err() {
                eprintln!("cannot create {}", dir.display());
                return ExitCode::FAILURE;
            }
            let mut body = current.join("\n");
            body.push('\n');
            if std::fs::write(&snapshot_path, body).is_err() {
                eprintln!("cannot write {}", snapshot_path.display());
                return ExitCode::FAILURE;
            }
            println!(
                "public-api: wrote {} ({} items)",
                snapshot_path.display(),
                current.len()
            );
            continue;
        }
        let committed = match std::fs::read_to_string(&snapshot_path) {
            Ok(text) => text.lines().map(str::to_string).collect::<Vec<_>>(),
            Err(_) => {
                eprintln!(
                    "public-api: missing snapshot {} — run `cargo run -p xtask -- \
                     public-api --update` and commit it",
                    snapshot_path.display()
                );
                clean = false;
                continue;
            }
        };
        let removed: Vec<&String> = committed.iter().filter(|l| !current.contains(l)).collect();
        let added: Vec<&String> = current.iter().filter(|l| !committed.contains(l)).collect();
        if removed.is_empty() && added.is_empty() {
            println!("public-api: {name} ok ({} items)", current.len());
        } else {
            clean = false;
            eprintln!("public-api: {name} CHANGED");
            for line in removed {
                eprintln!("  - {line}");
            }
            for line in added {
                eprintln!("  + {line}");
            }
        }
    }
    if clean {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "public-api: undeclared API change — if intentional, run `cargo run -p xtask \
             -- public-api --update` and commit the snapshots"
        );
        ExitCode::FAILURE
    }
}

/// Runs one external command, streaming its output; returns `true` on exit code 0.
fn run_command(program: &str, args: &[&str], envs: &[(&str, &str)]) -> bool {
    println!("$ {program} {}", args.join(" "));
    let mut cmd = Command::new(program);
    cmd.args(args);
    for (key, value) in envs {
        cmd.env(key, value);
    }
    match cmd.status() {
        Ok(status) => status.success(),
        Err(err) => {
            eprintln!("cannot run {program}: {err}");
            false
        }
    }
}

/// The CI jobs `ci-local` mirrors, in run order. `huge-smoke` is the million-node tier
/// (the long pole by far — skip it with `--skip huge-smoke` when iterating).
const CI_STEPS: [&str; 10] = [
    "fmt",
    "clippy",
    "doc",
    "public-api",
    "test",
    "bench",
    "scenario-matrix",
    "fault-matrix",
    "workload-matrix",
    "huge-smoke",
];

/// The clean-network scenarios the `scenario-matrix` step runs; the fault tier runs
/// separately under `fault-matrix` so the two gates fail independently (mirroring the
/// split CI jobs).
const CLEAN_SCENARIOS: &str = "reboot_storm,mobility_wave,nat_flux,flash_crowd,\
                               regional_outage,croupier_stress,symmetric_shift,cgn_migration";

/// The fault-tier scenarios the `fault-matrix` step runs.
const FAULT_SCENARIOS: &str = "lossy_10,burst_loss,dup_reorder";

/// The scenarios the `workload-matrix` step streams a dissemination workload under.
const WORKLOAD_SCENARIOS: &str = "reboot_storm,mobility_wave,lossy_10";

/// Parses `ci-local`'s arguments: the set of steps to skip.
fn parse_ci_local_args(mut argv: impl Iterator<Item = String>) -> Result<Vec<String>, String> {
    let mut skip = Vec::new();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--skip" => {
                for step in argv
                    .next()
                    .ok_or("--skip requires a value")?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                {
                    if !CI_STEPS.contains(&step) {
                        return Err(format!(
                            "unknown step '{step}' (steps: {})",
                            CI_STEPS.join(", ")
                        ));
                    }
                    skip.push(step.to_string());
                }
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(skip)
}

/// Runs one `ci-local` step; returns `true` on success.
fn ci_local_step(step: &str) -> bool {
    let cargo = cargo_bin();
    match step {
        "fmt" => run_command(&cargo, &["fmt", "--all", "--check"], &[]),
        "clippy" => run_command(
            &cargo,
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ],
            &[],
        ),
        "doc" => run_command(
            &cargo,
            &["doc", "--workspace", "--no-deps"],
            &[("RUSTDOCFLAGS", "-D warnings")],
        ),
        "test" => {
            run_command(&cargo, &["build", "--release", "--workspace"], &[])
                && run_command(&cargo, &["test", "-q", "--workspace"], &[])
        }
        "bench" => {
            // Each guarded target runs `BENCH_RUNS` times into run<N>/ subdirectories,
            // and the comparison below judges the fastest run per benchmark (best-of-N).
            // BENCH_JSON_DIR must be absolute: cargo runs each bench binary from its
            // package directory, so a relative override would scatter the reports.
            let json_root = match std::env::current_dir() {
                Ok(dir) => dir.join("target").join("bench-json"),
                Err(err) => {
                    eprintln!("cannot determine the working directory: {err}");
                    return false;
                }
            };
            // Stale reports from earlier invocations would min-merge into the gate.
            let _ = std::fs::remove_dir_all(&json_root);
            let mut bench_args = vec!["bench"];
            for target in GUARDED_BENCH_TARGETS {
                bench_args.push("--bench");
                bench_args.push(target);
            }
            for run in 1..=BENCH_RUNS {
                let dir = json_root.join(format!("run{run}"));
                let dir = dir.to_string_lossy().into_owned();
                if !run_command(&cargo, &bench_args, &[("BENCH_JSON_DIR", &dir)]) {
                    return false;
                }
            }
            // Same comparison the CI gate runs, in-process: parse_args with only the
            // required paths picks up the shared target/threshold/metric defaults.
            let args = parse_args(
                [
                    "--baseline",
                    "ci/bench-baseline",
                    "--current",
                    "target/bench-json",
                ]
                .map(String::from)
                .into_iter(),
            )
            .expect("defaults are valid");
            match bench_compare(&args) {
                Ok(outcome) => report_gate(&outcome, args.threshold) == ExitCode::SUCCESS,
                Err(err) => {
                    eprintln!("{err}");
                    false
                }
            }
        }
        "public-api" => public_api_gate(false) == ExitCode::SUCCESS,
        "scenario-matrix" => run_scenario_matrix(
            &[
                "--scale",
                "tiny",
                "--scenarios",
                CLEAN_SCENARIOS,
                "--out",
                "target/scenario-json",
            ]
            .map(String::from),
        ),
        "fault-matrix" => run_scenario_matrix(
            &[
                "--scale",
                "tiny",
                "--scenarios",
                FAULT_SCENARIOS,
                "--out",
                "target/scenario-json",
            ]
            .map(String::from),
        ),
        "workload-matrix" => run_workload_matrix(
            &[
                "--scale",
                "tiny",
                "--scenarios",
                WORKLOAD_SCENARIOS,
                "--out",
                "target/workload-json",
            ]
            .map(String::from),
        ),
        "huge-smoke" => run_command(
            &cargo,
            &[
                "test",
                "--release",
                "--test",
                "scale_smoke",
                "--",
                "--ignored",
                "--nocapture",
                "croupier_one_million",
            ],
            &[],
        ),
        other => {
            eprintln!("unknown ci-local step '{other}'");
            false
        }
    }
}

fn ci_local(skip: &[String]) -> ExitCode {
    let mut results: Vec<(&str, &str)> = Vec::new();
    for step in CI_STEPS {
        if skip.iter().any(|s| s == step) {
            results.push((step, "skipped"));
            continue;
        }
        println!("==> ci-local: {step}");
        let verdict = if ci_local_step(step) { "ok" } else { "FAILED" };
        results.push((step, verdict));
    }
    println!("\nci-local summary:");
    for (step, verdict) in &results {
        println!("  {step:<16} {verdict}");
    }
    if results.iter().any(|(_, v)| *v == "FAILED") {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    match argv.next().as_deref() {
        Some("bench-compare") => {
            let args = match parse_args(argv) {
                Ok(args) => args,
                Err(err) => {
                    eprintln!("{err}\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            match bench_compare(&args) {
                Ok(outcome) => report_gate(&outcome, args.threshold),
                Err(err) => {
                    eprintln!("{err}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("public-api") => {
            let mut update = false;
            for arg in argv {
                match arg.as_str() {
                    "--update" => update = true,
                    other => {
                        eprintln!("unknown argument '{other}'\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            public_api_gate(update)
        }
        Some("scenario-matrix") => {
            // Thin forwarding wrapper so CI and contributors share one entry point.
            let extra: Vec<String> = argv.collect();
            if run_scenario_matrix(&extra) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("workload-matrix") => {
            let extra: Vec<String> = argv.collect();
            if run_workload_matrix(&extra) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("ci-local") => match parse_ci_local_args(argv) {
            Ok(skip) => ci_local(&skip),
            Err(err) => {
                eprintln!("{err}\n{USAGE}");
                ExitCode::FAILURE
            }
        },
        Some(other) => {
            eprintln!("unknown command '{other}'\n{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "target": "microbench_core",
  "entries": [
    {"name": "view/swapper_merge_10", "mean_ns": 140.2, "min_ns": 120.0, "ops_per_sec": 7132667.618, "samples": 20},
    {"name": "sampler/draw", "mean_ns": 55.0, "min_ns": 50.0, "ops_per_sec": 18181818.182, "samples": 20}
  ]
}
"#;

    #[test]
    fn parses_shim_reports() {
        let entries = parse_report(SAMPLE);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "view/swapper_merge_10");
        assert!((entries[0].mean_ns - 140.2).abs() < 1e-9);
        assert!((entries[1].ops_per_sec - 18_181_818.182).abs() < 1e-3);
    }

    #[test]
    fn parses_escaped_names() {
        let line = r#"{"name": "odd \"quoted\" name", "mean_ns": 10.0, "min_ns": 9.0, "ops_per_sec": 1.0, "samples": 2}"#;
        let entries = parse_report(line);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "odd \"quoted\" name");
    }

    fn entry(name: &str, mean_ns: f64) -> Entry {
        Entry {
            name: String::from(name),
            mean_ns,
            min_ns: mean_ns * 0.9,
            ops_per_sec: 1e9 / mean_ns,
            samples: 20,
        }
    }

    #[test]
    fn compare_flags_only_regressions_beyond_threshold() {
        let baseline = vec![entry("a", 100.0), entry("b", 100.0), entry("c", 100.0)];
        let current = vec![entry("a", 124.0), entry("b", 126.0), entry("c", 60.0)];
        for metric in [Metric::Mean, Metric::Min] {
            let verdicts = compare(&baseline, &current, 0.25, metric);
            assert!(matches!(verdicts[0].1, Verdict::Ok { .. }), "{verdicts:?}");
            assert!(
                matches!(verdicts[1].1, Verdict::Regressed { ratio } if ratio > 1.25),
                "{verdicts:?}"
            );
            assert!(matches!(verdicts[2].1, Verdict::Ok { .. }), "speedups pass");
        }
    }

    #[test]
    fn min_metric_judges_min_not_mean() {
        // Mean regressed 2x (noise) but min is stable: the default gate stays green.
        let baseline = vec![Entry {
            name: String::from("noisy"),
            mean_ns: 100.0,
            min_ns: 60.0,
            ops_per_sec: 1e7,
            samples: 20,
        }];
        let current = vec![Entry {
            name: String::from("noisy"),
            mean_ns: 200.0,
            min_ns: 62.0,
            ops_per_sec: 5e6,
            samples: 20,
        }];
        let by_min = compare(&baseline, &current, 0.25, Metric::Min);
        assert!(matches!(by_min[0].1, Verdict::Ok { .. }), "{by_min:?}");
        let by_mean = compare(&baseline, &current, 0.25, Metric::Mean);
        assert!(matches!(by_mean[0].1, Verdict::Regressed { .. }));
    }

    #[test]
    fn compare_flags_missing_benchmarks() {
        let baseline = vec![entry("gone", 100.0)];
        let verdicts = compare(&baseline, &[], 0.25, Metric::Min);
        assert_eq!(verdicts[0].1, Verdict::Missing);
    }

    #[test]
    fn gate_fails_on_missing_and_regressed_but_not_on_new() {
        let verdicts = vec![
            (String::from("fine"), Verdict::Ok { ratio: 1.0 }),
            (String::from("slow"), Verdict::Regressed { ratio: 1.6 }),
            (String::from("gone"), Verdict::Missing),
            (String::from("fresh"), Verdict::New),
        ];
        let mut outcome = GateOutcome::default();
        gate("t", &verdicts, &mut outcome);
        assert!(!outcome.is_ok());
        assert_eq!(outcome.regressed, vec![String::from("t::slow")]);
        assert_eq!(
            outcome.missing,
            vec![String::from("t::gone")],
            "a benchmark that vanished from the run must fail the gate"
        );
        assert_eq!(report_gate(&outcome, 0.25), ExitCode::FAILURE);
    }

    #[test]
    fn gate_passes_when_everything_is_ok_or_new() {
        let verdicts = vec![
            (String::from("fine"), Verdict::Ok { ratio: 0.9 }),
            (String::from("fresh"), Verdict::New),
        ];
        let mut outcome = GateOutcome::default();
        gate("t", &verdicts, &mut outcome);
        assert!(outcome.is_ok());
        assert_eq!(report_gate(&outcome, 0.25), ExitCode::SUCCESS);
    }

    #[test]
    fn ci_local_args_accept_known_steps_only() {
        assert_eq!(
            parse_ci_local_args(
                ["--skip", "bench,scenario-matrix"]
                    .map(String::from)
                    .into_iter()
            )
            .unwrap(),
            vec![String::from("bench"), String::from("scenario-matrix")]
        );
        assert!(parse_ci_local_args(std::iter::empty()).unwrap().is_empty());
        assert!(
            parse_ci_local_args(["--skip", "bogus"].map(String::from).into_iter()).is_err(),
            "unknown steps are rejected"
        );
        assert!(parse_ci_local_args(["--wat"].map(String::from).into_iter()).is_err());
    }

    #[test]
    fn informational_entries_are_reported_but_never_gated() {
        let info = |name: &str, value: f64| Entry {
            name: String::from(name),
            mean_ns: value,
            min_ns: value,
            ops_per_sec: 0.0,
            samples: 0,
        };
        // A 10x "regression" of an informational value stays out of the gate.
        let baseline = vec![entry("timed", 100.0), info("engine/bytes_per_node", 80.0)];
        let current = vec![entry("timed", 100.0), info("engine/bytes_per_node", 800.0)];
        let verdicts = compare(&baseline, &current, 0.25, Metric::Min);
        assert!(matches!(verdicts[0].1, Verdict::Ok { .. }));
        assert_eq!(
            verdicts[1].1,
            Verdict::Info {
                baseline: 80.0,
                current: 800.0
            }
        );
        let mut outcome = GateOutcome::default();
        gate("t", &verdicts, &mut outcome);
        assert!(outcome.is_ok(), "informational entries never fail the gate");
        let table = render_table("t", &verdicts);
        assert!(
            table.contains("  info      engine/bytes_per_node"),
            "informational rows get their own marker: {table}"
        );
        assert!(table.contains("not gated"), "{table}");
    }

    #[test]
    fn parse_report_defaults_missing_samples_to_timed() {
        let line = r#"{"name": "old_style", "mean_ns": 10.0, "min_ns": 9.0, "ops_per_sec": 1.0}"#;
        let entries = parse_report(line);
        assert_eq!(entries[0].samples, 1, "pre-field baselines stay gated");
        assert!(!entries[0].is_informational());
    }

    #[test]
    fn scaling_summary_pairs_threads_8_with_threads_4() {
        let current = vec![
            entry("engine/10k_nodes/threads_4", 200.0),
            entry("engine/10k_nodes/threads_8", 100.0),
            entry("engine/100k_nodes/threads_8", 50.0), // no threads_4 partner: skipped
            entry("queue/wheel/depth_100k", 10.0),      // not a threads_8 row: skipped
        ];
        let summary = render_scaling("microbench_engine", &current);
        assert_eq!(summary.lines().count(), 1, "{summary}");
        assert!(
            summary.contains("microbench_engine::engine/10k_nodes threads_8 vs threads_4: 2.00x"),
            "{summary}"
        );
        assert!(summary.contains("informational"), "{summary}");
    }

    #[test]
    fn new_benchmarks_are_surfaced_but_not_judged() {
        let baseline = vec![entry("a", 100.0)];
        let current = vec![entry("a", 100.0), entry("brand_new", 5.0)];
        let verdicts = compare(&baseline, &current, 0.25, Metric::Min);
        assert_eq!(verdicts.len(), 2);
        assert_eq!(verdicts[1], (String::from("brand_new"), Verdict::New));
        let table = render_table("t", &verdicts);
        assert!(
            table.contains("  new       brand_new"),
            "the New verdict must render with its own marker: {table}"
        );
        assert!(table.contains("--update"));
    }

    #[test]
    fn args_parse_with_defaults() {
        let args = parse_args(
            ["--baseline", "b", "--current", "c"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert_eq!(args.threshold, 0.25);
        assert_eq!(args.metric, Metric::Min, "min is the stable default");
        assert_eq!(
            args.targets,
            vec!["microbench_core", "microbench_engine", "microbench_metrics"],
            "defaults cover every guarded target"
        );
        assert!(!args.update);
        assert!(parse_args(std::iter::empty()).is_err(), "baseline required");
    }

    #[test]
    fn args_parse_overrides() {
        let args = parse_args(
            [
                "--baseline",
                "b",
                "--current",
                "c",
                "--targets",
                "x, y",
                "--threshold",
                "0.5",
                "--metric",
                "mean",
                "--update",
            ]
            .into_iter()
            .map(String::from),
        )
        .unwrap();
        assert_eq!(args.targets, vec!["x", "y"]);
        assert!((args.threshold - 0.5).abs() < 1e-12);
        assert_eq!(args.metric, Metric::Mean);
        assert!(args.update);
    }

    #[test]
    fn render_table_marks_each_verdict() {
        let verdicts = vec![
            (String::from("fast"), Verdict::Ok { ratio: 0.9 }),
            (String::from("slow"), Verdict::Regressed { ratio: 1.4 }),
            (String::from("gone"), Verdict::Missing),
        ];
        let table = render_table("t", &verdicts);
        assert!(table.contains("ok"));
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("MISSING"));
    }

    #[test]
    fn merge_runs_keeps_the_fastest_observation_per_entry() {
        let run1 = vec![entry("a", 100.0), entry("b", 200.0)];
        let run2 = vec![entry("a", 80.0), entry("b", 260.0)];
        let run3 = vec![entry("a", 120.0), entry("b", 240.0)];
        let (merged, spread) = merge_runs(&[run1, run2, run3]);
        let a = merged.iter().find(|e| e.name == "a").unwrap();
        assert!((a.mean_ns - 80.0).abs() < 1e-9, "fastest mean wins");
        assert!((a.min_ns - 72.0).abs() < 1e-9, "fastest min wins");
        assert!((a.ops_per_sec - 1e9 / 80.0).abs() < 1e-3);
        assert_eq!(a.samples, 60, "samples accumulate across runs");
        let (_, fastest, slowest) = spread.iter().find(|(n, _, _)| n == "b").unwrap();
        assert!((fastest - 180.0).abs() < 1e-9, "spread tracks min-ns floor");
        assert!(
            (slowest - 234.0).abs() < 1e-9,
            "spread tracks min-ns ceiling"
        );
    }

    #[test]
    fn merge_runs_lets_informational_entries_pass_through_ungated() {
        let mut info = entry("scaling/ratio", 2.0);
        info.samples = 0;
        let mut later = entry("scaling/ratio", 3.0);
        later.samples = 0;
        let (merged, spread) = merge_runs(&[vec![info], vec![later]]);
        assert!((merged[0].mean_ns - 3.0).abs() < 1e-9, "last run wins");
        assert!(merged[0].is_informational());
        assert!(spread.is_empty(), "informational rows have no spread line");
    }

    #[test]
    fn rendered_reports_round_trip_through_the_parser() {
        let entries = parse_report(SAMPLE);
        let rendered = render_report("microbench_core", &entries);
        assert_eq!(rendered, SAMPLE, "merged baselines must match shim output");
        assert_eq!(parse_report(&rendered), entries);
    }

    #[test]
    fn spread_lines_appear_only_for_multi_run_layouts() {
        let spread = vec![(String::from("a"), 100.0, 150.0)];
        assert!(render_spread("t", &spread, 1).is_empty());
        let text = render_spread("t", &spread, 3);
        assert!(text.contains("t::a best-of-3"), "{text}");
        assert!(text.contains("1.50x"), "{text}");
    }

    #[test]
    fn collect_runs_merges_direct_and_run_subdirectory_reports() {
        let dir = std::env::temp_dir().join(format!("xtask-collect-{}", std::process::id()));
        let run1 = dir.join("run1");
        std::fs::create_dir_all(&run1).unwrap();
        std::fs::write(report_path(&dir, "core"), SAMPLE).unwrap();
        std::fs::write(report_path(&run1, "core"), SAMPLE).unwrap();
        let runs = collect_runs(&dir, "core").unwrap();
        assert_eq!(runs.len(), 2);
        assert!(collect_runs(&dir, "missing").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn public_item_scan_recognises_declarations() {
        assert_eq!(
            public_item_of("    pub fn observed_ip(&self) -> Ip {"),
            Some(String::from("pub fn observed_ip(&self) -> Ip"))
        );
        assert_eq!(
            public_item_of("pub const fn as_u32(self) -> u32 {"),
            Some(String::from("pub const fn as_u32(self) -> u32"))
        );
        assert_eq!(
            public_item_of("pub const FIRST_NAT_PORT: u16 = 1024;"),
            Some(String::from("pub const FIRST_NAT_PORT: u16 = 1024;"))
        );
        assert_eq!(
            public_item_of("pub use mapping::{MappingPolicy, PoolingBehavior};"),
            Some(String::from(
                "pub use mapping::{MappingPolicy, PoolingBehavior};"
            ))
        );
        assert_eq!(
            public_item_of("pub struct Endpoint {"),
            Some(String::from("pub struct Endpoint"))
        );
    }

    #[test]
    fn public_item_scan_skips_non_api_lines() {
        // Restricted visibility is not external API.
        assert_eq!(public_item_of("pub(crate) fn internal() {"), None);
        assert_eq!(public_item_of("    pub(super) mod detail;"), None);
        // Non-item uses of the word and non-pub lines.
        assert_eq!(public_item_of("fn private_helper() {"), None);
        assert_eq!(public_item_of("// pub fn in a comment"), None);
        assert_eq!(public_item_of("pub ip: Ip,"), None);
    }
}
