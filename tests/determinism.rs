//! Reproducibility: for a fixed seed, whole experiments — spanning the simulator, the NAT
//! emulation, the protocols and the metrics — produce bit-identical results run after run.

use croupier_suite::experiments::figures::{fig1_stable_ratio, fig8_failure};
use croupier_suite::experiments::output::Scale;
use croupier_suite::experiments::protocols::{run_kind, ProtocolConfigs, ProtocolKind};
use croupier_suite::experiments::runner::ExperimentParams;

#[test]
fn figure_runs_are_bit_identical_across_repetitions() {
    let a = fig1_stable_ratio::run(Scale::Tiny);
    let b = fig1_stable_ratio::run(Scale::Tiny);
    assert_eq!(
        a, b,
        "figure 1 must regenerate identically for the same seed"
    );
}

#[test]
fn failure_experiments_are_reproducible() {
    let a = fig8_failure::run(Scale::Tiny);
    let b = fig8_failure::run(Scale::Tiny);
    assert_eq!(
        a, b,
        "figure 7(b) must regenerate identically for the same seed"
    );
}

#[test]
fn every_protocol_is_deterministic_under_the_generic_driver() {
    let configs = ProtocolConfigs::default();
    for kind in ProtocolKind::ALL {
        let params = ExperimentParams::default()
            .with_seed(0xD37)
            .with_population(8, if kind == ProtocolKind::Cyclon { 0 } else { 24 })
            .with_rounds(30)
            .with_sample_every(5)
            .with_graph_metrics(8);
        let a = run_kind(kind, &params, &configs);
        let b = run_kind(kind, &params, &configs);
        assert_eq!(
            a.samples, b.samples,
            "{kind} runs diverged for the same seed"
        );
        assert_eq!(
            a.final_snapshot, b.final_snapshot,
            "{kind} snapshots diverged for the same seed"
        );
    }
}

#[test]
fn different_seeds_produce_different_runs() {
    let configs = ProtocolConfigs::default();
    let params = |seed| {
        ExperimentParams::default()
            .with_seed(seed)
            .with_population(8, 24)
            .with_rounds(30)
            .with_sample_every(5)
    };
    let a = run_kind(ProtocolKind::Croupier, &params(1), &configs);
    let b = run_kind(ProtocolKind::Croupier, &params(2), &configs);
    assert_ne!(
        a.final_snapshot.edges, b.final_snapshot.edges,
        "different seeds should explore different overlays"
    );
}
