//! Reproducibility: for a fixed seed, whole experiments — spanning the simulator, the NAT
//! emulation, the protocols and the metrics — produce bit-identical results run after run.

use croupier_suite::experiments::figures::{
    fig1_stable_ratio, fig3_system_size, fig4_ratio_sweep, fig8_failure,
};
use croupier_suite::experiments::output::Scale;
use croupier_suite::experiments::protocols::{run_kind, ProtocolConfigs, ProtocolKind};
use croupier_suite::experiments::runner::ExperimentParams;

#[test]
fn figure_runs_are_bit_identical_across_repetitions() {
    let a = fig1_stable_ratio::run(Scale::Tiny);
    let b = fig1_stable_ratio::run(Scale::Tiny);
    assert_eq!(
        a, b,
        "figure 1 must regenerate identically for the same seed"
    );
}

/// The figures the CSR metrics pipeline feeds directly regenerate byte-identically: the
/// serialized JSON — every float bit included — matches across repeated runs for a fixed
/// seed, so swapping the naive per-metric graph rebuilds for the shared CSR pipeline is
/// observationally invisible in the paper outputs.
#[test]
fn fig3_and_fig4_emit_byte_identical_json() {
    let render = |figures: Vec<croupier_suite::experiments::output::FigureData>| {
        figures
            .iter()
            .map(|figure| figure.to_json())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        render(fig3_system_size::run(Scale::Tiny)),
        render(fig3_system_size::run(Scale::Tiny)),
        "figure 3 JSON must be byte-identical for the same seed"
    );
    assert_eq!(
        render(fig4_ratio_sweep::run(Scale::Tiny)),
        render(fig4_ratio_sweep::run(Scale::Tiny)),
        "figure 4 JSON must be byte-identical for the same seed"
    );
}

#[test]
fn failure_experiments_are_reproducible() {
    let a = fig8_failure::run(Scale::Tiny);
    let b = fig8_failure::run(Scale::Tiny);
    assert_eq!(
        a, b,
        "figure 7(b) must regenerate identically for the same seed"
    );
}

#[test]
fn every_protocol_is_deterministic_under_the_generic_driver() {
    let configs = ProtocolConfigs::default();
    for kind in ProtocolKind::ALL {
        let params = ExperimentParams::default()
            .with_seed(0xD37)
            .with_population(8, if kind == ProtocolKind::Cyclon { 0 } else { 24 })
            .with_rounds(30)
            .with_sample_every(5)
            .with_graph_metrics(8);
        let a = run_kind(kind, &params, &configs);
        let b = run_kind(kind, &params, &configs);
        assert_eq!(
            a.samples, b.samples,
            "{kind} runs diverged for the same seed"
        );
        assert_eq!(
            a.final_snapshot, b.final_snapshot,
            "{kind} snapshots diverged for the same seed"
        );
    }
}

/// The sharded engine's headline guarantee: for a fixed seed, a phase-parallel run is
/// bit-identical — same samples, same final overlay snapshot, same per-node traffic
/// ledger — no matter how many worker threads execute it.
#[test]
fn sharded_runs_are_bit_identical_across_thread_counts() {
    let configs = ProtocolConfigs::default();
    let run = |threads: usize| {
        let params = ExperimentParams::default()
            .with_seed(0x5AAD)
            .with_population(10, 30)
            .with_rounds(40)
            .with_sample_every(5)
            .with_graph_metrics(8)
            .with_engine_threads(threads);
        run_kind(ProtocolKind::Croupier, &params, &configs)
    };
    let one = run(1);
    for threads in [2usize, 4, 8] {
        let other = run(threads);
        assert_eq!(
            one.samples, other.samples,
            "1 vs {threads} threads: samples diverged"
        );
        assert_eq!(
            one.final_snapshot, other.final_snapshot,
            "1 vs {threads} threads: snapshots diverged"
        );
        assert_eq!(
            one.traffic, other.traffic,
            "1 vs {threads} threads: traffic ledgers diverged"
        );
    }
}

/// Batched cross-shard delivery must not perturb traffic accounting: for every protocol,
/// the per-node byte counts of a single-worker sharded run and a four-worker sharded run
/// of the same seed are identical (the counters are summed per node across shard ledgers,
/// and all sender-side accounting happens in the canonical barrier order).
#[test]
fn traffic_ledgers_match_between_single_threaded_and_sharded_runs() {
    let configs = ProtocolConfigs::default();
    for kind in ProtocolKind::ALL {
        let run = |threads: usize| {
            let params = ExperimentParams::default()
                .with_seed(0x7AFF)
                .with_population(8, if kind == ProtocolKind::Cyclon { 0 } else { 24 })
                .with_rounds(30)
                .with_sample_every(5)
                .with_engine_threads(threads);
            run_kind(kind, &params, &configs)
        };
        let single = run(1);
        let sharded = run(4);
        assert_eq!(
            single.traffic, sharded.traffic,
            "{kind}: traffic ledgers diverged between 1 and 4 worker threads"
        );
        assert!(
            single.traffic.total_bytes_sent() > 0,
            "{kind}: the comparison must cover real traffic"
        );
    }
}

/// The scripted NAT-dynamics acceptance gate: a run whose script power-cycles gateways,
/// migrates nodes between gateways and takes a whole region offline — mutating the NAT
/// topology from inside the engine's round-barrier hook — is bit-identical across
/// sharded worker counts. This holds because the hook runs on the coordinating thread
/// after each phase's canonical merge, and every selection draw comes from a dedicated
/// stream of the master seed (DESIGN.md §11).
#[test]
fn scripted_nat_dynamics_runs_are_bit_identical_across_thread_counts() {
    use croupier_suite::experiments::scenario::ScenarioScript;
    let configs = ProtocolConfigs::default();
    let rounds = 40;
    let script = ScenarioScript::croupier_stress(rounds);
    assert!(
        script.settled_round().unwrap() < rounds,
        "the script must settle within the run for recovery to be observable"
    );
    let run = |threads: usize| {
        let params = ExperimentParams::default()
            .with_seed(0x5CE4)
            .with_population(10, 30)
            .with_rounds(rounds)
            .with_sample_every(5)
            .with_graph_metrics(8)
            .with_engine_threads(threads)
            .with_scenario(script.clone());
        run_kind(ProtocolKind::Croupier, &params, &configs)
    };
    let one = run(1);
    let two = run(2);
    let four = run(4);
    let eight = run(8);
    for (label, other) in [("2", &two), ("4", &four), ("8", &eight)] {
        assert_eq!(
            one.samples, other.samples,
            "1 vs {label} threads: scripted samples diverged"
        );
        assert_eq!(
            one.final_snapshot, other.final_snapshot,
            "1 vs {label} threads: scripted snapshots diverged"
        );
        assert_eq!(
            one.traffic, other.traffic,
            "1 vs {label} threads: scripted traffic ledgers diverged"
        );
        assert_eq!(
            one.nat_stats, other.nat_stats,
            "1 vs {label} threads: NAT statistics diverged"
        );
    }
    // The script actually bit: gateways rebooted and a region went dark and came back.
    assert!(
        one.nat_stats.blocked_messages > 0,
        "the outage blocks traffic"
    );
    assert_eq!(one.nat_stats.offline_nodes, 0, "the outage was restored");
    // And the overlay recovered.
    let last = one.samples.last().expect("samples");
    assert!(
        last.largest_component.unwrap() >= 0.95,
        "croupier should recover connectivity after the scripted stress, got {:?}",
        last.largest_component
    );
}

/// The fault plane's acceptance gate: a run whose script injects probabilistic drops,
/// Gilbert–Elliott bursts, duplication, reordering spikes and payload corruption — and
/// whose protocols fire timeout retries in response — is bit-identical across sharded
/// worker counts AND across metrics-worker counts. Fault decisions are drawn during the
/// barrier's sequential canonical-order merge from a dedicated RNG stream, so thread
/// scheduling never reaches them (DESIGN.md §15).
#[test]
fn fault_injected_runs_are_bit_identical_across_thread_counts() {
    use croupier_suite::experiments::scenario::ScenarioScript;
    let configs = ProtocolConfigs::default();
    let rounds = 40;
    let script = ScenarioScript::lossy_10(rounds);
    let run = |threads: usize, metrics_workers: usize| {
        let params = ExperimentParams::default()
            .with_seed(0xFA17)
            .with_population(10, 30)
            .with_rounds(rounds)
            .with_sample_every(5)
            .with_graph_metrics(8)
            .with_engine_threads(threads)
            .with_metrics_workers(metrics_workers)
            .with_scenario(script.clone());
        run_kind(ProtocolKind::Croupier, &params, &configs)
    };
    let one = run(1, 0);
    assert!(
        one.fault_report.injected_drops > 0,
        "the lossy window must inject, got {:?}",
        one.fault_report
    );
    assert!(
        one.fault_report.retries_fired > 0,
        "injected loss must trigger timeout retries"
    );
    for threads in [2usize, 4, 8] {
        let other = run(threads, 0);
        assert_eq!(
            one.samples, other.samples,
            "1 vs {threads} threads: fault-injected samples diverged"
        );
        assert_eq!(
            one.final_snapshot, other.final_snapshot,
            "1 vs {threads} threads: fault-injected snapshots diverged"
        );
        assert_eq!(
            one.traffic, other.traffic,
            "1 vs {threads} threads: fault-injected traffic ledgers diverged"
        );
        assert_eq!(
            one.fault_report, other.fault_report,
            "1 vs {threads} threads: fault reports diverged"
        );
    }
    // Offloading the metrics analysis must not perturb the fault plane either: the
    // decisions are all drawn on the driver thread before any sample is captured.
    let overlapped = run(4, 2);
    assert_eq!(
        one.samples, overlapped.samples,
        "0 vs 2 metrics workers: fault-injected samples diverged"
    );
    assert_eq!(
        one.fault_report, overlapped.fault_report,
        "0 vs 2 metrics workers: fault reports diverged"
    );
}

#[test]
fn different_seeds_produce_different_runs() {
    let configs = ProtocolConfigs::default();
    let params = |seed| {
        ExperimentParams::default()
            .with_seed(seed)
            .with_population(8, 24)
            .with_rounds(30)
            .with_sample_every(5)
    };
    let a = run_kind(ProtocolKind::Croupier, &params(1), &configs);
    let b = run_kind(ProtocolKind::Croupier, &params(2), &configs);
    assert_ne!(
        a.final_snapshot.edges, b.final_snapshot.edges,
        "different seeds should explore different overlays"
    );
}
