//! Allocation-count instrumentation for the message plane.
//!
//! A counting global allocator (thread-local, so concurrently running tests cannot
//! pollute each other's counters) proves the PR 4 claim end-to-end: once a deployment
//! reaches steady state, executing a full gossip round — payload construction, event
//! scheduling through the time-wheel, outbox/mailbox routing, the barrier merge, traffic
//! accounting — performs **zero heap allocations** on either engine.
//!
//! Two measurement regimes:
//!
//! * The *exact-zero* tests disable clock-skew jitter and use a constant latency, which
//!   makes the event timeline periodic: after the warm-up every wheel bucket, context
//!   buffer and cache has seen its worst-case load, so the assertion can be `== 0`
//!   forever. Randomised latency/jitter would keep producing occasional new per-bucket
//!   collision peaks — amortised-O(1) pool growth, not per-event allocation — which the
//!   *amortised-tail* test pins separately under the realistic King + jitter
//!   configuration with a small bound.
//! * All runs use the open-Internet delivery filter: NAT emulation keeps per-flow binding
//!   state whose churn is protocol-level bookkeeping, not message-plane work.
//! * All runs use `engine_threads = 1`: the counter is a thread-local `Cell`, so it can
//!   only observe the measuring thread, and the single-worker sharded path runs inline on
//!   it. The multi-worker path executes the *same* `Shard::execute`/barrier code on scoped
//!   workers, so the per-shard pools are covered by these assertions; a worker-side
//!   counter would be needed to pin thread-spawn overhead itself, which is not part of
//!   the message plane.
//!
//! Everything is seeded, so each assertion is exactly reproducible.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use croupier::{CroupierConfig, CroupierNode};
use croupier_simulator::event::Event;
use croupier_simulator::latency::ConstantLatency;
use croupier_simulator::scheduler::EventQueue;
use croupier_simulator::{
    NatClass, NodeId, ShardedSimulation, SimDuration, SimTime, Simulation, SimulationConfig,
};

/// Delegates to the system allocator while counting allocations made by this thread.
struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: pure delegation to `System`; the counter is a thread-local `Cell` bump with a
// `try_with` guard for TLS teardown.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Number of heap allocations `f` performed on the calling thread.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.with(Cell::get);
    let result = f();
    (ALLOCATIONS.with(Cell::get) - before, result)
}

const NODES: u64 = 1_000;
/// One node in five is public, the paper's default ratio.
const PUBLIC_EVERY: u64 = 5;
/// Steady state for the periodic (jitter-free, constant-latency) configuration: past the
/// bootstrap transient, views full, the ratio-estimate caches at their γ-bounded working
/// set (γ = 50 rounds), and — because the timeline repeats with the wheel's 8-round
/// period — every bucket and buffer at its worst-case load.
const WARMUP_ROUNDS: u64 = 80;

fn class_of(i: u64) -> NatClass {
    if i.is_multiple_of(PUBLIC_EVERY) {
        NatClass::Public
    } else {
        NatClass::Private
    }
}

/// Jitter-free config: round times are pinned to each node's random phase, so the event
/// timeline (and with it every bucket's load) is periodic.
fn periodic_config(threads: usize) -> SimulationConfig {
    SimulationConfig::default()
        .with_seed(0xA110C)
        .with_round_jitter(0.0)
        .with_engine_threads(threads)
}

fn populate<E>(sim: &mut E)
where
    E: croupier_simulator::SimulationEngine<CroupierNode>,
{
    for i in 0..NODES {
        let id = NodeId::new(i);
        let class = class_of(i);
        if class.is_public() {
            sim.register_public(id);
        }
        sim.add_node(id, CroupierNode::new(id, class, CroupierConfig::default()));
    }
}

#[test]
fn sharded_engine_steady_state_round_allocates_nothing() {
    let mut sim = ShardedSimulation::new(periodic_config(1));
    sim.set_latency_model(ConstantLatency::new(SimDuration::from_millis(150)));
    populate(&mut sim);
    sim.run_for_rounds(WARMUP_ROUNDS);
    let delivered_before = sim.network_stats().delivered;

    let (allocs, ()) = allocations_during(|| sim.run_for_rounds(1));

    let delivered = sim.network_stats().delivered - delivered_before;
    assert!(
        delivered >= NODES,
        "the measured round must be a real round: only {delivered} deliveries"
    );
    assert_eq!(
        allocs, 0,
        "sharded message plane allocated {allocs} times during a steady-state round \
         ({delivered} deliveries)"
    );
}

#[test]
fn event_engine_steady_state_round_allocates_nothing() {
    let mut sim = Simulation::new(periodic_config(1));
    sim.set_latency_model(ConstantLatency::new(SimDuration::from_millis(150)));
    populate(&mut sim);
    sim.run_for_rounds(WARMUP_ROUNDS);
    let delivered_before = sim.network_stats().delivered;

    let (allocs, ()) = allocations_during(|| sim.run_for_rounds(1));

    let delivered = sim.network_stats().delivered - delivered_before;
    assert!(
        delivered >= NODES,
        "the measured round must be a real round: only {delivered} deliveries"
    );
    assert_eq!(
        allocs, 0,
        "event-engine message plane allocated {allocs} times during a steady-state round \
         ({delivered} deliveries)"
    );
}

/// Under the realistic configuration (King latencies, clock-skew jitter) round times keep
/// drifting, so a wheel bucket occasionally sees a deeper same-millisecond collision than
/// ever before and doubles its capacity — amortised pool growth, not per-event work. This
/// pins the tail: across ten rounds with ~2 000 deliveries each, a handful of such
/// doublings at most.
#[test]
fn realistic_config_allocation_tail_is_amortised() {
    let mut sim = ShardedSimulation::new(
        SimulationConfig::default()
            .with_seed(0xA110C)
            .with_engine_threads(1),
    );
    populate(&mut sim);
    sim.run_for_rounds(200);
    let (allocs, ()) = allocations_during(|| sim.run_for_rounds(10));
    assert!(
        allocs <= 64,
        "expected an amortised allocation tail (a few pool doublings), got {allocs} \
         allocations over ten rounds"
    );
}

/// Clocked schedule/pop churn over `[start, start + ticks)`: every tick schedules a burst
/// (size cycling through `BURSTS`) at mixed near-future delays, then pops everything due.
/// The whole pattern is a pure function of the tick, with period `lcm(8, 3) = 24` — and
/// 24-tick patterns revisit the same wheel buckets every three ring revolutions — so a
/// warm-up of a few revolutions provably exposes every bucket to its worst-case load and
/// the steady-state assertion can demand exactly zero.
fn churn(queue: &mut EventQueue<u64>, start: u64, ticks: u64) {
    const BURSTS: [u64; 8] = [1, 5, 2, 9, 3, 1, 7, 4];
    const DELAYS: [u64; 3] = [3, 250, 1_999];
    for t in start..start + ticks {
        let burst = BURSTS[(t % 8) as usize];
        for b in 0..burst {
            queue.schedule(
                SimTime::from_millis(t + DELAYS[((t + b) % 3) as usize]),
                Event::Deliver {
                    from: NodeId::new(t),
                    to: NodeId::new(b),
                    msg: t ^ b,
                },
            );
        }
        while queue.peek_time().is_some_and(|due| due.as_millis() <= t) {
            queue.pop();
        }
    }
}

#[test]
fn time_wheel_steady_state_churn_allocates_nothing() {
    let mut queue: EventQueue<u64> = EventQueue::new();
    // Warm-up: four full ring revolutions (the pattern's bucket alignments repeat every
    // three), sizing every bucket to its worst-case load.
    let warm_ticks = 4 * 8_000;
    churn(&mut queue, 0, warm_ticks);
    let (allocs, ()) = allocations_during(|| churn(&mut queue, warm_ticks, 8_000));
    assert_eq!(
        allocs, 0,
        "time-wheel allocated {allocs} times during steady-state schedule/pop churn"
    );
    assert!(queue.scheduled_total() >= 100_000);
    while queue.pop().is_some() {}
    assert!(queue.is_empty());
}
