//! Seeded fuzz smoke: every protocol survives a hostile message plane.
//!
//! Two layers, both plain seeded `#[test]`s (the offline build has no coverage-guided
//! fuzzer, and none is needed for a smoke tier):
//!
//! 1. **Mutation storm** — hundreds of composed `WireSize::fault_mutate` rounds against
//!    real in-flight messages harvested from each protocol's own send path, checking the
//!    typed-channel damage model keeps messages structurally valid (`wire_size` never
//!    panics or explodes).
//! 2. **End-to-end corruption runs** — full experiment runs for all four protocols under
//!    a fault profile that corrupts *every* datagram while also dropping, duplicating
//!    and reordering; the receive paths must absorb arbitrary mutated payloads without
//!    panicking and the run must still produce a populated overlay.

use croupier_suite::baselines::{BaselineConfig, CyclonNode, GozarNode, NylonNode};
use croupier_suite::croupier::{CroupierConfig, CroupierNode};
use croupier_suite::experiments::protocols::{run_kind, ProtocolConfigs, ProtocolKind};
use croupier_suite::experiments::runner::ExperimentParams;
use croupier_suite::experiments::scenario::{FaultEvent, ScenarioScript};
use croupier_suite::simulator::{
    BootstrapRegistry, Context, ContextParams, FaultProfile, NatClass, NodeId, Protocol,
    SimDuration, SimTime, SimTransport, WireSize,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The profile for the end-to-end runs: every surviving datagram is corrupted, and the
/// plane also drops, duplicates and reorders — the harshest combination the scenario
/// vocabulary can express.
fn hostile_profile() -> FaultProfile {
    FaultProfile::default()
        .with_corrupt(1.0)
        .with_drop(0.2)
        .with_duplicate(0.3)
        .with_reorder(0.3, SimDuration::from_millis(2_000))
}

#[test]
fn all_protocols_survive_a_fully_corrupting_network() {
    let configs = ProtocolConfigs::default();
    for kind in ProtocolKind::ALL {
        for seed in [1u64, 0xF00D, 0xDEAD_BEEF] {
            let script = ScenarioScript::new("fuzz_smoke").fault_at(
                1,
                FaultEvent::FaultProfileChange {
                    profile: hostile_profile(),
                },
            );
            let params = ExperimentParams::default()
                .with_seed(seed)
                .with_population(8, if kind == ProtocolKind::Cyclon { 0 } else { 24 })
                .with_rounds(30)
                .with_sample_every(10)
                .with_scenario(script);
            let out = run_kind(kind, &params, &configs);
            assert!(
                out.fault_report.corruptions > 0,
                "{kind} seed {seed:#x}: the run must actually corrupt messages"
            );
            assert!(
                out.last_sample().is_some_and(|s| s.node_count > 0),
                "{kind} seed {seed:#x}: the run must end with live nodes"
            );
        }
    }
}

/// Runs a freshly bootstrapped `node` for one start + one round against a scratch
/// transport and returns every message it tried to send.
fn harvest<P: Protocol>(mut node: P, seed: u64) -> Vec<P::Message> {
    let mut bootstrap = BootstrapRegistry::new();
    for i in 1..=5u64 {
        bootstrap.register(NodeId::new(i));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut transport: SimTransport<'_, P::Message> = SimTransport::new(ContextParams {
        node: NodeId::new(0),
        now: SimTime::ZERO,
        round_period: SimDuration::from_secs(1),
        rng: &mut rng,
        bootstrap: &bootstrap,
    });
    {
        let mut ctx = Context::new(&mut transport);
        node.on_start(&mut ctx);
        node.on_round(&mut ctx);
    }
    let (outbox, _) = transport.into_effects();
    outbox.into_iter().map(|out| out.msg).collect()
}

/// Drives `fault_mutate` directly and far harder than any run would: each harvested
/// message is mutated hundreds of times *in sequence* (mutations compose — a truncated
/// list gets scrambled, a scrambled descriptor gets truncated away), and after every
/// step the message must still size itself sanely.
fn storm<M: WireSize>(label: &str, rng: &mut SmallRng, mut msg: M) {
    for step in 0..400 {
        msg.fault_mutate(rng);
        let size = msg.wire_size();
        assert!(size > 0, "{label} step {step}: wire size vanished");
        // A mutation must never grow a message past the UDP payload a real deployment
        // would carry (the paper's messages are all sub-KB).
        assert!(
            size < 65_536,
            "{label} step {step}: wire size {size} exploded"
        );
    }
}

#[test]
fn repeated_mutation_keeps_messages_structurally_valid() {
    let mut rng = SmallRng::seed_from_u64(0xF022);
    let mut harvested = 0usize;
    for _ in 0..25 {
        let seed = rng.gen();
        for msg in harvest(
            CroupierNode::new(NodeId::new(0), NatClass::Private, CroupierConfig::default()),
            seed,
        ) {
            harvested += 1;
            storm("croupier", &mut rng, msg);
        }
        for msg in harvest(
            CyclonNode::new(NodeId::new(0), BaselineConfig::default()),
            seed,
        ) {
            harvested += 1;
            storm("cyclon", &mut rng, msg);
        }
        for msg in harvest(
            GozarNode::new(NodeId::new(0), NatClass::Private, BaselineConfig::default()),
            seed,
        ) {
            harvested += 1;
            storm("gozar", &mut rng, msg);
        }
        for msg in harvest(
            NylonNode::new(NodeId::new(0), NatClass::Private, BaselineConfig::default()),
            seed,
        ) {
            harvested += 1;
            storm("nylon", &mut rng, msg);
        }
    }
    assert!(
        harvested >= 50,
        "the harness must exercise real messages, got {harvested}"
    );
}
