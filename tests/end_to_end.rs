//! Full-stack integration test: nodes first classify themselves with the distributed
//! NAT-type identification protocol (§V of the paper), then join the Croupier peer-sampling
//! service with the class the protocol determined — exactly the deployment flow the paper
//! describes.

use std::sync::Arc;

use croupier_suite::croupier::{
    CroupierConfig, CroupierNode, NatIdentificationConfig, NatIdentificationNode,
};
use croupier_suite::nat::{AddressInfo, FilteringPolicy, NatTopologyBuilder};
use croupier_suite::simulator::{
    NatClass, NodeId, PssNode, SimDuration, Simulation, SimulationConfig,
};

const N_PUBLIC: u64 = 10;
const N_PRIVATE: u64 = 40;
const N_UPNP: u64 = 5;

#[test]
fn nat_identification_then_peer_sampling() {
    // ---- Phase 1: build the NAT topology and classify every node with Algorithm 1. ----
    let topology = NatTopologyBuilder::new(0xE2E)
        .filtering_mix(&[
            (FilteringPolicy::EndpointIndependent, 0.3),
            (FilteringPolicy::AddressDependent, 0.2),
            (FilteringPolicy::AddressAndPortDependent, 0.5),
        ])
        .build();
    let info: Arc<dyn AddressInfo + Send + Sync> = Arc::new(topology.clone());

    let mut ident_sim = Simulation::new(SimulationConfig::default().with_seed(0xE2E));
    ident_sim.set_delivery_filter(topology.clone());

    let total = N_PUBLIC + N_PRIVATE + N_UPNP;
    for i in 0..total {
        let id = NodeId::new(i);
        if i < N_PUBLIC {
            topology.add_public_node(id);
        } else if i < N_PUBLIC + N_PRIVATE {
            topology.add_private_node(id);
        } else {
            topology.add_upnp_node(id);
        }
    }
    // Seed the bootstrap server with a few long-lived public nodes (as a deployment would),
    // then let everyone run the identification protocol.
    for i in 0..N_PUBLIC {
        ident_sim.register_public(NodeId::new(i));
    }
    for i in 0..total {
        let id = NodeId::new(i);
        ident_sim.add_node(
            id,
            NatIdentificationNode::new_client(
                id,
                Arc::clone(&info),
                NatIdentificationConfig::default(),
            ),
        );
    }
    ident_sim.run_for(SimDuration::from_secs(15));

    // Every node reaches a conclusion, and the conclusion matches the topology's effective
    // class (UPnP nodes count as public).
    let mut classified = Vec::new();
    for i in 0..total {
        let id = NodeId::new(i);
        let node = ident_sim.node(id).expect("node exists");
        let conclusion = node.conclusion().expect("identification must conclude");
        assert_eq!(
            conclusion,
            topology.class_of(id).expect("class known"),
            "node {id} misclassified itself"
        );
        classified.push((id, conclusion));
    }

    // ---- Phase 2: run Croupier with the classes the nodes determined themselves. ----
    let mut pss_sim = Simulation::new(SimulationConfig::default().with_seed(0x9A9));
    pss_sim.set_delivery_filter(topology.clone());
    for (id, class) in &classified {
        if class.is_public() {
            pss_sim.register_public(*id);
        }
    }
    for (id, class) in &classified {
        pss_sim.add_node(
            *id,
            CroupierNode::new(*id, *class, CroupierConfig::default()),
        );
    }
    pss_sim.run_for_rounds(80);

    let true_ratio = classified.iter().filter(|(_, c)| c.is_public()).count() as f64 / total as f64;
    let mut worst_error: f64 = 0.0;
    let mut sampled_private = 0usize;
    for (id, _) in &classified {
        let estimate = pss_sim
            .node(*id)
            .unwrap()
            .ratio_estimate()
            .expect("every node estimates the ratio");
        worst_error = worst_error.max((estimate - true_ratio).abs());
        if let Some(sample) = pss_sim.sample_from(*id) {
            if pss_sim.node(sample).map(|n| n.nat_class()) == Some(NatClass::Private) {
                sampled_private += 1;
            }
        }
    }
    assert!(
        worst_error < 0.12,
        "worst ratio-estimation error after 80 rounds should be small, got {worst_error}"
    );
    assert!(
        sampled_private > 0,
        "private nodes must show up in peer samples despite sitting behind NATs"
    );
}
