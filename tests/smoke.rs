//! Fast end-to-end guardrail: a tiny 64-node Croupier simulation must produce a fully
//! connected overlay with working ratio estimation. Runs in well under a second, so it
//! catches wiring regressions (engine ↔ protocol ↔ NAT emulation ↔ metrics) long before
//! the heavy paper-claims suites get a chance to.

use croupier_suite::croupier::{CroupierConfig, CroupierNode};
use croupier_suite::metrics::{largest_component_fraction, OverlaySnapshot};
use croupier_suite::nat::NatTopologyBuilder;
use croupier_suite::simulator::{NatClass, NodeId, PssNode, Simulation, SimulationConfig};

const N_PUBLIC: u64 = 13;
const N_PRIVATE: u64 = 51;
const ROUNDS: u64 = 40;

fn run_small_croupier() -> Simulation<CroupierNode> {
    let topology = NatTopologyBuilder::new(64).build();
    let mut sim = Simulation::new(SimulationConfig::default().with_seed(64));
    sim.set_delivery_filter(topology.clone());
    for i in 0..(N_PUBLIC + N_PRIVATE) {
        let id = NodeId::new(i);
        let class = if i < N_PUBLIC {
            NatClass::Public
        } else {
            NatClass::Private
        };
        topology.add_node(id, class);
        if class.is_public() {
            sim.register_public(id);
        }
        sim.add_node(id, CroupierNode::new(id, class, CroupierConfig::default()));
    }
    sim.run_for_rounds(ROUNDS);
    sim
}

#[test]
fn tiny_croupier_simulation_produces_a_connected_overlay() {
    let sim = run_small_croupier();

    // The engine actually moved traffic through the NAT emulation.
    let stats = sim.network_stats();
    assert!(stats.delivered > 0, "no messages were delivered");

    // Every node executed rounds and filled its views.
    for (id, node) in sim.nodes() {
        assert!(node.rounds_executed() > 0, "node {id} never ran a round");
        assert!(
            !node.known_peers().is_empty(),
            "node {id} has an empty view"
        );
    }

    // The overlay built from every partial view is a single connected component.
    let snapshot = OverlaySnapshot::capture(&sim, 1);
    assert_eq!(snapshot.node_count() as u64, N_PUBLIC + N_PRIVATE);
    let connected = largest_component_fraction(&snapshot);
    assert!(
        (connected - 1.0).abs() < 1e-9,
        "overlay must be fully connected, got fraction {connected}"
    );
}

#[test]
fn tiny_croupier_simulation_estimates_the_ratio_and_samples_peers() {
    let mut sim = run_small_croupier();
    let true_ratio = N_PUBLIC as f64 / (N_PUBLIC + N_PRIVATE) as f64;

    // Every node converged to a sane public/private-ratio estimate.
    for (id, node) in sim.nodes() {
        let estimate = node
            .ratio_estimate()
            .unwrap_or_else(|| panic!("node {id} has no ratio estimate"));
        assert!(
            (estimate - true_ratio).abs() < 0.15,
            "node {id} estimate {estimate:.3} is far from the true ratio {true_ratio:.3}"
        );
    }

    // Peer sampling works from an arbitrary private node.
    let witness = NodeId::new(N_PUBLIC + 1);
    let mut drawn = std::collections::HashSet::new();
    for _ in 0..20 {
        if let Some(sample) = sim.sample_from(witness) {
            assert_ne!(sample, witness, "a node must not sample itself");
            drawn.insert(sample);
        }
    }
    assert!(
        drawn.len() >= 3,
        "twenty draws should hit several distinct peers, got {drawn:?}"
    );
}
