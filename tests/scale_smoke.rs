//! Large-scale smoke test: a 100k-node Croupier deployment on the sharded engine.
//!
//! This is the CI `scale-smoke` job's workload (`cargo test --release --test scale_smoke
//! -- --ignored`); it is `#[ignore]`d by default so plain `cargo test` stays fast for
//! local iteration.

use croupier::{CroupierConfig, CroupierNode};
use croupier_suite::experiments::figures::fig3_system_size;
use croupier_suite::experiments::output::Scale;
use croupier_suite::experiments::runner::run_pss;

/// 100k nodes, 20 % public, four worker threads, a handful of rounds: enough to exercise
/// joins, striped shard assignment, cross-shard mailbox merges and metric sampling at the
/// `Scale::Large` system size on every PR.
///
/// The parameters come from `fig3_system_size::params(Scale::Large, ..)` — the same
/// configuration `figures --scale large` runs — with only the duration shortened, so the
/// smoke keeps guarding whatever the Large tier actually does.
#[test]
#[ignore = "100k-node run; executed by the CI scale-smoke job"]
fn croupier_100k_nodes_on_the_sharded_engine() {
    let params = fig3_system_size::params(Scale::Large, 100_000, 0x10_0000)
        .with_rounds(12)
        .with_sample_every(4);
    assert_eq!(params.engine_threads, 4, "Large runs on the sharded engine");
    let out = run_pss(&params, |id, class, _| {
        CroupierNode::new(id, class, CroupierConfig::default())
    });
    let last = out.last_sample().expect("samples were taken");
    assert_eq!(last.node_count, 100_000, "every node joined and survived");
    assert!(
        (out.final_true_ratio - 0.2).abs() < 1e-9,
        "ratio intact: {}",
        out.final_true_ratio
    );
    assert!(
        last.estimation.average < 0.5,
        "estimates must be sane after a few rounds, got {}",
        last.estimation.average
    );
    assert!(
        out.traffic.total_messages_sent() > 100_000,
        "the overlay must actually gossip at scale"
    );
    assert!(
        out.final_snapshot.node_count() > 90_000,
        "most nodes have executed enough rounds to be observed: {}",
        out.final_snapshot.node_count()
    );
}
