//! Large-scale smoke tests: 100k-node and million-node Croupier deployments on the
//! sharded engine.
//!
//! These are the CI `scale-smoke` and `huge-smoke` jobs' workloads (`cargo test
//! --release --test scale_smoke -- --ignored <name>`); they are `#[ignore]`d by default
//! so plain `cargo test` stays fast for local iteration.

use croupier::{CroupierConfig, CroupierNode};
use croupier_suite::experiments::figures::fig3_system_size;
use croupier_suite::experiments::output::Scale;
use croupier_suite::experiments::runner::{run_pss, RunOutput};

/// Writes the per-sample metrics timing (and the overlap summary) as a JSON artifact the
/// CI `huge-smoke` job uploads; integration tests in the root package run with the
/// workspace root as cwd, so the relative path lands in `target/`.
fn write_metrics_timing_artifact(out: &RunOutput, name: &str) {
    let dir = std::path::Path::new("target/metrics-timing");
    std::fs::create_dir_all(dir).expect("create target/metrics-timing");
    let mut json = String::from("{\n  \"samples\": [\n");
    for (i, t) in out.metrics_timing.iter().enumerate() {
        let comma = if i + 1 < out.metrics_timing.len() {
            ","
        } else {
            ""
        };
        json.push_str(&format!(
            "    {{\"round\": {}, \"capture_ns\": {}, \"analysis_ns\": {}, \
             \"offloaded\": {}}}{comma}\n",
            t.round, t.capture_ns, t.analysis_ns, t.offloaded
        ));
    }
    json.push_str("  ]");
    if let Some(overlap) = &out.metrics_overlap {
        json.push_str(&format!(
            ",\n  \"overlap\": {{\"workers\": {}, \"offloaded_samples\": {}, \
             \"analysis_ns\": {}, \"blocked_ns\": {}, \"overlap_ratio\": {:.4}}}",
            overlap.workers,
            overlap.offloaded_samples,
            overlap.analysis_ns,
            overlap.blocked_ns,
            overlap.overlap_ratio
        ));
    }
    json.push_str("\n}\n");
    std::fs::write(dir.join(name), json).expect("write metrics-timing artifact");
}

/// 100k nodes, 20 % public, four worker threads, a handful of rounds: enough to exercise
/// joins, striped shard assignment, cross-shard mailbox merges and metric sampling at the
/// `Scale::Large` system size on every PR.
///
/// The parameters come from `fig3_system_size::params(Scale::Large, ..)` — the same
/// configuration `figures --scale large` runs — with only the duration shortened, so the
/// smoke keeps guarding whatever the Large tier actually does.
#[test]
#[ignore = "100k-node run; executed by the CI scale-smoke job"]
fn croupier_100k_nodes_on_the_sharded_engine() {
    let params = fig3_system_size::params(Scale::Large, 100_000, 0x10_0000)
        .with_rounds(12)
        .with_sample_every(4);
    assert_eq!(params.engine_threads, 4, "Large runs on the sharded engine");
    let out = run_pss(&params, |id, class, _| {
        CroupierNode::new(id, class, CroupierConfig::default())
    });
    let last = out.last_sample().expect("samples were taken");
    assert_eq!(last.node_count, 100_000, "every node joined and survived");
    assert!(
        (out.final_true_ratio - 0.2).abs() < 1e-9,
        "ratio intact: {}",
        out.final_true_ratio
    );
    assert!(
        last.estimation.average < 0.5,
        "estimates must be sane after a few rounds, got {}",
        last.estimation.average
    );
    assert!(
        out.traffic.total_messages_sent() > 100_000,
        "the overlay must actually gossip at scale"
    );
    assert!(
        out.final_snapshot.node_count() > 90_000,
        "most nodes have executed enough rounds to be observed: {}",
        out.final_snapshot.node_count()
    );
}

/// The million-node tier: 1M nodes, 20 % public, eight worker threads and incremental
/// connectivity sampling. Beyond what the 100k smoke covers, this exercises the packed
/// descriptor/estimate layouts and the u32 NAT mapping tables at a population where the
/// unpacked layouts would not fit in CI memory, and asserts the per-sample metrics kept
/// to the sublinear incremental tiers instead of falling back to full edge scans — for
/// connectivity and the in-degree family alike — while the snapshot analysis overlapped
/// with the simulation on the two `Scale::Huge` metrics workers.
#[test]
#[ignore = "million-node run; executed by the CI huge-smoke job"]
fn croupier_one_million_nodes_on_the_sharded_engine() {
    let params = fig3_system_size::params(Scale::Huge, 1_000_000, 0x100_0000)
        .with_rounds(8)
        .with_sample_every(2);
    assert_eq!(
        params.engine_threads, 8,
        "Huge runs on eight sharded workers"
    );
    assert!(params.incremental_components);
    assert!(params.incremental_indegree);
    assert_eq!(params.metrics_workers, 2, "Huge overlaps metrics analysis");
    let out = run_pss(&params, |id, class, _| {
        CroupierNode::new(id, class, CroupierConfig::default())
    });
    write_metrics_timing_artifact(&out, "huge_smoke_metrics_timing.json");
    let last = out.last_sample().expect("samples were taken");
    assert_eq!(last.node_count, 1_000_000, "every node joined and survived");
    assert!(
        (out.final_true_ratio - 0.2).abs() < 1e-9,
        "ratio intact: {}",
        out.final_true_ratio
    );
    assert!(
        last.largest_component.is_some(),
        "incremental sampling populates the component metric without the CSR pipeline"
    );
    let (rebuilds, sublinear) = out
        .incremental_component_updates
        .expect("incremental diagnostics are reported");
    assert!(
        sublinear >= rebuilds,
        "per-sample connectivity must stay on the sublinear tiers \
         ({rebuilds} rebuilds vs {sublinear} sublinear updates)"
    );
    assert!(
        out.traffic.total_messages_sent() > 1_000_000,
        "the overlay must actually gossip at scale"
    );
    assert!(
        last.indegree_gini.is_some(),
        "the incremental tracker populates the Gini metric per sample"
    );
    let (in_rebuilds, in_fast) = out
        .incremental_indegree_updates
        .expect("incremental in-degree diagnostics are reported");
    assert!(
        in_fast >= 1,
        "once membership settles, in-degree must ride the O(delta) fast path \
         ({in_rebuilds} rebuilds vs {in_fast} fast updates)"
    );
    let overlap = out
        .metrics_overlap
        .expect("the overlapped driver reports its pipeline diagnostics");
    assert_eq!(overlap.workers, 2);
    assert_eq!(
        overlap.offloaded_samples,
        out.metrics_timing.len() as u64,
        "every sample's analysis ran on the metrics workers"
    );
    assert!(overlap.offloaded_samples > 0);
    println!(
        "metrics overlap: {} samples offloaded, analysis {:.1} ms, driver blocked {:.1} ms \
         (overlap ratio {:.2})",
        overlap.offloaded_samples,
        overlap.analysis_ns as f64 / 1e6,
        overlap.blocked_ns as f64 / 1e6,
        overlap.overlap_ratio
    );
}
