//! Randomized property tests of the core data structures and their invariants: bounded
//! views, the ratio estimator, the sampler, the NAT gateway mapping table and simulated
//! time arithmetic.
//!
//! Originally written against `proptest`; the offline build environment cannot fetch it,
//! so the same properties are exercised with a deterministic seeded case generator. Every
//! test runs a few hundred independently generated cases and reports the case seed on
//! failure, so a failing case reproduces exactly.

use croupier_suite::croupier::{
    sample_from_views, Descriptor, EstimateRecord, RatioEstimator, View,
};
use croupier_suite::metrics::reference::{
    naive_average_clustering_coefficient, naive_average_path_length,
    naive_largest_component_fraction,
};
use croupier_suite::metrics::{MetricsContext, NodeObservation, OverlaySnapshot};
use croupier_suite::nat::{FilteringPolicy, Ip, NatGateway, NatGatewayConfig};
use croupier_suite::simulator::{NatClass, NodeId, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of random cases per property.
const CASES: u64 = 250;

/// Runs `check` once per case with an independently seeded generator.
fn for_each_case(name: &str, mut check: impl FnMut(&mut SmallRng)) {
    for case in 0..CASES {
        let seed = 0x5eed_0000 + case;
        let mut rng = SmallRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check(&mut rng);
        }));
        if let Err(panic) = result {
            eprintln!("property `{name}` failed for case seed {seed:#x}");
            std::panic::resume_unwind(panic);
        }
    }
}

fn arb_class(rng: &mut SmallRng) -> NatClass {
    if rng.gen_bool(0.5) {
        NatClass::Public
    } else {
        NatClass::Private
    }
}

fn arb_descriptor(rng: &mut SmallRng) -> Descriptor {
    let id = rng.gen_range(0u64..64);
    let class = arb_class(rng);
    let age = rng.gen_range(0u32..100);
    Descriptor::with_age(NodeId::new(id), class, age)
}

fn arb_descriptors(rng: &mut SmallRng, max_len: usize) -> Vec<Descriptor> {
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| arb_descriptor(rng)).collect()
}

/// A view never exceeds its capacity, never contains duplicates and never contains the
/// owner, no matter what sequence of exchanges it absorbs.
#[test]
fn view_invariants_hold_under_arbitrary_exchanges() {
    for_each_case("view_invariants", |rng| {
        let capacity = rng.gen_range(1usize..12);
        let owner = NodeId::new(1_000);
        let mut view = View::new(capacity);
        let exchange_count = rng.gen_range(0usize..12);
        for _ in 0..exchange_count {
            let sent = arb_descriptors(rng, 7);
            let received = arb_descriptors(rng, 7);
            view.increment_ages();
            view.apply_exchange_swapper(&sent, &received, owner);

            assert!(view.len() <= capacity, "capacity exceeded: {}", view.len());
            assert!(!view.contains(owner), "owner must never enter its own view");
            let mut nodes: Vec<_> = view.nodes();
            nodes.sort();
            let before = nodes.len();
            nodes.dedup();
            assert_eq!(before, nodes.len(), "duplicate descriptors in view");
        }
    });
}

/// The healer merge keeps the freshest descriptors and respects the same invariants.
#[test]
fn healer_merge_respects_capacity_and_freshness() {
    for_each_case("healer_merge", |rng| {
        let capacity = rng.gen_range(1usize..10);
        let received = arb_descriptors(rng, 19);
        let owner = NodeId::new(1_000);
        let mut view = View::new(capacity);
        view.apply_exchange_healer(&received, owner);
        assert!(view.len() <= capacity);
        assert!(!view.contains(owner));
        // Every kept descriptor is the freshest duplicate of its node: the view was built
        // solely from `received`, and the healer always keeps the minimum age seen per
        // node, so each kept age must equal the minimum over that node's received ages.
        for descriptor in view.iter() {
            let min_age = received
                .iter()
                .filter(|d| d.node() == descriptor.node())
                .map(|d| d.age())
                .min()
                .expect("every kept descriptor originates from `received`");
            assert!(
                descriptor.age() <= min_age,
                "healer kept age {} for {} but a fresher duplicate of age {min_age} existed",
                descriptor.age(),
                descriptor.node()
            );
        }
    });
}

/// The estimator's node-level estimate always stays within [0, 1] and only uses records
/// that are inside the neighbour-history window.
#[test]
fn estimator_estimate_stays_in_unit_interval() {
    for_each_case("estimator_unit_interval", |rng| {
        let class = arb_class(rng);
        let alpha = rng.gen_range(1usize..50);
        let gamma = rng.gen_range(1u32..100);
        let me = NodeId::new(999);
        let mut estimator = RatioEstimator::new(class, alpha, gamma);
        for _ in 0..rng.gen_range(0usize..200) {
            let sender = arb_class(rng);
            estimator.record_request(sender);
        }
        let record_count = rng.gen_range(0usize..64);
        let records: Vec<EstimateRecord> = (0..record_count)
            .map(|_| {
                EstimateRecord::with_age(
                    NodeId::new(rng.gen_range(0u64..32)),
                    rng.gen_range(0.0f64..1.0),
                    rng.gen_range(0u32..150),
                )
            })
            .collect();
        estimator.ingest(&records, me);
        for _ in 0..rng.gen_range(1usize..30) {
            estimator.advance_round();
        }
        if let Some(estimate) = estimator.estimate() {
            assert!(
                (0.0..=1.0).contains(&estimate),
                "estimate out of range: {estimate}"
            );
        }
        if let Some(local) = estimator.local_estimate() {
            assert!(
                class.is_public(),
                "private nodes never have a local estimate"
            );
            assert!((0.0..=1.0).contains(&local));
        }
        // Cached records all respect the gamma window after aging.
        assert!(estimator.cached_count() <= 64);
    });
}

/// Sampling always returns a member of one of the two views (or nothing when both are
/// empty), whatever the estimated ratio.
#[test]
fn sampler_returns_members_of_the_views() {
    for_each_case("sampler_membership", |rng| {
        let mut public_view = View::new(10);
        for _ in 0..rng.gen_range(0usize..10) {
            let id = rng.gen_range(0u64..500);
            public_view.insert(Descriptor::new(NodeId::new(id), NatClass::Public));
        }
        let mut private_view = View::new(10);
        for _ in 0..rng.gen_range(0usize..10) {
            let id = rng.gen_range(500u64..1000);
            private_view.insert(Descriptor::new(NodeId::new(id), NatClass::Private));
        }
        let ratio = if rng.gen_bool(0.5) {
            Some(rng.gen_range(0.0f64..1.0))
        } else {
            None
        };
        let mut draw_rng = SmallRng::seed_from_u64(rng.gen::<u64>());
        match sample_from_views(&public_view, &private_view, ratio, &mut draw_rng) {
            Some(sample) => {
                assert!(
                    public_view.contains(sample) || private_view.contains(sample),
                    "sample {sample} is not a member of either view"
                );
            }
            None => {
                assert!(public_view.is_empty() && private_view.is_empty());
            }
        }
    });
}

/// A NAT gateway only admits inbound traffic that a real NAT with the same filtering
/// policy would admit: there must be a non-expired outbound binding, and for
/// port-dependent filtering it must point at the exact sender.
#[test]
fn gateway_admission_requires_a_matching_binding() {
    let policies = [
        FilteringPolicy::EndpointIndependent,
        FilteringPolicy::AddressDependent,
        FilteringPolicy::AddressAndPortDependent,
    ];
    for_each_case("gateway_admission", |rng| {
        let policy = policies[rng.gen_range(0..policies.len())];
        let timeout_secs = rng.gen_range(1u64..120);
        let outbound: Vec<(u64, u64)> = (0..rng.gen_range(0usize..30))
            .map(|_| (rng.gen_range(0u64..8), rng.gen_range(0u64..600)))
            .collect();
        let probe_peer = rng.gen_range(0u64..8);
        let probe_at = rng.gen_range(0u64..700);

        let internal = NodeId::new(100);
        let mut gateway = NatGateway::new(
            Ip::public(1),
            NatGatewayConfig::with_filtering(policy)
                .mapping_timeout(SimDuration::from_secs(timeout_secs)),
        );
        for (peer, at) in &outbound {
            gateway.record_outbound(
                internal,
                NodeId::new(*peer),
                Ip::public(*peer as u32 + 10),
                SimTime::from_secs(*at),
            );
        }
        let now = SimTime::from_secs(probe_at);
        let sender = NodeId::new(probe_peer);
        let sender_ip = Ip::public(probe_peer as u32 + 10);
        let accepted = gateway.accepts_inbound(internal, sender, sender_ip, now);

        let fresh = |peer: u64| {
            outbound
                .iter()
                .filter(|(p, _)| *p == peer)
                .map(|(_, at)| *at)
                .max()
                .map(|last| probe_at.saturating_sub(last) <= timeout_secs)
                .unwrap_or(false)
        };
        let expected = match policy {
            FilteringPolicy::EndpointIndependent => (0u64..8).any(fresh),
            // Address-dependent and port-dependent collapse to the same condition here
            // because the emulation assigns one address per peer.
            FilteringPolicy::AddressDependent | FilteringPolicy::AddressAndPortDependent => {
                fresh(probe_peer)
            }
            // `FilteringPolicy` is non-exhaustive; the strategy above only generates the
            // three RFC 4787 policies.
            _ => unreachable!("unknown filtering policy generated"),
        };
        assert_eq!(
            accepted, expected,
            "policy {policy} disagreed with the model"
        );
    });
}

/// Generates an arbitrary overlay snapshot: possibly empty, with isolated nodes, dangling
/// edges to unobserved (departed) ids, duplicate directed edges and self-loops.
fn arb_snapshot(rng: &mut SmallRng) -> OverlaySnapshot {
    let n = rng.gen_range(0usize..60);
    let mut ids: Vec<u64> = (0..n as u64 * 2).collect();
    // Non-contiguous ids: keep a random half of a larger id range.
    for i in (1..ids.len()).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    ids.truncate(n);
    ids.sort_unstable();
    let nodes: Vec<NodeObservation> = ids
        .iter()
        .map(|id| NodeObservation {
            id: NodeId::new(*id),
            class: if rng.gen_bool(0.2) {
                NatClass::Public
            } else {
                NatClass::Private
            },
            ratio_estimate: None,
            rounds_executed: 5,
        })
        .collect();
    let edge_count = rng.gen_range(0usize..(4 * n.max(1)));
    let edges: Vec<(NodeId, NodeId)> = (0..edge_count)
        .map(|_| {
            // Mostly live endpoints, sometimes dangling ids, sometimes self-loops.
            let pick = |rng: &mut SmallRng| {
                if ids.is_empty() || rng.gen_bool(0.15) {
                    NodeId::new(rng.gen_range(0u64..150))
                } else {
                    NodeId::new(ids[rng.gen_range(0..ids.len())])
                }
            };
            let a = pick(rng);
            let b = if rng.gen_bool(0.05) { a } else { pick(rng) };
            (a, b)
        })
        .collect();
    OverlaySnapshot::from_parts(nodes, edges)
}

/// The CSR metrics pipeline is **exactly** equal — bit-identical floats — to the retained
/// naive `BTreeMap`/`BTreeSet` reference implementation on arbitrary snapshots, including
/// dangling edges, isolated nodes and the empty graph, for both sampled and exact BFS
/// source counts.
#[test]
fn csr_metrics_equal_naive_reference_exactly() {
    for_each_case("csr_equals_naive", |rng| {
        let snapshot = arb_snapshot(rng);
        let sources = if rng.gen_bool(0.4) {
            usize::MAX
        } else {
            rng.gen_range(1usize..20)
        };
        let draw_seed = rng.gen::<u64>();

        let mut ctx = MetricsContext::new(1);
        ctx.build(&snapshot);
        let fast_apl = ctx.average_path_length(sources, &mut SmallRng::seed_from_u64(draw_seed));
        let naive_apl =
            naive_average_path_length(&snapshot, sources, &mut SmallRng::seed_from_u64(draw_seed));
        assert_eq!(
            fast_apl.map(f64::to_bits),
            naive_apl.map(f64::to_bits),
            "path length diverged: {fast_apl:?} vs {naive_apl:?}"
        );

        let fast_cc = ctx.average_clustering_coefficient();
        let naive_cc = naive_average_clustering_coefficient(&snapshot);
        assert_eq!(
            fast_cc.to_bits(),
            naive_cc.to_bits(),
            "clustering diverged: {fast_cc} vs {naive_cc}"
        );

        let fast_lcc = ctx.largest_component_fraction();
        let naive_lcc = naive_largest_component_fraction(&snapshot);
        assert_eq!(
            fast_lcc.to_bits(),
            naive_lcc.to_bits(),
            "largest component diverged: {fast_lcc} vs {naive_lcc}"
        );
    });
}

/// Parallel multi-source BFS returns bit-identical results for every worker-thread count,
/// and consumes the metric RNG identically (so downstream samples cannot diverge either).
#[test]
fn parallel_multi_source_bfs_matches_single_threaded() {
    for_each_case("parallel_bfs_determinism", |rng| {
        let snapshot = arb_snapshot(rng);
        let sources = rng.gen_range(1usize..30);
        let draw_seed = rng.gen::<u64>();
        let run = |threads: usize| {
            let mut ctx = MetricsContext::new(threads);
            ctx.build(&snapshot);
            let mut draw = SmallRng::seed_from_u64(draw_seed);
            let apl = ctx.average_path_length(sources, &mut draw);
            (apl.map(f64::to_bits), draw.gen::<u64>())
        };
        let sequential = run(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(
                sequential,
                run(threads),
                "threads={threads} diverged from the single-threaded reference"
            );
        }
    });
}

/// `View::random_subset` (the in-place partial Fisher–Yates) always returns distinct
/// members of the view, never mutates membership or ages, and honours the count bound.
#[test]
fn random_subset_is_a_distinct_membership_preserving_sample() {
    for_each_case("random_subset_partial_fisher_yates", |rng| {
        let capacity = rng.gen_range(1usize..24);
        let mut view = View::new(capacity);
        for _ in 0..rng.gen_range(0usize..32) {
            view.insert(arb_descriptor(rng));
        }
        let mut before: Vec<Descriptor> = view.iter().copied().collect();
        let count = rng.gen_range(0usize..16);
        let subset = view.random_subset(count, rng);
        assert_eq!(subset.len(), count.min(before.len()));
        let mut nodes: Vec<NodeId> = subset.iter().map(|d| d.node()).collect();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), subset.len(), "subset contains duplicates");
        for d in &subset {
            assert_eq!(view.get(d.node()), Some(d), "subset entry not in the view");
        }
        let mut after: Vec<Descriptor> = view.iter().copied().collect();
        before.sort_by_key(|d| d.node());
        after.sort_by_key(|d| d.node());
        assert_eq!(before, after, "selection must only reorder the view");
    });
}

/// Simulated time arithmetic never panics and preserves ordering.
#[test]
fn sim_time_arithmetic_is_monotonic() {
    for_each_case("sim_time_monotonic", |rng| {
        let start = rng.gen_range(0u64..1_000_000);
        let mut t = SimTime::from_millis(start);
        let mut previous = t;
        for _ in 0..rng.gen_range(0usize..50) {
            let d = rng.gen_range(0u64..10_000);
            t += SimDuration::from_millis(d);
            assert!(t >= previous);
            assert_eq!(t - previous, SimDuration::from_millis(d));
            previous = t;
        }
    });
}

/// The incremental union-find connectivity tracker produces bit-identical largest
/// component fractions to the CSR + BFS pipeline on every capture of a live, churning
/// simulation — across all of its update tiers (delta-only, forest repair, rebuild).
#[test]
fn incremental_components_equal_csr_under_membership_and_edge_churn() {
    use croupier_suite::croupier::{CroupierConfig, CroupierNode};
    use croupier_suite::metrics::IncrementalComponents;
    use croupier_suite::simulator::{Simulation, SimulationConfig, SimulationEngine};

    fn add(sim: &mut Simulation<CroupierNode>, alive: &mut Vec<NodeId>, id: u64, class: NatClass) {
        let id = NodeId::new(id);
        if class.is_public() {
            sim.register_public(id);
        }
        sim.add_node(id, CroupierNode::new(id, class, CroupierConfig::default()));
        alive.push(id);
    }

    let mut sublinear = 0;
    let mut rebuilds = 0;
    for seed in 0..10u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0_FFEE ^ seed);
        let mut sim: Simulation<CroupierNode> = Simulation::from_config(
            SimulationConfig::default()
                .with_seed(seed)
                .with_round_period(SimDuration::from_secs(1)),
        );
        let mut alive = Vec::new();
        let mut next_id = 0u64;
        for _ in 0..24 {
            let class = if next_id.is_multiple_of(4) {
                NatClass::Public
            } else {
                NatClass::Private
            };
            add(&mut sim, &mut alive, next_id, class);
            next_id += 1;
        }
        let mut snapshot = OverlaySnapshot::default();
        snapshot.enable_delta_tracking();
        let mut incremental = IncrementalComponents::new();
        let mut context = MetricsContext::new(1);
        for round in 1..=30u64 {
            sim.run_until(SimTime::from_secs(round));
            // Occasional membership churn keeps the rebuild tier honest; the quiet
            // rounds in between exercise the repair and delta-only tiers.
            if rng.gen_bool(0.2) && alive.len() > 8 {
                let victim = alive.swap_remove(rng.gen_range(0..alive.len()));
                sim.remove_node(victim);
            }
            if rng.gen_bool(0.15) {
                add(&mut sim, &mut alive, next_id, arb_class(&mut rng));
                next_id += 1;
            }
            snapshot.capture_into(&sim, 2);
            incremental.update(&snapshot);
            context.build(&snapshot);
            assert_eq!(
                incremental.largest_component_fraction().to_bits(),
                context.largest_component_fraction().to_bits(),
                "seed {seed} round {round}: incremental and CSR disagree"
            );
        }
        sublinear += incremental.sublinear_update_count();
        rebuilds += incremental.rebuild_count();
    }
    assert!(
        sublinear > 0,
        "the sublinear tiers must be exercised ({rebuilds} rebuilds)"
    );
    assert!(
        rebuilds > 10,
        "membership churn must force rebuilds beyond the initial one per seed"
    );
}

/// The incremental in-degree tracker produces bit-identical histograms, stats and Gini
/// coefficients to the full per-sample recount — and to the retained textbook Gini
/// reference — on arbitrary capture sequences, including dangling edges, self-loops,
/// node arrivals/departures and pure edge churn.
#[test]
fn incremental_indegree_equals_full_recount_under_arbitrary_churn() {
    use croupier_suite::metrics::reference::naive_indegree_gini;
    use croupier_suite::metrics::{
        indegree_gini, indegree_histogram, indegree_stats, IncrementalIndegree,
    };

    for_each_case("incremental_indegree_churn", |rng| {
        let base = arb_snapshot(rng);
        let mut nodes = base.nodes.clone();
        let mut edges = base.edges.clone();
        let mut snapshot = OverlaySnapshot::default();
        snapshot.enable_delta_tracking();
        let mut tracker = IncrementalIndegree::new();
        for _ in 0..4 {
            // Membership churn: drop a node (leaving its edges dangling) or insert a new
            // one at its sorted rank, as engine captures keep nodes id-sorted.
            if !nodes.is_empty() && rng.gen_bool(0.3) {
                nodes.remove(rng.gen_range(0..nodes.len()));
            }
            if rng.gen_bool(0.3) {
                let id = NodeId::new(rng.gen_range(0u64..200));
                if let Err(rank) = nodes.binary_search_by_key(&id, |n| n.id) {
                    nodes.insert(
                        rank,
                        NodeObservation {
                            id,
                            class: arb_class(rng),
                            ratio_estimate: None,
                            rounds_executed: 5,
                        },
                    );
                }
            }
            // Edge churn: re-target, append (sometimes self-loops or dangling ids), drop.
            for _ in 0..rng.gen_range(0usize..6) {
                if !edges.is_empty() && rng.gen_bool(0.5) {
                    let i = rng.gen_range(0..edges.len());
                    edges[i].1 = NodeId::new(rng.gen_range(0u64..200));
                } else if !edges.is_empty() && rng.gen_bool(0.3) {
                    edges.swap_remove(rng.gen_range(0..edges.len()));
                } else {
                    let from = NodeId::new(rng.gen_range(0u64..200));
                    let to = if rng.gen_bool(0.1) {
                        from
                    } else {
                        NodeId::new(rng.gen_range(0u64..200))
                    };
                    edges.push((from, to));
                }
            }
            snapshot.replace_from_parts(nodes.clone(), edges.clone());
            tracker.update(&snapshot);
            assert_eq!(
                tracker.histogram(),
                indegree_histogram(&snapshot),
                "histogram diverged from the full recount"
            );
            assert_eq!(tracker.stats(), indegree_stats(&snapshot));
            let fast = tracker.gini();
            let full = indegree_gini(&snapshot);
            let naive = naive_indegree_gini(&snapshot);
            assert_eq!(fast.to_bits(), full.to_bits(), "{fast} vs {full}");
            assert_eq!(full.to_bits(), naive.to_bits(), "{full} vs naive {naive}");
        }
    });
}

/// On a live, churning simulation the incremental in-degree tracker stays bit-identical
/// to the full recount on every capture while actually exercising both of its tiers: the
/// O(delta) fast path on quiet rounds and the rebuild on membership changes.
#[test]
fn incremental_indegree_equals_full_recount_on_live_captures() {
    use croupier_suite::croupier::{CroupierConfig, CroupierNode};
    use croupier_suite::metrics::reference::naive_indegree_gini;
    use croupier_suite::metrics::{indegree_gini, indegree_stats, IncrementalIndegree};
    use croupier_suite::simulator::{Simulation, SimulationConfig, SimulationEngine};

    let mut fast = 0;
    let mut rebuilds = 0;
    for seed in 0..10u64 {
        let mut rng = SmallRng::seed_from_u64(0x1DE6 ^ seed);
        let mut sim: Simulation<CroupierNode> = Simulation::from_config(
            SimulationConfig::default()
                .with_seed(seed)
                .with_round_period(SimDuration::from_secs(1)),
        );
        let mut alive = Vec::new();
        for raw in 0..24u64 {
            let id = NodeId::new(raw);
            let class = if raw.is_multiple_of(4) {
                NatClass::Public
            } else {
                NatClass::Private
            };
            if class.is_public() {
                sim.register_public(id);
            }
            sim.add_node(id, CroupierNode::new(id, class, CroupierConfig::default()));
            alive.push(id);
        }
        let mut snapshot = OverlaySnapshot::default();
        snapshot.enable_delta_tracking();
        let mut tracker = IncrementalIndegree::new();
        for round in 1..=30u64 {
            sim.run_until(SimTime::from_secs(round));
            // Occasional departures force the rebuild tier; the quiet rounds in between
            // leave pure edge deltas for the fast path.
            if rng.gen_bool(0.15) && alive.len() > 8 {
                let victim = alive.swap_remove(rng.gen_range(0..alive.len()));
                sim.remove_node(victim);
            }
            snapshot.capture_into(&sim, 2);
            tracker.update(&snapshot);
            assert_eq!(tracker.stats(), indegree_stats(&snapshot));
            let fast_gini = tracker.gini();
            let full_gini = indegree_gini(&snapshot);
            assert_eq!(
                fast_gini.to_bits(),
                full_gini.to_bits(),
                "seed {seed} round {round}: {fast_gini} vs {full_gini}"
            );
            assert_eq!(
                full_gini.to_bits(),
                naive_indegree_gini(&snapshot).to_bits()
            );
        }
        fast += tracker.fast_update_count();
        rebuilds += tracker.rebuild_count();
    }
    assert!(fast > 0, "the O(delta) fast path must be exercised");
    assert!(
        rebuilds > 10,
        "membership churn must force rebuilds beyond the initial one per seed ({fast} fast)"
    );
}

/// Across the scripted NAT-dynamics timelines the driver's incremental in-degree path
/// reports bit-identical per-sample Gini coefficients to the full-recount path — the
/// fallback a run without `incremental_indegree` takes inside the same graph-metrics
/// pipeline.
#[test]
fn incremental_indegree_matches_full_recount_across_scenario_scripts() {
    use croupier_suite::croupier::{CroupierConfig, CroupierNode};
    use croupier_suite::experiments::runner::{run_pss, ExperimentParams};
    use croupier_suite::experiments::scenario::ScenarioScript;

    let scripts = [
        ("reboot_storm", ScenarioScript::reboot_storm(40)),
        ("mobility_wave", ScenarioScript::mobility_wave(40)),
        ("regional_outage", ScenarioScript::regional_outage(40)),
    ];
    for (name, script) in scripts {
        let base = ExperimentParams::default()
            .with_seed(0x5CEA0)
            .with_population(40, 160)
            .with_rounds(40)
            .with_sample_every(4)
            .with_graph_metrics(8)
            .with_scenario(script);
        let full = run_pss(&base.clone(), |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        let incremental = run_pss(&base.with_incremental_indegree(), |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        assert_eq!(
            full.samples.len(),
            incremental.samples.len(),
            "{name}: sampling cadence must not depend on the in-degree path"
        );
        for (a, b) in full.samples.iter().zip(&incremental.samples) {
            assert_eq!(a.round, b.round);
            assert_eq!(
                a.indegree_gini.map(f64::to_bits),
                b.indegree_gini.map(f64::to_bits),
                "{name} round {}: full and incremental Gini diverged",
                a.round
            );
        }
        let (r, f) = incremental
            .incremental_indegree_updates
            .expect("diagnostics reported");
        assert_eq!(
            r + f,
            incremental.samples.len() as u64,
            "{name}: every sample is either a rebuild or a fast update"
        );
    }
}

/// Sweeping independent datagram loss from 0 % to 30 % degrades croupier's overlay
/// monotonically (within a small tolerance for sampling noise): injected drops strictly
/// increase with the loss rate, and the final largest-component fraction never
/// *improves* as the network gets worse. With the timeout/retry hardening the overlay
/// must also stay usable at the top of the sweep.
#[test]
fn croupier_convergence_degrades_monotonically_with_loss() {
    use croupier_suite::croupier::{CroupierConfig, CroupierNode};
    use croupier_suite::experiments::runner::{run_pss, ExperimentParams};
    use croupier_suite::experiments::scenario::{FaultEvent, ScenarioScript};
    use croupier_suite::simulator::FaultProfile;

    let sweep = [0.0f64, 0.1, 0.2, 0.3];
    let mut drops = Vec::new();
    let mut components = Vec::new();
    for &loss in &sweep {
        // Loss from round 1, never cleared: the final sample observes the overlay while
        // the network is still degraded, not after a recovery window.
        let script = ScenarioScript::new("loss_sweep").fault_at(
            1,
            FaultEvent::FaultProfileChange {
                profile: FaultProfile::lossy(loss),
            },
        );
        let params = ExperimentParams::default()
            .with_seed(0x10_55)
            .with_population(10, 30)
            .with_rounds(40)
            .with_sample_every(5)
            .with_graph_metrics(8)
            .with_scenario(script);
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        drops.push(out.fault_report.injected_drops);
        components.push(out.last_sample().unwrap().largest_component.unwrap());
    }
    for (i, pair) in drops.windows(2).enumerate() {
        assert!(
            pair[0] < pair[1],
            "injected drops must increase with the loss rate: {:?} at steps {i},{}",
            drops,
            i + 1
        );
    }
    assert_eq!(drops[0], 0, "a 0% profile must inject nothing");
    for (i, pair) in components.windows(2).enumerate() {
        assert!(
            pair[1] <= pair[0] + 0.05,
            "connectivity must not improve as loss rises: {components:?} at steps {i},{}",
            i + 1
        );
    }
    assert!(
        components[sweep.len() - 1] >= 0.9,
        "retry hardening should keep the overlay usable at 30% loss, got {components:?}"
    );
}
