//! Property-based tests (proptest) of the core data structures and their invariants:
//! bounded views, the ratio estimator, the sampler, the NAT gateway mapping table and the
//! workload generators.

use croupier_suite::croupier::{
    sample_from_views, Descriptor, EstimateRecord, RatioEstimator, View,
};
use croupier_suite::nat::{FilteringPolicy, Ip, NatGateway, NatGatewayConfig};
use croupier_suite::simulator::{NatClass, NodeId, SimDuration, SimTime};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_class() -> impl Strategy<Value = NatClass> {
    prop_oneof![Just(NatClass::Public), Just(NatClass::Private)]
}

fn arb_descriptor() -> impl Strategy<Value = Descriptor> {
    (0u64..64, arb_class(), 0u32..100)
        .prop_map(|(id, class, age)| Descriptor::with_age(NodeId::new(id), class, age))
}

proptest! {
    /// A view never exceeds its capacity, never contains duplicates and never contains the
    /// owner, no matter what sequence of exchanges it absorbs.
    #[test]
    fn view_invariants_hold_under_arbitrary_exchanges(
        capacity in 1usize..12,
        exchanges in proptest::collection::vec(
            (proptest::collection::vec(arb_descriptor(), 0..8),
             proptest::collection::vec(arb_descriptor(), 0..8)),
            0..12,
        ),
    ) {
        let owner = NodeId::new(1_000);
        let mut view = View::new(capacity);
        for (sent, received) in exchanges {
            view.increment_ages();
            view.apply_exchange_swapper(&sent, &received, owner);

            prop_assert!(view.len() <= capacity, "capacity exceeded: {}", view.len());
            prop_assert!(!view.contains(owner), "owner must never enter its own view");
            let mut nodes: Vec<_> = view.nodes();
            nodes.sort();
            let before = nodes.len();
            nodes.dedup();
            prop_assert_eq!(before, nodes.len(), "duplicate descriptors in view");
        }
    }

    /// The healer merge keeps the freshest descriptors and respects the same invariants.
    #[test]
    fn healer_merge_respects_capacity_and_freshness(
        capacity in 1usize..10,
        received in proptest::collection::vec(arb_descriptor(), 0..20),
    ) {
        let owner = NodeId::new(1_000);
        let mut view = View::new(capacity);
        view.apply_exchange_healer(&received, owner);
        prop_assert!(view.len() <= capacity);
        prop_assert!(!view.contains(owner));
        // Every kept descriptor is at least as fresh as every dropped duplicate of the same
        // node (the healer always keeps the minimum age seen per node).
        for descriptor in view.iter() {
            let min_age = received
                .iter()
                .filter(|d| d.node == descriptor.node)
                .map(|d| d.age)
                .min()
                .unwrap_or(descriptor.age);
            prop_assert!(descriptor.age <= min_age.max(descriptor.age));
        }
    }

    /// The estimator's node-level estimate always stays within [0, 1] and only uses records
    /// that are inside the neighbour-history window.
    #[test]
    fn estimator_estimate_stays_in_unit_interval(
        class in arb_class(),
        alpha in 1usize..50,
        gamma in 1u32..100,
        requests in proptest::collection::vec(arb_class(), 0..200),
        records in proptest::collection::vec((0u64..32, 0.0f64..1.0, 0u32..150), 0..64),
        rounds in 1usize..30,
    ) {
        let me = NodeId::new(999);
        let mut estimator = RatioEstimator::new(class, alpha, gamma);
        for sender in &requests {
            estimator.record_request(*sender);
        }
        let records: Vec<EstimateRecord> = records
            .into_iter()
            .map(|(origin, ratio, age)| EstimateRecord { origin: NodeId::new(origin), ratio, age })
            .collect();
        estimator.ingest(&records, me);
        for _ in 0..rounds {
            estimator.advance_round();
        }
        if let Some(estimate) = estimator.estimate() {
            prop_assert!((0.0..=1.0).contains(&estimate), "estimate out of range: {estimate}");
        }
        if let Some(local) = estimator.local_estimate() {
            prop_assert!(class.is_public(), "private nodes never have a local estimate");
            prop_assert!((0.0..=1.0).contains(&local));
        }
        // Cached records all respect the gamma window after aging.
        prop_assert!(estimator.cached_count() <= 64);
    }

    /// Shared estimate payloads are bounded and sampling always returns a view member.
    #[test]
    fn sampler_returns_members_of_the_views(
        publics in proptest::collection::vec(0u64..500, 0..10),
        privates in proptest::collection::vec(500u64..1000, 0..10),
        ratio in proptest::option::of(0.0f64..1.0),
        seed in 0u64..1000,
    ) {
        let mut public_view = View::new(10);
        for id in &publics {
            public_view.insert(Descriptor::new(NodeId::new(*id), NatClass::Public));
        }
        let mut private_view = View::new(10);
        for id in &privates {
            private_view.insert(Descriptor::new(NodeId::new(*id), NatClass::Private));
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        match sample_from_views(&public_view, &private_view, ratio, &mut rng) {
            Some(sample) => {
                prop_assert!(
                    public_view.contains(sample) || private_view.contains(sample),
                    "sample {sample} is not a member of either view"
                );
            }
            None => {
                prop_assert!(public_view.is_empty() && private_view.is_empty());
            }
        }
    }

    /// A NAT gateway only admits inbound traffic that a real NAT with the same filtering
    /// policy would admit: there must be a non-expired outbound binding, and for
    /// port-dependent filtering it must point at the exact sender.
    #[test]
    fn gateway_admission_requires_a_matching_binding(
        policy in prop_oneof![
            Just(FilteringPolicy::EndpointIndependent),
            Just(FilteringPolicy::AddressDependent),
            Just(FilteringPolicy::AddressAndPortDependent),
        ],
        timeout_secs in 1u64..120,
        outbound in proptest::collection::vec((0u64..8, 0u64..600), 0..30),
        probe_peer in 0u64..8,
        probe_at in 0u64..700,
    ) {
        let internal = NodeId::new(100);
        let mut gateway = NatGateway::new(
            Ip::public(1),
            NatGatewayConfig::with_filtering(policy)
                .mapping_timeout(SimDuration::from_secs(timeout_secs)),
        );
        for (peer, at) in &outbound {
            gateway.record_outbound(
                internal,
                NodeId::new(*peer),
                Ip::public(*peer as u32 + 10),
                SimTime::from_secs(*at),
            );
        }
        let now = SimTime::from_secs(probe_at);
        let sender = NodeId::new(probe_peer);
        let sender_ip = Ip::public(probe_peer as u32 + 10);
        let accepted = gateway.accepts_inbound(internal, sender, sender_ip, now);

        let fresh = |peer: u64| {
            outbound
                .iter()
                .filter(|(p, _)| *p == peer)
                .map(|(_, at)| *at)
                .max()
                .map(|last| probe_at.saturating_sub(last) <= timeout_secs)
                .unwrap_or(false)
        };
        let expected = match policy {
            FilteringPolicy::EndpointIndependent => (0u64..8).any(fresh),
            // Address-dependent and port-dependent collapse to the same condition here
            // because the emulation assigns one address per peer.
            FilteringPolicy::AddressDependent | FilteringPolicy::AddressAndPortDependent => {
                fresh(probe_peer)
            }
        };
        prop_assert_eq!(accepted, expected, "policy {} disagreed with the model", policy);
    }

    /// Simulated time arithmetic never panics and preserves ordering.
    #[test]
    fn sim_time_arithmetic_is_monotonic(
        start in 0u64..1_000_000,
        deltas in proptest::collection::vec(0u64..10_000, 0..50),
    ) {
        let mut t = SimTime::from_millis(start);
        let mut previous = t;
        for d in deltas {
            t += SimDuration::from_millis(d);
            prop_assert!(t >= previous);
            prop_assert_eq!(t - previous, SimDuration::from_millis(d));
            previous = t;
        }
    }
}
