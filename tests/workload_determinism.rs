//! The workload tier's headline invariants: for a fixed seed the dissemination
//! `WorkloadReport` is bit-identical across engine worker counts and metrics-worker
//! counts, and chunk coverage only degrades as the fault plane drops more traffic.

use croupier_suite::croupier::{CroupierConfig, CroupierNode};
use croupier_suite::experiments::runner::run_pss;
use croupier_suite::experiments::scenario::{FaultEvent, ScenarioScript};
use croupier_suite::experiments::workload::{WorkloadReport, WorkloadSpec};
use croupier_suite::experiments::ExperimentParams;
use croupier_suite::simulator::FaultProfile;

const ROUNDS: u64 = 30;

fn streaming_params(seed: u64) -> ExperimentParams {
    ExperimentParams::default()
        .with_seed(seed)
        .with_population(20, 80)
        .with_rounds(ROUNDS)
        .with_sample_every(4)
        .with_workload(
            WorkloadSpec::default()
                .with_window(5, 10)
                .with_rate(1.0)
                .with_fanout(4)
                .with_coverage_rounds(12),
        )
}

fn run_streaming(params: ExperimentParams) -> WorkloadReport {
    run_pss(&params, |id, class, _| {
        CroupierNode::new(id, class, CroupierConfig::default())
    })
    .workload
    .expect("a workload was configured")
}

/// The acceptance pin: the whole report — coverage, every percentile, every counter —
/// must be `==`-identical across 1/2/4/8 engine workers and 0/2 metrics workers, with a
/// scripted NAT disruption and the stream riding it.
#[test]
fn workload_report_is_bit_identical_across_worker_counts() {
    let run = |threads: usize, metrics_workers: usize| {
        run_streaming(
            streaming_params(42)
                .with_scenario(ScenarioScript::reboot_storm(ROUNDS))
                .with_engine_threads(threads)
                .with_metrics_workers(metrics_workers),
        )
    };
    let baseline = run(1, 0);
    assert!(
        baseline.chunks_published > 0 && baseline.unique_deliveries > 0,
        "the baseline run must actually stream: {baseline:?}"
    );
    for threads in [2usize, 4, 8] {
        assert_eq!(
            baseline,
            run(threads, 0),
            "workload report diverged at {threads} engine threads"
        );
    }
    for metrics_workers in [0usize, 2] {
        assert_eq!(
            baseline,
            run(4, metrics_workers),
            "workload report diverged at {metrics_workers} metrics workers"
        );
    }
}

/// Different seeds must explore different executions — a sanity check that the pin above
/// is not comparing constants.
#[test]
fn workload_reports_diverge_across_seeds() {
    let a = run_streaming(streaming_params(42));
    let b = run_streaming(streaming_params(43));
    assert_ne!(a, b, "two seeds produced identical workload reports");
}

/// Coverage is monotone non-increasing in the fault plane's drop rate: more loss can
/// only hurt delivery. Each rate runs the same seeded cell with a fault script that
/// switches the default profile to `lossy(p)` from round 1.
#[test]
fn coverage_is_monotone_non_increasing_in_drop_rate() {
    let coverage_at = |drop_rate: f64| {
        let script = ScenarioScript::new("drop_sweep").fault_at(
            1,
            FaultEvent::FaultProfileChange {
                profile: FaultProfile::lossy(drop_rate),
            },
        );
        let report = run_streaming(streaming_params(42).with_scenario(script));
        (report.coverage, report.fault_dropped)
    };
    let rates = [0.0, 0.3, 0.7, 0.95];
    let runs: Vec<(f64, u64)> = rates.iter().map(|&p| coverage_at(p)).collect();
    assert_eq!(runs[0].1, 0, "lossy(0.0) must drop nothing");
    assert!(
        runs.last().unwrap().1 > 0,
        "lossy(0.95) must drop workload traffic"
    );
    for (pair, rate_pair) in runs.windows(2).zip(rates.windows(2)) {
        assert!(
            pair[1].0 <= pair[0].0,
            "coverage rose from {} to {} when the drop rate rose from {} to {}",
            pair[0].0,
            pair[1].0,
            rate_pair[0],
            rate_pair[1]
        );
    }
    assert!(
        runs.last().unwrap().0 < runs[0].0,
        "near-total loss must visibly dent coverage ({} vs {})",
        runs.last().unwrap().0,
        runs[0].0
    );
}
