//! # croupier-suite
//!
//! Umbrella crate of the Croupier reproduction (*Shuffling with a Croupier: NAT-Aware Peer
//! Sampling*, Dowling & Payberah, ICDCS 2012). It re-exports every workspace crate under
//! one roof so the runnable examples under `examples/` and the integration tests under
//! `tests/` can exercise the whole stack, and so downstream users can depend on a single
//! crate:
//!
//! * [`simulator`] — deterministic discrete-event engine (Kompics substitute).
//! * [`nat`] — NAT gateway / firewall emulation and traversal helpers.
//! * [`croupier`] — the Croupier peer-sampling service and the NAT-type identification
//!   protocol (the paper's contribution).
//! * [`baselines`] — Cyclon, Gozar and Nylon.
//! * [`metrics`] — overlay and estimation metrics.
//! * [`experiments`] — workloads and per-figure experiment runners.
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the system inventory.

#![warn(missing_docs)]

pub use croupier;
pub use croupier_baselines as baselines;
pub use croupier_experiments as experiments;
pub use croupier_metrics as metrics;
pub use croupier_nat as nat;
pub use croupier_simulator as simulator;
