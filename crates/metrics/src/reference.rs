//! Naive tree/hash-based reference implementations of the graph metrics.
//!
//! These are the original (pre-CSR) implementations, retained verbatim as the executable
//! specification of the fast pipeline in [`graph`](crate::graph) and
//! [`context`](crate::context): the randomized property tests assert that the CSR-based
//! metrics are **exactly** equal — bit-identical floats included — to what this module
//! computes on arbitrary snapshots. They allocate a `BTreeMap`/`BTreeSet` adjacency and
//! `HashMap`-backed BFS state on every call, so they must never appear on the per-sample
//! metrics path; use [`MetricsContext`](crate::context::MetricsContext) there instead.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use croupier_simulator::NodeId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

use crate::snapshot::OverlaySnapshot;

/// An undirected graph over node identifiers, built from the "knows-about" edges of an
/// [`OverlaySnapshot`].
///
/// The paper's connectivity, path-length and clustering metrics treat view edges as
/// undirected communication links (once a node knows another it can initiate an exchange,
/// and the exchange flows both ways), which is the standard convention in the peer-sampling
/// literature. The per-sample pipeline uses the CSR [`CsrGraph`](crate::graph::CsrGraph)
/// representation of the same graph; this type is the reference it is checked against.
#[derive(Clone, Debug, Default)]
pub struct UndirectedGraph {
    // Ordered maps keep every traversal (and therefore every floating-point accumulation
    // downstream) deterministic for a fixed seed.
    adjacency: BTreeMap<NodeId, BTreeSet<NodeId>>,
}

impl UndirectedGraph {
    /// Builds the graph from a snapshot, ignoring self-loops and edges to unobserved nodes.
    pub fn from_snapshot(snapshot: &OverlaySnapshot) -> Self {
        let live: HashSet<NodeId> = snapshot.nodes.iter().map(|n| n.id).collect();
        let mut graph = UndirectedGraph::default();
        for node in &live {
            graph.adjacency.entry(*node).or_default();
        }
        for (a, b) in &snapshot.edges {
            if a == b || !live.contains(a) || !live.contains(b) {
                continue;
            }
            graph.adjacency.entry(*a).or_default().insert(*b);
            graph.adjacency.entry(*b).or_default().insert(*a);
        }
        graph
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.values().map(|n| n.len()).sum::<usize>() / 2
    }

    /// The neighbours of `node`.
    pub fn neighbours(&self, node: NodeId) -> Option<&BTreeSet<NodeId>> {
        self.adjacency.get(&node)
    }

    /// All vertices.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency.keys().copied()
    }

    /// Breadth-first distances (in hops) from `source` to every reachable vertex.
    pub fn bfs_distances(&self, source: NodeId) -> HashMap<NodeId, u32> {
        let mut distances = HashMap::new();
        if !self.adjacency.contains_key(&source) {
            return distances;
        }
        distances.insert(source, 0);
        let mut queue = VecDeque::from([source]);
        while let Some(current) = queue.pop_front() {
            let d = distances[&current];
            if let Some(neighbours) = self.adjacency.get(&current) {
                for next in neighbours {
                    if !distances.contains_key(next) {
                        distances.insert(*next, d + 1);
                        queue.push_back(*next);
                    }
                }
            }
        }
        distances
    }

    /// Sizes of all connected components, in descending order.
    pub fn component_sizes(&self) -> Vec<usize> {
        let mut visited: HashSet<NodeId> = HashSet::new();
        let mut sizes = Vec::new();
        for start in self.adjacency.keys() {
            if visited.contains(start) {
                continue;
            }
            let mut size = 0;
            let mut queue = VecDeque::from([*start]);
            visited.insert(*start);
            while let Some(current) = queue.pop_front() {
                size += 1;
                if let Some(neighbours) = self.adjacency.get(&current) {
                    for next in neighbours {
                        if visited.insert(*next) {
                            queue.push_back(*next);
                        }
                    }
                }
            }
            sizes.push(size);
        }
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }
}

/// Reference implementation of [`average_path_length`](crate::paths::average_path_length):
/// BFS-sampled average shortest-path length over a freshly built [`UndirectedGraph`].
pub fn naive_average_path_length(
    snapshot: &OverlaySnapshot,
    sources: usize,
    rng: &mut SmallRng,
) -> Option<f64> {
    let graph = UndirectedGraph::from_snapshot(snapshot);
    if graph.node_count() < 2 {
        return None;
    }
    let mut nodes: Vec<_> = graph.nodes().collect();
    nodes.sort_unstable();
    nodes.shuffle(rng);
    nodes.truncate(sources.max(1).min(nodes.len()));

    let mut total_hops: u64 = 0;
    let mut pairs: u64 = 0;
    for source in nodes {
        for (target, hops) in graph.bfs_distances(source) {
            if target != source {
                total_hops += hops as u64;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        None
    } else {
        Some(total_hops as f64 / pairs as f64)
    }
}

/// Reference implementation of
/// [`average_clustering_coefficient`](crate::clustering::average_clustering_coefficient):
/// per-node neighbour-pair probing against `BTreeSet` adjacency.
pub fn naive_average_clustering_coefficient(snapshot: &OverlaySnapshot) -> f64 {
    let graph = UndirectedGraph::from_snapshot(snapshot);
    let n = graph.node_count();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for node in graph.nodes() {
        let neighbours = match graph.neighbours(node) {
            Some(set) if set.len() >= 2 => set,
            _ => continue,
        };
        let k = neighbours.len();
        let mut links = 0usize;
        let neighbour_list: Vec<_> = neighbours.iter().copied().collect();
        for i in 0..neighbour_list.len() {
            for j in (i + 1)..neighbour_list.len() {
                if graph
                    .neighbours(neighbour_list[i])
                    .map(|set| set.contains(&neighbour_list[j]))
                    .unwrap_or(false)
                {
                    links += 1;
                }
            }
        }
        total += 2.0 * links as f64 / (k as f64 * (k as f64 - 1.0));
    }
    total / n as f64
}

/// Reference implementation of [`indegree_gini`](crate::indegree::indegree_gini):
/// hash-map in-degree counting, an explicit sort of the degree list, and the textbook
/// positional Gini sum `Σ_j (2j + 1 − n)·x_j / (n·Σx)` over the sorted degrees. The
/// numerator and denominator are exact integers, so the production counting-sort
/// formulation must reproduce this bit for bit.
pub fn naive_indegree_gini(snapshot: &OverlaySnapshot) -> f64 {
    let live: HashSet<NodeId> = snapshot.nodes.iter().map(|n| n.id).collect();
    let mut indegree: HashMap<NodeId, u64> = live.iter().map(|&id| (id, 0)).collect();
    for (from, to) in &snapshot.edges {
        if from == to {
            continue;
        }
        if let Some(count) = indegree.get_mut(to) {
            *count += 1;
        }
    }
    let mut degrees: Vec<u64> = indegree.into_values().collect();
    degrees.sort_unstable();
    let n = degrees.len() as i128;
    let total: i128 = degrees.iter().map(|&d| d as i128).sum();
    if n == 0 || total == 0 {
        return 0.0;
    }
    let numerator: i128 = degrees
        .iter()
        .enumerate()
        .map(|(j, &d)| (2 * j as i128 + 1 - n) * d as i128)
        .sum();
    numerator as f64 / (n * total) as f64
}

/// Reference implementation of
/// [`largest_component_fraction`](crate::components::largest_component_fraction).
pub fn naive_largest_component_fraction(snapshot: &OverlaySnapshot) -> f64 {
    let graph = UndirectedGraph::from_snapshot(snapshot);
    let n = graph.node_count();
    if n == 0 {
        return 0.0;
    }
    let largest = graph.component_sizes().into_iter().next().unwrap_or(0);
    largest as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::NodeObservation;
    use croupier_simulator::NatClass;

    fn snapshot(nodes: &[u64], edges: &[(u64, u64)]) -> OverlaySnapshot {
        OverlaySnapshot::from_parts(
            nodes
                .iter()
                .map(|id| NodeObservation {
                    id: NodeId::new(*id),
                    class: NatClass::Public,
                    ratio_estimate: None,
                    rounds_executed: 10,
                })
                .collect(),
            edges
                .iter()
                .map(|(a, b)| (NodeId::new(*a), NodeId::new(*b)))
                .collect(),
        )
    }

    #[test]
    fn builds_undirected_adjacency_without_self_loops() {
        let g = UndirectedGraph::from_snapshot(&snapshot(
            &[1, 2, 3],
            &[(1, 2), (2, 1), (2, 2), (2, 3), (1, 99)],
        ));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g
            .neighbours(NodeId::new(2))
            .unwrap()
            .contains(&NodeId::new(1)));
        assert!(g
            .neighbours(NodeId::new(1))
            .unwrap()
            .contains(&NodeId::new(2)));
        assert!(!g
            .neighbours(NodeId::new(2))
            .unwrap()
            .contains(&NodeId::new(2)));
    }

    #[test]
    fn bfs_computes_hop_distances() {
        let g =
            UndirectedGraph::from_snapshot(&snapshot(&[1, 2, 3, 4, 5], &[(1, 2), (2, 3), (3, 4)]));
        let d = g.bfs_distances(NodeId::new(1));
        assert_eq!(d[&NodeId::new(1)], 0);
        assert_eq!(d[&NodeId::new(2)], 1);
        assert_eq!(d[&NodeId::new(3)], 2);
        assert_eq!(d[&NodeId::new(4)], 3);
        assert!(
            !d.contains_key(&NodeId::new(5)),
            "disconnected node is unreachable"
        );
        assert!(g.bfs_distances(NodeId::new(42)).is_empty());
    }

    #[test]
    fn component_sizes_are_sorted_descending() {
        let g = UndirectedGraph::from_snapshot(&snapshot(
            &[1, 2, 3, 4, 5, 6],
            &[(1, 2), (2, 3), (4, 5)],
        ));
        assert_eq!(g.component_sizes(), vec![3, 2, 1]);
    }

    #[test]
    fn naive_gini_matches_textbook_values() {
        // Ring (uniform in-degree 1): perfectly equal.
        let ring = snapshot(&[1, 2, 3, 4], &[(1, 2), (2, 3), (3, 4), (4, 1)]);
        assert_eq!(naive_indegree_gini(&ring), 0.0);
        // Star: one of five nodes holds all in-degree, G = (n - 1)/n.
        let star = snapshot(&[1, 2, 3, 4, 5], &[(2, 1), (3, 1), (4, 1), (5, 1)]);
        assert!((naive_indegree_gini(&star) - 0.8).abs() < 1e-12);
        assert_eq!(naive_indegree_gini(&OverlaySnapshot::default()), 0.0);
    }

    #[test]
    fn empty_snapshot_gives_empty_graph() {
        let g = UndirectedGraph::from_snapshot(&OverlaySnapshot::default());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.component_sizes().is_empty());
    }
}
