//! # croupier-metrics
//!
//! Evaluation metrics for the Croupier reproduction, covering every quantity reported in
//! §VII of the paper:
//!
//! * **Estimation accuracy** ([`estimation`]): average and maximum (Kolmogorov–Smirnov
//!   style) error between each node's public/private-ratio estimate and the true ratio
//!   (equations 10–13) — Figures 1–5.
//! * **Randomness of the overlay** ([`indegree`], [`paths`], [`clustering`]): in-degree
//!   distribution, average shortest path length and average clustering coefficient of the
//!   overlay graph induced by the partial views — Figure 6.
//! * **Protocol overhead** ([`overhead`]): average bytes per second per node, split by
//!   connectivity class and optionally reported relative to a Cyclon baseline — Figure 7(a).
//! * **Resilience** ([`components`]): size of the biggest connected cluster among surviving
//!   nodes after catastrophic failure — Figure 7(b).
//!
//! All graph metrics operate on an [`OverlaySnapshot`] extracted from a running simulation,
//! so they are protocol-agnostic: Croupier, Cyclon, Gozar and Nylon are measured with the
//! same code.
//!
//! ## The per-sample pipeline
//!
//! The graph metrics share one compressed-sparse-row overlay graph ([`graph::CsrGraph`])
//! built once per sample by a [`MetricsContext`], which also owns every traversal scratch
//! buffer (epoch-stamped BFS visited sets, frontiers, the source permutation) and can fan
//! multi-source BFS out over worker threads deterministically. Sampling loops keep one
//! context (and one reusable snapshot, see [`OverlaySnapshot::capture_into`]) alive, so
//! the steady-state measurement path performs **no allocation and no hashing**. The
//! original tree/hash-based implementations survive in [`mod@reference`] as the
//! executable specification the CSR pipeline is property-tested against.
//!
//! ## Incremental trackers
//!
//! The million-node tier cannot afford to recount anything from the full edge list every
//! sample, so the in-degree family ([`IncrementalIndegree`]) and the largest-component
//! metric ([`IncrementalComponents`]) maintain their state from snapshot **edge deltas**
//! (enable with [`OverlaySnapshot::enable_delta_tracking`]) and fall back to a full
//! rebuild whenever membership changes or no valid delta is available. Both are
//! property-tested bit-identical to the full recount; both expose
//! `rebuild_count`/`fast_update_count` so callers can assert the fast path actually
//! fired. A hand-built snapshot exercises the same code paths as an engine capture:
//!
//! ```
//! use croupier_metrics::snapshot::{NodeObservation, OverlaySnapshot};
//! use croupier_metrics::{indegree_stats, IncrementalComponents, IncrementalIndegree};
//! use croupier_simulator::{NatClass, NodeId};
//!
//! let observe = |i: u64| NodeObservation {
//!     id: NodeId::new(i),
//!     class: NatClass::Public,
//!     ratio_estimate: None,
//!     rounds_executed: 5,
//! };
//! // Three nodes; node 1 sits in two views (in-degree 2), the overlay is connected.
//! let snapshot = OverlaySnapshot::from_parts(
//!     (0..3).map(observe).collect(),
//!     vec![(NodeId::new(0), NodeId::new(1)), (NodeId::new(2), NodeId::new(1))],
//! );
//!
//! let mut indegree = IncrementalIndegree::new();
//! indegree.update(&snapshot);
//! assert_eq!(indegree.stats(), indegree_stats(&snapshot)); // ≡ the full recount
//! assert_eq!(indegree.stats().max, 2);
//!
//! let mut components = IncrementalComponents::new();
//! components.update(&snapshot);
//! assert_eq!(components.largest_component_fraction(), 1.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clustering;
pub mod components;
pub mod context;
pub mod estimation;
pub mod graph;
pub mod incremental;
pub mod indegree;
pub mod overhead;
pub mod paths;
pub mod reference;
pub mod snapshot;

pub use clustering::average_clustering_coefficient;
pub use components::largest_component_fraction;
pub use context::{draw_path_sources, MetricsContext};
pub use estimation::{estimation_errors, EstimationErrors};
pub use graph::CsrGraph;
pub use incremental::IncrementalComponents;
pub use indegree::{
    indegree_distribution, indegree_gini, indegree_histogram, indegree_stats, IncrementalIndegree,
    IndegreeStats,
};
pub use overhead::{class_overhead, ClassOverhead, OverheadReport};
pub use paths::average_path_length;
pub use reference::UndirectedGraph;
pub use snapshot::{EdgeDelta, NodeObservation, OverlaySnapshot};
