//! In-degree distribution of the directed overlay graph (Fig. 6(a) of the paper).

use std::collections::HashMap;

use croupier_simulator::NodeId;
use serde::{Deserialize, Serialize};

use crate::snapshot::OverlaySnapshot;

/// Summary statistics of an in-degree distribution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IndegreeStats {
    /// Smallest in-degree among observed nodes.
    pub min: usize,
    /// Largest in-degree among observed nodes.
    pub max: usize,
    /// Mean in-degree.
    pub mean: f64,
    /// Population standard deviation of the in-degree.
    pub std_dev: f64,
}

/// The in-degree of every observed node: how many other nodes hold it in their views.
pub fn indegree_distribution(snapshot: &OverlaySnapshot) -> HashMap<NodeId, usize> {
    let mut indegree: HashMap<NodeId, usize> = snapshot.nodes.iter().map(|n| (n.id, 0)).collect();
    for (from, to) in &snapshot.edges {
        if from == to {
            continue;
        }
        if let Some(count) = indegree.get_mut(to) {
            *count += 1;
        }
    }
    indegree
}

/// Histogram of the in-degree distribution: for each in-degree value, the number of nodes
/// with that in-degree — the exact series plotted in Fig. 6(a).
pub fn indegree_histogram(snapshot: &OverlaySnapshot) -> Vec<(usize, usize)> {
    let mut histogram: HashMap<usize, usize> = HashMap::new();
    for degree in indegree_distribution(snapshot).values() {
        *histogram.entry(*degree).or_default() += 1;
    }
    let mut out: Vec<(usize, usize)> = histogram.into_iter().collect();
    out.sort_unstable();
    out
}

/// Summary statistics of the in-degree distribution.
pub fn indegree_stats(snapshot: &OverlaySnapshot) -> IndegreeStats {
    // Sum in snapshot node order, not HashMap iteration order: the map's RandomState
    // reseeds per process, and a different f64 summation order perturbs the variance by
    // an ulp — enough to break bit-identical report files across runs.
    let distribution = indegree_distribution(snapshot);
    let degrees: Vec<usize> = snapshot
        .nodes
        .iter()
        .filter_map(|n| distribution.get(&n.id).copied())
        .collect();
    if degrees.is_empty() {
        return IndegreeStats::default();
    }
    let min = *degrees.iter().min().expect("non-empty");
    let max = *degrees.iter().max().expect("non-empty");
    let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
    let variance = degrees
        .iter()
        .map(|d| {
            let diff = *d as f64 - mean;
            diff * diff
        })
        .sum::<f64>()
        / degrees.len() as f64;
    IndegreeStats {
        min,
        max,
        mean,
        std_dev: variance.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::NodeObservation;
    use croupier_simulator::NatClass;

    fn snapshot(nodes: &[u64], edges: &[(u64, u64)]) -> OverlaySnapshot {
        OverlaySnapshot::from_parts(
            nodes
                .iter()
                .map(|id| NodeObservation {
                    id: NodeId::new(*id),
                    class: NatClass::Public,
                    ratio_estimate: None,
                    rounds_executed: 5,
                })
                .collect(),
            edges
                .iter()
                .map(|(a, b)| (NodeId::new(*a), NodeId::new(*b)))
                .collect(),
        )
    }

    #[test]
    fn counts_incoming_edges_per_node() {
        let s = snapshot(&[1, 2, 3], &[(1, 2), (3, 2), (2, 3), (2, 2)]);
        let d = indegree_distribution(&s);
        assert_eq!(d[&NodeId::new(1)], 0);
        assert_eq!(d[&NodeId::new(2)], 2);
        assert_eq!(d[&NodeId::new(3)], 1);
    }

    #[test]
    fn histogram_buckets_by_degree() {
        let s = snapshot(&[1, 2, 3, 4], &[(1, 2), (3, 2), (1, 3)]);
        // Degrees: node1=0, node2=2, node3=1, node4=0.
        assert_eq!(indegree_histogram(&s), vec![(0, 2), (1, 1), (2, 1)]);
    }

    #[test]
    fn stats_summarise_the_distribution() {
        let s = snapshot(&[1, 2, 3, 4], &[(1, 2), (3, 2), (1, 3), (2, 4)]);
        let stats = indegree_stats(&s);
        assert_eq!(stats.min, 0);
        assert_eq!(stats.max, 2);
        assert!((stats.mean - 1.0).abs() < 1e-9);
        assert!(stats.std_dev > 0.0);
    }

    #[test]
    fn empty_snapshot_has_zeroed_stats() {
        assert_eq!(
            indegree_stats(&OverlaySnapshot::default()),
            IndegreeStats::default()
        );
        assert!(indegree_histogram(&OverlaySnapshot::default()).is_empty());
    }

    #[test]
    fn edges_to_unknown_nodes_are_ignored() {
        let s = snapshot(&[1, 2], &[(1, 2), (1, 77)]);
        let d = indegree_distribution(&s);
        assert_eq!(d.len(), 2);
        assert_eq!(d[&NodeId::new(2)], 1);
    }
}
