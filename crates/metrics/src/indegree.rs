//! In-degree distribution of the directed overlay graph (Fig. 6(a) of the paper), plus
//! the Gini coefficient of that distribution and an incremental tracker that maintains
//! the whole family from snapshot edge deltas.
//!
//! # Dense storage, deterministic accumulation
//!
//! The distribution is stored as a rank-indexed vector in snapshot node order (ascending
//! id for engine captures) — the same arena invariant [`CsrGraph`](crate::graph::CsrGraph)
//! rides. There is no hash map anywhere in this module, which removes the
//! iteration-order hazard class outright: every accumulation (stats, histogram, Gini)
//! walks the same storage order on every run, so the floating-point outputs are
//! bit-identical for a fixed snapshot regardless of process, thread count or hasher seed.
//!
//! # Incremental tracking
//!
//! [`IncrementalIndegree`] consumes the capture-to-capture diff recorded by
//! [`OverlaySnapshot::enable_delta_tracking`]: a directed edge `a → b` contributes one
//! in-degree to `b` iff `b` is observed and `a != b` (multiset semantics — duplicates
//! count), so an edge appearing or disappearing is a single counter increment or
//! decrement at `b`'s rank. When membership changes (the rank space moved) or no valid
//! delta exists, the tracker falls back to one O(E) rebuild pass. Either way the counts
//! vector is element-for-element equal to [`indegree_distribution`], and the derived
//! stats/histogram/Gini accumulate in the same order with the same integer operands, so
//! they are bit-identical to the snapshot-based reference — pinned by
//! `tests/property_tests.rs` under randomized membership and edge churn.

use croupier_simulator::NodeId;
use serde::{Deserialize, Serialize};

use crate::snapshot::OverlaySnapshot;

/// Marker for "id not observed in this sample" in the stamped lookup table.
const NO_RANK: u32 = u32::MAX;

/// Same dense-id heuristic as [`CsrGraph`](crate::graph::CsrGraph): engine captures
/// qualify for the O(1) id → rank table, hand-built snapshots with huge ids binary-search.
const DENSE_RANGE_FACTOR: u64 = 32;

/// Summary statistics of an in-degree distribution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IndegreeStats {
    /// Smallest in-degree among observed nodes.
    pub min: usize,
    /// Largest in-degree among observed nodes.
    pub max: usize,
    /// Mean in-degree.
    pub mean: f64,
    /// Population standard deviation of the in-degree.
    pub std_dev: f64,
}

/// The in-degree of every observed node — how many view entries point at it — as a dense
/// vector in snapshot node order. An edge `(from, to)` counts iff `to` is observed and
/// `from != to`; duplicates count once each (multiset semantics).
pub fn indegree_distribution(snapshot: &OverlaySnapshot) -> Vec<(NodeId, usize)> {
    let mut counts = vec![0usize; snapshot.nodes.len()];
    let index = RankIndex::build(snapshot);
    for &(from, to) in &snapshot.edges {
        if from == to {
            continue;
        }
        if let Some(rank) = index.rank_of(to) {
            counts[rank as usize] += 1;
        }
    }
    snapshot.nodes.iter().map(|n| n.id).zip(counts).collect()
}

/// Histogram of the in-degree distribution: for each in-degree value present, the number
/// of nodes with that in-degree, ascending — the exact series plotted in Fig. 6(a).
pub fn indegree_histogram(snapshot: &OverlaySnapshot) -> Vec<(usize, usize)> {
    let mut buckets = Vec::new();
    bucket_degrees(
        indegree_distribution(snapshot).iter().map(|&(_, d)| d),
        &mut buckets,
    );
    collect_histogram(&buckets)
}

/// Summary statistics of the in-degree distribution, accumulated in snapshot node order.
pub fn indegree_stats(snapshot: &OverlaySnapshot) -> IndegreeStats {
    stats_of_degrees(indegree_distribution(snapshot).iter().map(|&(_, d)| d))
}

/// Gini coefficient of the in-degree distribution: 0.0 when every observed node has the
/// same in-degree, approaching 1.0 when a few hubs hold all incoming view entries. The
/// PeerSwap-style randomness checks use this as their global load-balance score; an
/// empty or all-zero distribution reports 0.0.
pub fn indegree_gini(snapshot: &OverlaySnapshot) -> f64 {
    gini_from_degree_counts(indegree_histogram(snapshot).iter().copied())
}

/// One-shot id → rank index over a snapshot's node list (rank = position in
/// `snapshot.nodes`), with the same dense/sparse split as the incremental trackers.
enum RankIndex {
    /// Id-indexed rank slots, `NO_RANK` where unobserved (dense id spaces).
    Dense(Vec<u32>),
    /// `(id, rank)` pairs sorted by id, binary-searched (sparse id spaces).
    Sparse(Vec<(NodeId, u32)>),
}

impl RankIndex {
    fn build(snapshot: &OverlaySnapshot) -> Self {
        let n = snapshot.nodes.len();
        let bound = snapshot.id_upper_bound();
        if bound <= (n as u64).saturating_mul(DENSE_RANGE_FACTOR) + 1024 {
            let mut slots = vec![NO_RANK; bound as usize];
            for (rank, node) in snapshot.nodes.iter().enumerate() {
                slots[node.id.as_u64() as usize] = rank as u32;
            }
            RankIndex::Dense(slots)
        } else {
            let mut pairs: Vec<(NodeId, u32)> = snapshot
                .nodes
                .iter()
                .enumerate()
                .map(|(rank, node)| (node.id, rank as u32))
                .collect();
            pairs.sort_unstable_by_key(|&(id, _)| id);
            RankIndex::Sparse(pairs)
        }
    }

    #[inline]
    fn rank_of(&self, id: NodeId) -> Option<u32> {
        match self {
            RankIndex::Dense(slots) => {
                let slot = id.as_u64() as usize;
                match slots.get(slot) {
                    Some(&rank) if rank != NO_RANK => Some(rank),
                    _ => None,
                }
            }
            RankIndex::Sparse(pairs) => pairs
                .binary_search_by_key(&id, |&(id, _)| id)
                .ok()
                .map(|i| pairs[i].1),
        }
    }
}

/// Counting-sorts `degrees` into `buckets` (index = degree, value = node count).
fn bucket_degrees(degrees: impl Iterator<Item = usize>, buckets: &mut Vec<usize>) {
    buckets.clear();
    for degree in degrees {
        if degree >= buckets.len() {
            buckets.resize(degree + 1, 0);
        }
        buckets[degree] += 1;
    }
}

/// Compacts counting-sort buckets into the `(degree, count)` histogram form.
fn collect_histogram(buckets: &[usize]) -> Vec<(usize, usize)> {
    buckets
        .iter()
        .enumerate()
        .filter(|&(_, &count)| count > 0)
        .map(|(degree, &count)| (degree, count))
        .collect()
}

/// Shared stats accumulation: one order, one set of floating-point operations, used by
/// both the snapshot-based reference and [`IncrementalIndegree::stats`] so the two are
/// bit-identical by construction.
fn stats_of_degrees(degrees: impl Iterator<Item = usize> + Clone) -> IndegreeStats {
    let mut len = 0usize;
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0usize;
    for d in degrees.clone() {
        len += 1;
        min = min.min(d);
        max = max.max(d);
        sum += d;
    }
    if len == 0 {
        return IndegreeStats::default();
    }
    let mean = sum as f64 / len as f64;
    let variance = degrees
        .map(|d| {
            let diff = d as f64 - mean;
            diff * diff
        })
        .sum::<f64>()
        / len as f64;
    IndegreeStats {
        min,
        max,
        mean,
        std_dev: variance.sqrt(),
    }
}

/// Gini coefficient from `(degree, count)` pairs in ascending degree order.
///
/// With the degrees sorted ascending and 0-indexed position `j`, the Gini numerator is
/// `Σ_j (2j + 1 − n)·x_j`; a block of `c` equal degrees starting at position `r`
/// contributes `d·c·(2r + c − n)` (the inner arithmetic series in closed form). All
/// accumulation is exact integer arithmetic in `i128`; the single `f64` division at the
/// end makes the result bit-identical wherever the same histogram goes in.
fn gini_from_degree_counts(pairs: impl Iterator<Item = (usize, usize)>) -> f64 {
    // The block term needs the final population count, so split it off: the numerator is
    // Σ d·c·(2r + c) − n·Σ d·c, with the first sum accumulated positionally (`n` holds
    // the running position `r` during the loop and the final count after it).
    let mut n: i128 = 0;
    let mut total: i128 = 0;
    let mut positional: i128 = 0;
    for (degree, count) in pairs {
        let (d, c) = (degree as i128, count as i128);
        positional += d * c * (2 * n + c);
        n += c;
        total += d * c;
    }
    let numerator = positional - n * total;
    let denominator = n * total;
    if denominator == 0 {
        return 0.0;
    }
    numerator as f64 / denominator as f64
}

/// Incrementally maintained in-degree family: the dense counts vector plus histogram,
/// stats and Gini, updated from snapshot edge deltas in O(Δ) per sample instead of the
/// O(E) full recount.
///
/// The structure tracks **one** snapshot instance: feed it the same
/// delta-tracking-enabled [`OverlaySnapshot`] on every sample (the experiment driver's
/// pattern). Handing it unrelated snapshots is safe — any capture without a valid delta,
/// or with membership changes, triggers a full rebuild — but forfeits the fast path.
///
/// # Examples
///
/// ```
/// use croupier_metrics::{indegree_stats, IncrementalIndegree, NodeObservation, OverlaySnapshot};
/// use croupier_simulator::{NatClass, NodeId};
///
/// let snapshot = OverlaySnapshot::from_parts(
///     (0..3)
///         .map(|i| NodeObservation {
///             id: NodeId::new(i),
///             class: NatClass::Public,
///             ratio_estimate: None,
///             rounds_executed: 5,
///         })
///         .collect(),
///     vec![(NodeId::new(0), NodeId::new(1)), (NodeId::new(2), NodeId::new(1))],
/// );
/// let mut tracker = IncrementalIndegree::new();
/// tracker.update(&snapshot);
/// assert_eq!(tracker.stats(), indegree_stats(&snapshot));
/// assert_eq!(tracker.stats().max, 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct IncrementalIndegree {
    /// Rank → node id, ascending (the same rank space as [`CsrGraph`](crate::graph::CsrGraph)).
    ids: Vec<NodeId>,
    /// Rank → in-degree, element-for-element equal to [`indegree_distribution`].
    counts: Vec<u32>,
    /// Id-indexed rank table, valid where `lookup_stamp[id] == stamp` (dense path only).
    lookup: Vec<u32>,
    lookup_stamp: Vec<u32>,
    stamp: u32,
    dense_lookup: bool,
    /// Whether the counts describe the previous capture of the tracked snapshot
    /// (fast-path precondition).
    synced: bool,
    /// Number of full O(E) recounts performed (diagnostics; sublinearity tests).
    rebuilds: u64,
    /// Number of O(Δ) delta-only updates performed (diagnostics; sublinearity tests).
    fast_updates: u64,
    /// Counting-sort scratch reused by [`histogram`](Self::histogram),
    /// [`gini`](Self::gini) — no steady-state allocation once grown.
    buckets: Vec<usize>,
}

impl IncrementalIndegree {
    /// Creates an empty tracker; the first [`update`](Self::update) performs a full
    /// rebuild.
    pub fn new() -> Self {
        IncrementalIndegree::default()
    }

    /// Brings the counts in sync with `snapshot`, by delta replay when the snapshot
    /// carries a usable diff and by a full recount otherwise.
    pub fn update(&mut self, snapshot: &OverlaySnapshot) {
        let fast = self.synced
            && matches!(snapshot.edge_delta(), Some(delta) if !delta.membership_changed);
        if fast {
            self.apply_delta(snapshot);
            self.fast_updates += 1;
        } else {
            self.rebuild(snapshot);
            self.rebuilds += 1;
        }
        self.synced = true;
    }

    /// Number of tracked nodes.
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// The tracked in-degrees in rank (ascending id) order.
    pub fn degrees(&self) -> impl Iterator<Item = usize> + Clone + '_ {
        self.counts.iter().map(|&c| c as usize)
    }

    /// Histogram of the tracked distribution — equal to [`indegree_histogram`] on the
    /// snapshot the tracker last updated from.
    pub fn histogram(&mut self) -> Vec<(usize, usize)> {
        let mut buckets = std::mem::take(&mut self.buckets);
        bucket_degrees(self.degrees(), &mut buckets);
        let histogram = collect_histogram(&buckets);
        self.buckets = buckets;
        histogram
    }

    /// Summary statistics of the tracked distribution — bit-identical to
    /// [`indegree_stats`] on the snapshot the tracker last updated from (same
    /// accumulation order, same operations).
    pub fn stats(&self) -> IndegreeStats {
        stats_of_degrees(self.degrees())
    }

    /// Gini coefficient of the tracked distribution — bit-identical to
    /// [`indegree_gini`] on the snapshot the tracker last updated from (the exact
    /// integer numerator and denominator match, so the one division does too).
    pub fn gini(&mut self) -> f64 {
        let mut buckets = std::mem::take(&mut self.buckets);
        bucket_degrees(self.degrees(), &mut buckets);
        let gini = gini_from_degree_counts(
            buckets
                .iter()
                .enumerate()
                .filter(|&(_, &count)| count > 0)
                .map(|(degree, &count)| (degree, count)),
        );
        self.buckets = buckets;
        gini
    }

    /// Full recounts performed so far (the first `update` always counts one).
    pub fn rebuild_count(&self) -> u64 {
        self.rebuilds
    }

    /// Delta-only updates performed so far.
    pub fn fast_update_count(&self) -> u64 {
        self.fast_updates
    }

    /// O(Δ) update: every removed directed edge decrements its target's count, every
    /// added one increments it. Sources need not be observed (matching the reference:
    /// only the *target* must be live) and membership is unchanged, so the delta is an
    /// exact multiset diff over a stable rank space — no repair step is ever needed,
    /// unlike connectivity, because in-degree is a per-node sum, not a global property.
    fn apply_delta(&mut self, snapshot: &OverlaySnapshot) {
        let delta = snapshot.edge_delta().expect("caller checked the delta");
        for &(from, to) in delta.removed {
            if from == to {
                continue;
            }
            if let Some(rank) = self.rank_of(to) {
                self.counts[rank as usize] -= 1;
            }
        }
        for &(from, to) in delta.added {
            if from == to {
                continue;
            }
            if let Some(rank) = self.rank_of(to) {
                self.counts[rank as usize] += 1;
            }
        }
    }

    /// Full recount: one pass over the snapshot's directed edges.
    fn rebuild(&mut self, snapshot: &OverlaySnapshot) {
        self.ids.clear();
        self.ids.extend(snapshot.nodes.iter().map(|n| n.id));
        if !self.ids.windows(2).all(|w| w[0] < w[1]) {
            self.ids.sort_unstable();
            self.ids.dedup();
        }
        self.restamp_lookup(snapshot);
        self.counts.clear();
        self.counts.resize(self.ids.len(), 0);
        for &(from, to) in &snapshot.edges {
            if from == to {
                continue;
            }
            if let Some(rank) = self.rank_of(to) {
                self.counts[rank as usize] += 1;
            }
        }
    }

    /// Stamps a fresh id → rank epoch, mirroring
    /// [`IncrementalComponents`](crate::incremental::IncrementalComponents)' dense/sparse
    /// split.
    fn restamp_lookup(&mut self, snapshot: &OverlaySnapshot) {
        let n = self.ids.len();
        let bound = snapshot.id_upper_bound().max(
            self.ids
                .last()
                .map_or(0, |id| id.as_u64().saturating_add(1)),
        );
        self.dense_lookup = bound <= (n as u64).saturating_mul(DENSE_RANGE_FACTOR) + 1024;
        if !self.dense_lookup {
            return;
        }
        let bound = bound as usize;
        if self.lookup.len() < bound {
            self.lookup.resize(bound, NO_RANK);
            self.lookup_stamp.resize(bound, 0);
        }
        self.stamp = match self.stamp.checked_add(1) {
            Some(next) => next,
            None => {
                self.lookup_stamp.fill(0);
                1
            }
        };
        for (rank, id) in self.ids.iter().enumerate() {
            let slot = id.as_u64() as usize;
            self.lookup[slot] = rank as u32;
            self.lookup_stamp[slot] = self.stamp;
        }
    }

    /// The dense rank of `id` in the current sample, if observed.
    #[inline]
    fn rank_of(&self, id: NodeId) -> Option<u32> {
        if self.dense_lookup {
            let slot = id.as_u64() as usize;
            if slot < self.lookup.len() && self.lookup_stamp[slot] == self.stamp {
                Some(self.lookup[slot])
            } else {
                None
            }
        } else {
            self.ids.binary_search(&id).ok().map(|rank| rank as u32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::NodeObservation;
    use croupier_simulator::NatClass;

    fn snapshot(nodes: &[u64], edges: &[(u64, u64)]) -> OverlaySnapshot {
        OverlaySnapshot::from_parts(
            nodes
                .iter()
                .map(|id| NodeObservation {
                    id: NodeId::new(*id),
                    class: NatClass::Public,
                    ratio_estimate: None,
                    rounds_executed: 5,
                })
                .collect(),
            edges
                .iter()
                .map(|(a, b)| (NodeId::new(*a), NodeId::new(*b)))
                .collect(),
        )
    }

    fn degree_of(distribution: &[(NodeId, usize)], id: u64) -> usize {
        distribution
            .iter()
            .find(|(node, _)| *node == NodeId::new(id))
            .map(|&(_, d)| d)
            .expect("node present")
    }

    #[test]
    fn counts_incoming_edges_per_node() {
        let s = snapshot(&[1, 2, 3], &[(1, 2), (3, 2), (2, 3), (2, 2)]);
        let d = indegree_distribution(&s);
        assert_eq!(d.len(), 3);
        assert_eq!(degree_of(&d, 1), 0);
        assert_eq!(degree_of(&d, 2), 2);
        assert_eq!(degree_of(&d, 3), 1);
    }

    #[test]
    fn distribution_is_in_snapshot_node_order() {
        let s = snapshot(&[1, 2, 3], &[(1, 2)]);
        let ids: Vec<NodeId> = indegree_distribution(&s)
            .iter()
            .map(|&(id, _)| id)
            .collect();
        assert_eq!(ids, s.node_ids());
    }

    #[test]
    fn histogram_buckets_by_degree() {
        let s = snapshot(&[1, 2, 3, 4], &[(1, 2), (3, 2), (1, 3)]);
        // Degrees: node1=0, node2=2, node3=1, node4=0.
        assert_eq!(indegree_histogram(&s), vec![(0, 2), (1, 1), (2, 1)]);
    }

    #[test]
    fn stats_summarise_the_distribution() {
        let s = snapshot(&[1, 2, 3, 4], &[(1, 2), (3, 2), (1, 3), (2, 4)]);
        let stats = indegree_stats(&s);
        assert_eq!(stats.min, 0);
        assert_eq!(stats.max, 2);
        assert!((stats.mean - 1.0).abs() < 1e-9);
        assert!(stats.std_dev > 0.0);
    }

    #[test]
    fn empty_snapshot_has_zeroed_stats() {
        assert_eq!(
            indegree_stats(&OverlaySnapshot::default()),
            IndegreeStats::default()
        );
        assert!(indegree_histogram(&OverlaySnapshot::default()).is_empty());
        assert_eq!(indegree_gini(&OverlaySnapshot::default()), 0.0);
    }

    #[test]
    fn edges_to_unknown_nodes_are_ignored() {
        let s = snapshot(&[1, 2], &[(1, 2), (1, 77)]);
        let d = indegree_distribution(&s);
        assert_eq!(d.len(), 2);
        assert_eq!(degree_of(&d, 2), 1);
    }

    #[test]
    fn gini_is_zero_for_uniform_distributions() {
        // Ring: everyone has in-degree exactly 1.
        let s = snapshot(&[1, 2, 3, 4], &[(1, 2), (2, 3), (3, 4), (4, 1)]);
        assert_eq!(indegree_gini(&s), 0.0);
    }

    #[test]
    fn gini_detects_hub_concentration() {
        // Star: node 1 receives everything, the rest receive nothing.
        let s = snapshot(&[1, 2, 3, 4, 5], &[(2, 1), (3, 1), (4, 1), (5, 1)]);
        // All mass in one of five nodes: G = (n - 1)/n = 0.8.
        assert!((indegree_gini(&s) - 0.8).abs() < 1e-12);
        // Two nodes, one holds everything: G = 0.5.
        let two = snapshot(&[1, 2], &[(2, 1)]);
        assert!((indegree_gini(&two) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn incremental_rebuild_matches_reference_on_fresh_snapshots() {
        for (nodes, edges) in [
            (vec![1u64, 2, 3], vec![(1u64, 2u64), (3, 2), (2, 3), (2, 2)]),
            (vec![1, 2, 3, 4, 5], vec![(1, 2), (2, 3)]),
            (vec![1, 2, 3, 4], vec![]),
            (vec![], vec![]),
            (
                vec![1, 2, 3, 4, 5, 6, 7],
                vec![(1, 2), (2, 3), (4, 5), (5, 4), (6, 42), (3, 3), (9, 2)],
            ),
        ] {
            let s = snapshot(&nodes, &edges);
            let mut tracker = IncrementalIndegree::new();
            tracker.update(&s);
            let reference: Vec<usize> = indegree_distribution(&s).iter().map(|&(_, d)| d).collect();
            assert_eq!(
                tracker.degrees().collect::<Vec<_>>(),
                reference,
                "nodes {nodes:?} edges {edges:?}"
            );
            assert_eq!(tracker.histogram(), indegree_histogram(&s));
            assert_eq!(tracker.stats(), indegree_stats(&s));
            assert_eq!(
                tracker.gini().to_bits(),
                indegree_gini(&s).to_bits(),
                "nodes {nodes:?} edges {edges:?}"
            );
        }
    }

    #[test]
    fn every_update_without_delta_tracking_rebuilds() {
        let s = snapshot(&[1, 2, 3], &[(1, 2)]);
        let mut tracker = IncrementalIndegree::new();
        tracker.update(&s);
        tracker.update(&s);
        assert_eq!(tracker.rebuild_count(), 2);
        assert_eq!(tracker.fast_update_count(), 0);
    }

    #[test]
    fn delta_updates_follow_edge_churn() {
        let nodes: Vec<NodeObservation> = [1u64, 2, 3]
            .iter()
            .map(|&id| NodeObservation {
                id: NodeId::new(id),
                class: NatClass::Public,
                ratio_estimate: None,
                rounds_executed: 5,
            })
            .collect();
        let edge = |a: u64, b: u64| (NodeId::new(a), NodeId::new(b));
        let mut tracked = OverlaySnapshot::default();
        tracked.enable_delta_tracking();
        tracked.replace_from_parts(nodes.clone(), vec![edge(1, 2), edge(3, 2)]);
        let mut tracker = IncrementalIndegree::new();
        tracker.update(&tracked);
        assert_eq!(tracker.rebuild_count(), 1);
        // Same membership, different edges: the second capture carries a valid delta.
        tracked.replace_from_parts(nodes, vec![edge(1, 2), edge(2, 3), edge(1, 3)]);
        tracker.update(&tracked);
        assert_eq!(tracker.fast_update_count(), 1, "delta fast path must fire");
        assert_eq!(
            tracker.degrees().collect::<Vec<_>>(),
            indegree_distribution(&tracked)
                .iter()
                .map(|&(_, d)| d)
                .collect::<Vec<_>>()
        );
        assert_eq!(tracker.histogram(), indegree_histogram(&tracked));
        assert_eq!(tracker.gini().to_bits(), indegree_gini(&tracked).to_bits());
    }

    #[test]
    fn membership_change_forces_a_rebuild() {
        let obs = |id: u64| NodeObservation {
            id: NodeId::new(id),
            class: NatClass::Public,
            ratio_estimate: None,
            rounds_executed: 5,
        };
        let edge = |a: u64, b: u64| (NodeId::new(a), NodeId::new(b));
        let mut tracked = OverlaySnapshot::default();
        tracked.enable_delta_tracking();
        tracked.replace_from_parts(vec![obs(1), obs(2)], vec![edge(1, 2)]);
        let mut tracker = IncrementalIndegree::new();
        tracker.update(&tracked);
        tracked.replace_from_parts(vec![obs(1), obs(2), obs(3)], vec![edge(1, 2), edge(1, 3)]);
        tracker.update(&tracked);
        assert_eq!(tracker.rebuild_count(), 2, "new node invalidates ranks");
        assert_eq!(tracker.fast_update_count(), 0);
        assert_eq!(tracker.stats(), indegree_stats(&tracked));
    }
}
