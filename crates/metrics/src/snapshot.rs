//! Protocol-agnostic snapshots of the overlay graph.

use croupier_simulator::{NatClass, NodeId, Protocol, PssNode, SimulationEngine};
use serde::{Deserialize, Serialize};

/// What the evaluation observes about one node at snapshot time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeObservation {
    /// The node's identity.
    pub id: NodeId,
    /// The node's connectivity class.
    pub class: NatClass,
    /// The node's estimate of the public/private ratio, if the protocol computes one.
    pub ratio_estimate: Option<f64>,
    /// Rounds the node has executed since joining.
    pub rounds_executed: u64,
}

/// A snapshot of the overlay: every live node plus the directed edges induced by the
/// partial views (an edge `a → b` means `b` appears in `a`'s view).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OverlaySnapshot {
    /// Observations of every live node.
    pub nodes: Vec<NodeObservation>,
    /// Directed "knows-about" edges.
    pub edges: Vec<(NodeId, NodeId)>,
}

impl OverlaySnapshot {
    /// Captures a snapshot from a running simulation (either execution engine).
    ///
    /// Only nodes that have executed at least `min_rounds` gossip rounds are included —
    /// the paper excludes nodes younger than two rounds from its metrics so freshly joined
    /// nodes do not skew estimation errors.
    pub fn capture<P, E>(sim: &E, min_rounds: u64) -> Self
    where
        P: Protocol + PssNode,
        E: SimulationEngine<P>,
    {
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        sim.for_each_node(&mut |id, proto| {
            if proto.rounds_executed() < min_rounds {
                return;
            }
            nodes.push(NodeObservation {
                id,
                class: proto.nat_class(),
                ratio_estimate: proto.ratio_estimate(),
                rounds_executed: proto.rounds_executed(),
            });
            for peer in proto.known_peers() {
                edges.push((id, peer));
            }
        });
        // Engines iterate nodes in storage order; sort so snapshots (and every metric
        // derived from them) are deterministic for a fixed seed and engine-agnostic.
        nodes.sort_by_key(|n| n.id);
        edges.sort_unstable();
        OverlaySnapshot { nodes, edges }
    }

    /// Builds a snapshot directly from parts; useful in tests and synthetic analyses.
    pub fn from_parts(nodes: Vec<NodeObservation>, edges: Vec<(NodeId, NodeId)>) -> Self {
        OverlaySnapshot { nodes, edges }
    }

    /// Number of observed nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Identifiers of the observed nodes.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|n| n.id).collect()
    }

    /// The true public/private ratio among the observed nodes.
    pub fn true_ratio(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let public = self.nodes.iter().filter(|n| n.class.is_public()).count();
        public as f64 / self.nodes.len() as f64
    }

    /// Keeps only edges whose endpoints are both observed nodes (drops dangling references
    /// to departed nodes).
    pub fn retain_live_edges(&mut self) {
        let live: std::collections::HashSet<NodeId> = self.nodes.iter().map(|n| n.id).collect();
        self.edges
            .retain(|(a, b)| live.contains(a) && live.contains(b));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(id: u64, class: NatClass) -> NodeObservation {
        NodeObservation {
            id: NodeId::new(id),
            class,
            ratio_estimate: None,
            rounds_executed: 10,
        }
    }

    #[test]
    fn true_ratio_counts_public_fraction() {
        let snapshot = OverlaySnapshot::from_parts(
            vec![
                obs(1, NatClass::Public),
                obs(2, NatClass::Private),
                obs(3, NatClass::Private),
                obs(4, NatClass::Private),
            ],
            vec![],
        );
        assert!((snapshot.true_ratio() - 0.25).abs() < 1e-9);
        assert_eq!(OverlaySnapshot::default().true_ratio(), 0.0);
    }

    #[test]
    fn retain_live_edges_drops_dangling_references() {
        let mut snapshot = OverlaySnapshot::from_parts(
            vec![obs(1, NatClass::Public), obs(2, NatClass::Private)],
            vec![
                (NodeId::new(1), NodeId::new(2)),
                (NodeId::new(1), NodeId::new(99)),
                (NodeId::new(50), NodeId::new(2)),
            ],
        );
        snapshot.retain_live_edges();
        assert_eq!(snapshot.edge_count(), 1);
        assert_eq!(snapshot.edges[0], (NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn accessors_report_counts() {
        let snapshot = OverlaySnapshot::from_parts(
            vec![obs(1, NatClass::Public)],
            vec![(NodeId::new(1), NodeId::new(1))],
        );
        assert_eq!(snapshot.node_count(), 1);
        assert_eq!(snapshot.edge_count(), 1);
        assert_eq!(snapshot.node_ids(), vec![NodeId::new(1)]);
    }
}
