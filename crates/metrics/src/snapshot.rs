//! Protocol-agnostic snapshots of the overlay graph.

use croupier_simulator::{NatClass, NodeId, Protocol, PssNode, SimulationEngine};
use serde::{Deserialize, Serialize};

/// What the evaluation observes about one node at snapshot time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeObservation {
    /// The node's identity.
    pub id: NodeId,
    /// The node's connectivity class.
    pub class: NatClass,
    /// The node's estimate of the public/private ratio, if the protocol computes one.
    pub ratio_estimate: Option<f64>,
    /// Rounds the node has executed since joining.
    pub rounds_executed: u64,
}

/// A snapshot of the overlay: every live node plus the directed edges induced by the
/// partial views (an edge `a → b` means `b` appears in `a`'s view).
///
/// Snapshots are designed to be **reused across samples**:
/// [`capture_into`](OverlaySnapshot::capture_into) refills the node, edge and cached
/// live-id buffers in place, so a sampling loop that keeps one snapshot alive performs no
/// steady-state allocation. Equality compares the observable state (`nodes` and `edges`)
/// only.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OverlaySnapshot {
    /// Observations of every live node.
    pub nodes: Vec<NodeObservation>,
    /// Directed "knows-about" edges.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Sorted live node ids, maintained as a reusable buffer for edge filtering.
    #[serde(skip)]
    live_ids: Vec<NodeId>,
    /// Exclusive upper bound on live node ids, as reported by the engine's dense-index
    /// capture path (0 for hand-built snapshots; consumers fall back to the largest
    /// observed id).
    #[serde(skip)]
    id_bound: u64,
    /// Whether [`capture_into`](OverlaySnapshot::capture_into) diffs consecutive
    /// captures (see [`enable_delta_tracking`](OverlaySnapshot::enable_delta_tracking)).
    #[serde(skip)]
    track_deltas: bool,
    /// `true` once at least one tracked capture has run (the next one has a predecessor
    /// to diff against).
    #[serde(skip)]
    delta_primed: bool,
    /// `true` when the current capture carries a valid diff against its predecessor.
    #[serde(skip)]
    delta_valid: bool,
    /// Whether the observed node set changed between the last two tracked captures.
    #[serde(skip)]
    membership_changed: bool,
    /// The previous capture's sorted edge list (double buffer for the diff).
    #[serde(skip)]
    prev_edges: Vec<(NodeId, NodeId)>,
    /// The previous capture's sorted live-id list (double buffer for the diff).
    #[serde(skip)]
    prev_live_ids: Vec<NodeId>,
    /// Directed edges present now but not in the previous capture (multiset diff).
    #[serde(skip)]
    added_edges: Vec<(NodeId, NodeId)>,
    /// Directed edges present in the previous capture but not now (multiset diff).
    #[serde(skip)]
    removed_edges: Vec<(NodeId, NodeId)>,
}

/// The difference between a snapshot's two most recent tracked captures, borrowed from
/// [`OverlaySnapshot::edge_delta`].
#[derive(Clone, Copy, Debug)]
pub struct EdgeDelta<'a> {
    /// Directed edges that appeared since the previous capture (multiset semantics: a
    /// duplicate directed edge gained counts once per extra occurrence).
    pub added: &'a [(NodeId, NodeId)],
    /// Directed edges that disappeared since the previous capture.
    pub removed: &'a [(NodeId, NodeId)],
    /// Whether the observed node set itself changed. When it did, consumers relying on
    /// stable node ranks must fall back to a full rebuild.
    pub membership_changed: bool,
}

impl PartialEq for OverlaySnapshot {
    fn eq(&self, other: &Self) -> bool {
        // `live_ids` is a derived cache and `id_bound` a capacity hint; neither carries
        // observable information, so engine-to-engine snapshot comparisons ignore them.
        self.nodes == other.nodes && self.edges == other.edges
    }
}

impl OverlaySnapshot {
    /// Captures a snapshot from a running simulation (either execution engine).
    ///
    /// Only nodes that have executed at least `min_rounds` gossip rounds are included —
    /// the paper excludes nodes younger than two rounds from its metrics so freshly joined
    /// nodes do not skew estimation errors.
    pub fn capture<P, E>(sim: &E, min_rounds: u64) -> Self
    where
        P: Protocol + PssNode,
        E: SimulationEngine<P>,
    {
        let mut snapshot = OverlaySnapshot::default();
        snapshot.capture_into(sim, min_rounds);
        snapshot
    }

    /// Re-captures this snapshot from a running simulation, reusing the node, edge and
    /// live-id buffers — the allocation-free path for per-sample loops.
    pub fn capture_into<P, E>(&mut self, sim: &E, min_rounds: u64)
    where
        P: Protocol + PssNode,
        E: SimulationEngine<P>,
    {
        let had_previous_capture = self.begin_tracked_capture();
        self.nodes.clear();
        self.edges.clear();
        let (nodes, edges) = (&mut self.nodes, &mut self.edges);
        sim.for_each_node(&mut |id, proto| {
            if proto.rounds_executed() < min_rounds {
                return;
            }
            nodes.push(NodeObservation {
                id,
                class: proto.nat_class(),
                ratio_estimate: proto.ratio_estimate(),
                rounds_executed: proto.rounds_executed(),
            });
            proto.for_each_known_peer(&mut |peer| edges.push((id, peer)));
        });
        // Engines iterate nodes in storage order; sort so snapshots (and every metric
        // derived from them) are deterministic for a fixed seed and engine-agnostic.
        // Ids are unique, so the unstable sorts are deterministic and allocation-free.
        self.nodes.sort_unstable_by_key(|n| n.id);
        self.edges.sort_unstable();
        self.id_bound = sim.node_id_upper_bound();
        self.finish_tracked_capture(had_previous_capture);
    }

    /// Re-captures this snapshot from explicit parts, running the exact bookkeeping of
    /// [`capture_into`](OverlaySnapshot::capture_into) — node/edge sorting, live-id
    /// refresh and (when enabled) delta diffing — without an engine. This is how tests
    /// and benchmarks stage a snapshot that carries a valid
    /// [`edge_delta`](OverlaySnapshot::edge_delta) for the incremental metrics.
    pub fn replace_from_parts(
        &mut self,
        nodes: Vec<NodeObservation>,
        edges: Vec<(NodeId, NodeId)>,
    ) {
        let had_previous_capture = self.begin_tracked_capture();
        self.nodes = nodes;
        self.edges = edges;
        self.nodes.sort_unstable_by_key(|n| n.id);
        self.edges.sort_unstable();
        self.id_bound = 0;
        self.finish_tracked_capture(had_previous_capture);
    }

    /// Copies the observable state (nodes, edges) and capture caches (live ids, id
    /// bound) of `other` into `self`, reusing `self`'s buffers — the transfer path the
    /// overlapped experiment driver uses to hand a stable copy of its delta-tracked
    /// snapshot to a metrics worker. Delta-tracking state is deliberately not copied:
    /// the copy answers read-only full-graph queries, it does not feed incremental
    /// consumers.
    pub fn copy_observations_from(&mut self, other: &OverlaySnapshot) {
        self.nodes.clone_from(&other.nodes);
        self.edges.clone_from(&other.edges);
        self.live_ids.clone_from(&other.live_ids);
        self.id_bound = other.id_bound;
    }

    /// Starts one tracked capture: double-buffers the previous capture's edges and live
    /// ids (so the new capture can be diffed without cloning either list) and reports
    /// whether a predecessor exists to diff against.
    fn begin_tracked_capture(&mut self) -> bool {
        let had_previous_capture = self.delta_primed;
        if self.track_deltas {
            std::mem::swap(&mut self.prev_edges, &mut self.edges);
            std::mem::swap(&mut self.prev_live_ids, &mut self.live_ids);
        }
        had_previous_capture
    }

    /// Finishes one capture over the freshly sorted `nodes`/`edges`: refreshes the
    /// live-id cache and, when tracking, records the membership/edge diff.
    fn finish_tracked_capture(&mut self, had_previous_capture: bool) {
        self.refresh_live_ids();
        if self.track_deltas {
            self.membership_changed = self.prev_live_ids != self.live_ids;
            self.diff_edges();
            self.delta_valid = had_previous_capture;
            self.delta_primed = true;
        }
    }

    /// Turns on capture-to-capture diffing: every subsequent
    /// [`capture_into`](OverlaySnapshot::capture_into) records which directed edges
    /// appeared and disappeared (and whether membership changed) relative to the capture
    /// before it, served by [`edge_delta`](OverlaySnapshot::edge_delta). Costs one extra
    /// edge-list-sized buffer and a two-pointer diff per capture; incremental metrics
    /// (see [`IncrementalComponents`](crate::incremental::IncrementalComponents)) are
    /// the consumer.
    pub fn enable_delta_tracking(&mut self) {
        self.track_deltas = true;
    }

    /// The diff between the two most recent tracked captures, or `None` when delta
    /// tracking is off or fewer than two captures have run.
    pub fn edge_delta(&self) -> Option<EdgeDelta<'_>> {
        if self.delta_valid {
            Some(EdgeDelta {
                added: &self.added_edges,
                removed: &self.removed_edges,
                membership_changed: self.membership_changed,
            })
        } else {
            None
        }
    }

    /// Returns `true` if the directed edge `a → b` is present in the current capture
    /// (binary search over the sorted edge list).
    pub fn has_directed_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.edges.binary_search(&(a, b)).is_ok()
    }

    /// Two-pointer multiset diff of the sorted `prev_edges`/`edges` lists into
    /// `added_edges`/`removed_edges`.
    fn diff_edges(&mut self) {
        self.added_edges.clear();
        self.removed_edges.clear();
        let (old, new) = (&self.prev_edges, &self.edges);
        let (mut i, mut j) = (0usize, 0usize);
        while i < old.len() && j < new.len() {
            match old[i].cmp(&new[j]) {
                std::cmp::Ordering::Less => {
                    self.removed_edges.push(old[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    self.added_edges.push(new[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        self.removed_edges.extend_from_slice(&old[i..]);
        self.added_edges.extend_from_slice(&new[j..]);
    }

    /// Builds a snapshot directly from parts; useful in tests and synthetic analyses.
    pub fn from_parts(nodes: Vec<NodeObservation>, edges: Vec<(NodeId, NodeId)>) -> Self {
        let mut snapshot = OverlaySnapshot {
            nodes,
            edges,
            ..OverlaySnapshot::default()
        };
        snapshot.refresh_live_ids();
        snapshot
    }

    /// Number of observed nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Identifiers of the observed nodes.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|n| n.id).collect()
    }

    /// Exclusive upper bound on observed node ids: the engine-reported dense-id bound
    /// when captured from a simulation, otherwise the largest observed id plus one.
    pub fn id_upper_bound(&self) -> u64 {
        self.id_bound
            .max(self.live_ids.last().map_or(0, |id| id.as_u64() + 1))
    }

    /// The true public/private ratio among the observed nodes.
    pub fn true_ratio(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let public = self.nodes.iter().filter(|n| n.class.is_public()).count();
        public as f64 / self.nodes.len() as f64
    }

    /// Refreshes the cached sorted live-id buffer from `nodes`. Called by the capture and
    /// construction paths; call it again after mutating `nodes` by hand.
    fn refresh_live_ids(&mut self) {
        self.live_ids.clear();
        self.live_ids.extend(self.nodes.iter().map(|n| n.id));
        if !self.live_ids.windows(2).all(|w| w[0] < w[1]) {
            self.live_ids.sort_unstable();
        }
    }

    /// Keeps only edges whose endpoints are both observed nodes (drops dangling references
    /// to departed nodes). Filtering binary-searches the cached sorted live-id buffer —
    /// no per-call `HashSet` — and refreshes that cache first so direct mutation of
    /// `nodes` is still honoured.
    pub fn retain_live_edges(&mut self) {
        self.refresh_live_ids();
        let live = &self.live_ids;
        self.edges
            .retain(|(a, b)| live.binary_search(a).is_ok() && live.binary_search(b).is_ok());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(id: u64, class: NatClass) -> NodeObservation {
        NodeObservation {
            id: NodeId::new(id),
            class,
            ratio_estimate: None,
            rounds_executed: 10,
        }
    }

    #[test]
    fn true_ratio_counts_public_fraction() {
        let snapshot = OverlaySnapshot::from_parts(
            vec![
                obs(1, NatClass::Public),
                obs(2, NatClass::Private),
                obs(3, NatClass::Private),
                obs(4, NatClass::Private),
            ],
            vec![],
        );
        assert!((snapshot.true_ratio() - 0.25).abs() < 1e-9);
        assert_eq!(OverlaySnapshot::default().true_ratio(), 0.0);
    }

    #[test]
    fn retain_live_edges_drops_dangling_references() {
        let mut snapshot = OverlaySnapshot::from_parts(
            vec![obs(1, NatClass::Public), obs(2, NatClass::Private)],
            vec![
                (NodeId::new(1), NodeId::new(2)),
                (NodeId::new(1), NodeId::new(99)),
                (NodeId::new(50), NodeId::new(2)),
            ],
        );
        snapshot.retain_live_edges();
        assert_eq!(snapshot.edge_count(), 1);
        assert_eq!(snapshot.edges[0], (NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn retain_live_edges_tracks_direct_node_mutation() {
        let mut snapshot = OverlaySnapshot::from_parts(
            vec![obs(1, NatClass::Public), obs(2, NatClass::Private)],
            vec![(NodeId::new(1), NodeId::new(2))],
        );
        snapshot.nodes.retain(|n| n.id != NodeId::new(2));
        snapshot.retain_live_edges();
        assert_eq!(snapshot.edge_count(), 0, "cache must be refreshed");
    }

    #[test]
    fn accessors_report_counts() {
        let snapshot = OverlaySnapshot::from_parts(
            vec![obs(1, NatClass::Public)],
            vec![(NodeId::new(1), NodeId::new(1))],
        );
        assert_eq!(snapshot.node_count(), 1);
        assert_eq!(snapshot.edge_count(), 1);
        assert_eq!(snapshot.node_ids(), vec![NodeId::new(1)]);
        assert_eq!(snapshot.id_upper_bound(), 2);
        assert_eq!(OverlaySnapshot::default().id_upper_bound(), 0);
    }

    #[test]
    fn replace_from_parts_tracks_deltas_like_captures() {
        let edge = |a: u64, b: u64| (NodeId::new(a), NodeId::new(b));
        let nodes = vec![obs(2, NatClass::Public), obs(1, NatClass::Private)];
        let mut snapshot = OverlaySnapshot::default();
        snapshot.enable_delta_tracking();
        snapshot.replace_from_parts(nodes.clone(), vec![edge(2, 1)]);
        assert!(
            snapshot.edge_delta().is_none(),
            "the first capture has no predecessor to diff against"
        );
        assert_eq!(snapshot.nodes[0].id, NodeId::new(1), "nodes are sorted");
        snapshot.replace_from_parts(nodes, vec![edge(1, 2)]);
        let delta = snapshot.edge_delta().expect("second capture has a delta");
        assert!(!delta.membership_changed);
        assert_eq!(delta.added, &[edge(1, 2)]);
        assert_eq!(delta.removed, &[edge(2, 1)]);
    }

    #[test]
    fn copy_observations_reproduces_the_source_snapshot() {
        let mut source = OverlaySnapshot::default();
        source.replace_from_parts(
            vec![obs(1, NatClass::Public), obs(5, NatClass::Private)],
            vec![(NodeId::new(1), NodeId::new(5))],
        );
        let mut copy = OverlaySnapshot::default();
        copy.copy_observations_from(&source);
        assert_eq!(copy, source);
        assert_eq!(copy.id_upper_bound(), source.id_upper_bound());
    }

    #[test]
    fn equality_ignores_derived_caches() {
        let a = OverlaySnapshot::from_parts(vec![obs(1, NatClass::Public)], vec![]);
        let mut b = OverlaySnapshot::from_parts(vec![obs(1, NatClass::Public)], vec![]);
        b.id_bound = 99;
        assert_eq!(a, b);
    }
}
