//! Protocol overhead per connectivity class (Fig. 7(a) of the paper).

use croupier_simulator::{NatClass, NodeId, TrafficLedger};
use serde::{Deserialize, Serialize};

/// Average network load of the nodes of one connectivity class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassOverhead {
    /// Number of nodes in the class.
    pub nodes: usize,
    /// Average load (bytes sent + received) per node per second.
    pub avg_load_bytes_per_sec: f64,
    /// Average number of messages sent per node per second.
    pub avg_messages_per_sec: f64,
}

/// Overhead report split by connectivity class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Load of public nodes.
    pub public: ClassOverhead,
    /// Load of private nodes.
    pub private: ClassOverhead,
}

impl OverheadReport {
    /// Subtracts a baseline report (typically Cyclon's) class-by-class, flooring at zero.
    /// Figure 7(a) of the paper reports overhead *relative to Cyclon*, i.e. the extra load a
    /// NAT-aware protocol pays on top of plain gossip.
    pub fn relative_to(&self, baseline: &OverheadReport) -> OverheadReport {
        fn diff(a: ClassOverhead, b: ClassOverhead) -> ClassOverhead {
            ClassOverhead {
                nodes: a.nodes,
                avg_load_bytes_per_sec: (a.avg_load_bytes_per_sec - b.avg_load_bytes_per_sec)
                    .max(0.0),
                avg_messages_per_sec: (a.avg_messages_per_sec - b.avg_messages_per_sec).max(0.0),
            }
        }
        OverheadReport {
            public: diff(self.public, baseline.public),
            private: diff(self.private, baseline.private),
        }
    }
}

/// Computes the per-class overhead from a traffic ledger.
///
/// `classes` maps every node to its connectivity class (nodes missing from the mapping are
/// skipped) and `window_secs` is the length of the measurement window in seconds.
///
/// # Panics
///
/// Panics if `window_secs` is not a positive finite number.
pub fn class_overhead<F>(
    traffic: &TrafficLedger,
    mut classes: F,
    window_secs: f64,
) -> OverheadReport
where
    F: FnMut(NodeId) -> Option<NatClass>,
{
    assert!(
        window_secs.is_finite() && window_secs > 0.0,
        "measurement window must be positive"
    );
    let mut public_bytes = 0u64;
    let mut public_msgs = 0u64;
    let mut public_nodes = 0usize;
    let mut private_bytes = 0u64;
    let mut private_msgs = 0u64;
    let mut private_nodes = 0usize;

    for (node, stats) in traffic.iter() {
        match classes(node) {
            Some(NatClass::Public) => {
                public_nodes += 1;
                public_bytes += stats.bytes_total();
                public_msgs += stats.messages_sent;
            }
            Some(NatClass::Private) => {
                private_nodes += 1;
                private_bytes += stats.bytes_total();
                private_msgs += stats.messages_sent;
            }
            None => {}
        }
    }

    let per_class = |nodes: usize, bytes: u64, msgs: u64| ClassOverhead {
        nodes,
        avg_load_bytes_per_sec: if nodes > 0 {
            bytes as f64 / nodes as f64 / window_secs
        } else {
            0.0
        },
        avg_messages_per_sec: if nodes > 0 {
            msgs as f64 / nodes as f64 / window_secs
        } else {
            0.0
        },
    };

    OverheadReport {
        public: per_class(public_nodes, public_bytes, public_msgs),
        private: per_class(private_nodes, private_bytes, private_msgs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> TrafficLedger {
        let mut ledger = TrafficLedger::new();
        // Two public nodes: 1000 and 2000 total bytes over the window.
        ledger.record_sent(NodeId::new(1), 600);
        ledger.record_received(NodeId::new(1), 400);
        ledger.record_sent(NodeId::new(2), 2000);
        // One private node: 500 bytes.
        ledger.record_sent(NodeId::new(10), 500);
        ledger
    }

    fn classes(node: NodeId) -> Option<NatClass> {
        match node.as_u64() {
            1 | 2 => Some(NatClass::Public),
            10 => Some(NatClass::Private),
            _ => None,
        }
    }

    #[test]
    fn averages_load_per_class_per_second() {
        let report = class_overhead(&ledger(), classes, 10.0);
        assert_eq!(report.public.nodes, 2);
        assert!((report.public.avg_load_bytes_per_sec - 150.0).abs() < 1e-9);
        assert_eq!(report.private.nodes, 1);
        assert!((report.private.avg_load_bytes_per_sec - 50.0).abs() < 1e-9);
        assert!(report.public.avg_messages_per_sec > 0.0);
    }

    #[test]
    fn unknown_nodes_are_skipped() {
        let mut ledger = ledger();
        ledger.record_sent(NodeId::new(99), 1_000_000);
        let report = class_overhead(&ledger, classes, 10.0);
        assert_eq!(report.public.nodes, 2);
        assert_eq!(report.private.nodes, 1);
    }

    #[test]
    fn relative_to_subtracts_the_baseline_and_floors_at_zero() {
        let a = OverheadReport {
            public: ClassOverhead {
                nodes: 2,
                avg_load_bytes_per_sec: 300.0,
                avg_messages_per_sec: 3.0,
            },
            private: ClassOverhead {
                nodes: 8,
                avg_load_bytes_per_sec: 50.0,
                avg_messages_per_sec: 1.0,
            },
        };
        let baseline = OverheadReport {
            public: ClassOverhead {
                nodes: 2,
                avg_load_bytes_per_sec: 100.0,
                avg_messages_per_sec: 2.0,
            },
            private: ClassOverhead {
                nodes: 8,
                avg_load_bytes_per_sec: 80.0,
                avg_messages_per_sec: 2.0,
            },
        };
        let rel = a.relative_to(&baseline);
        assert!((rel.public.avg_load_bytes_per_sec - 200.0).abs() < 1e-9);
        assert_eq!(rel.private.avg_load_bytes_per_sec, 0.0);
        assert_eq!(rel.private.avg_messages_per_sec, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_window_is_rejected() {
        class_overhead(&TrafficLedger::new(), |_| None, 0.0);
    }

    #[test]
    fn empty_ledger_reports_zeroes() {
        let report = class_overhead(&TrafficLedger::new(), classes, 5.0);
        assert_eq!(report.public.nodes, 0);
        assert_eq!(report.public.avg_load_bytes_per_sec, 0.0);
    }
}
