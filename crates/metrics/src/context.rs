//! The reusable per-sample metrics pipeline.
//!
//! [`MetricsContext`] owns one [`CsrGraph`] plus all traversal scratch (epoch-stamped
//! visited buffers, frontier vectors, the BFS source permutation) and computes every
//! graph metric of a sample — average path length, average clustering coefficient,
//! largest-component fraction — from **one** graph build. Keeping the context alive
//! across samples means the steady-state sampling loop performs no allocation at all:
//! no `BTreeMap`/`BTreeSet` adjacency, no `HashMap` BFS state, no per-call scratch.
//!
//! # Parallel multi-source BFS and determinism
//!
//! Path-length estimation runs one independent BFS per sampled source. With
//! `threads > 1` the sources are split into contiguous chunks in their (already
//! canonical) sampled order and each chunk runs on its own scoped worker thread — the
//! same `std::thread::scope` worker model the sharded engine uses for its phases — with
//! its own scratch buffers. Each BFS produces an exact integer `(hop sum, pair count)`;
//! the per-chunk integer sums are merged in chunk order. Integer addition is associative
//! and commutative, so the merged totals — and therefore the final floating-point
//! division — are **bit-identical for any thread count**, which
//! `tests/property_tests.rs` pins down against the single-threaded reference.

use croupier_simulator::NodeId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

use crate::graph::CsrGraph;
use crate::snapshot::OverlaySnapshot;

/// Reusable single-BFS scratch: an epoch-stamped visited buffer and two frontiers.
///
/// `mark[v] == epoch` means vertex `v` was reached by the current traversal; bumping
/// `epoch` resets the whole buffer in O(1). The buffers persist across samples and across
/// BFS runs, so a traversal allocates nothing once the buffers have grown to the overlay
/// size.
#[derive(Clone, Debug, Default)]
struct BfsScratch {
    mark: Vec<u32>,
    epoch: u32,
    frontier: Vec<u32>,
    next: Vec<u32>,
}

impl BfsScratch {
    /// Prepares the scratch for one traversal over `n` vertices and returns the fresh
    /// epoch value.
    fn begin(&mut self, n: usize) -> u32 {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.mark.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.frontier.clear();
        self.next.clear();
        self.epoch
    }

    /// Level-synchronous BFS from `source`, returning the exact `(Σ hops, reached pairs)`
    /// over all vertices reachable from (and distinct from) the source.
    fn sweep_sums(&mut self, graph: &CsrGraph, source: u32) -> (u64, u64) {
        let epoch = self.begin(graph.node_count());
        self.mark[source as usize] = epoch;
        self.frontier.push(source);
        let mut depth = 0u64;
        let mut hops = 0u64;
        let mut pairs = 0u64;
        while !self.frontier.is_empty() {
            depth += 1;
            self.next.clear();
            for &u in &self.frontier {
                for &v in graph.row(u) {
                    if self.mark[v as usize] != epoch {
                        self.mark[v as usize] = epoch;
                        self.next.push(v);
                    }
                }
            }
            hops += depth * self.next.len() as u64;
            pairs += self.next.len() as u64;
            std::mem::swap(&mut self.frontier, &mut self.next);
        }
        (hops, pairs)
    }
}

/// Builds all per-sample graph metrics from one shared CSR overlay graph.
///
/// # Examples
///
/// ```
/// use croupier_metrics::{MetricsContext, NodeObservation, OverlaySnapshot};
/// use croupier_simulator::{NatClass, NodeId};
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let snapshot = OverlaySnapshot::from_parts(
///     (0..4)
///         .map(|i| NodeObservation {
///             id: NodeId::new(i),
///             class: NatClass::Public,
///             ratio_estimate: None,
///             rounds_executed: 5,
///         })
///         .collect(),
///     vec![
///         (NodeId::new(0), NodeId::new(1)),
///         (NodeId::new(1), NodeId::new(2)),
///         (NodeId::new(2), NodeId::new(3)),
///     ],
/// );
/// let mut ctx = MetricsContext::new(1);
/// ctx.build(&snapshot);
/// let mut rng = SmallRng::seed_from_u64(7);
/// assert!((ctx.largest_component_fraction() - 1.0).abs() < 1e-9);
/// assert_eq!(ctx.average_clustering_coefficient(), 0.0);
/// assert!(ctx.average_path_length(usize::MAX, &mut rng).is_some());
/// ```
#[derive(Debug)]
pub struct MetricsContext {
    threads: usize,
    graph: CsrGraph,
    /// Source permutation scratch for path-length sampling.
    sources: Vec<u32>,
    /// One BFS scratch per worker thread, reused across samples.
    scratch: Vec<BfsScratch>,
    /// Per-chunk `(Σ hops, pairs)` partials for the parallel merge.
    partials: Vec<(u64, u64)>,
}

impl MetricsContext {
    /// Creates a context that runs multi-source BFS on `threads` worker threads
    /// (clamped to at least one). `1` keeps everything on the calling thread.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        MetricsContext {
            threads,
            graph: CsrGraph::new(),
            sources: Vec::new(),
            scratch: vec![BfsScratch::default(); threads],
            partials: vec![(0, 0); threads],
        }
    }

    /// The number of worker threads multi-source BFS fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// (Re)builds the shared CSR graph for `snapshot`, reusing all internal buffers.
    /// Call once per sample, then evaluate any subset of the metrics.
    pub fn build(&mut self, snapshot: &OverlaySnapshot) {
        self.graph.rebuild(snapshot);
    }

    /// The CSR graph of the current sample.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Average shortest-path length (in hops) between reachable node pairs, sampled from
    /// `sources` BFS sources (`usize::MAX` for the exact all-pairs value). Semantics and
    /// results are exactly those of [`average_path_length`](crate::paths::average_path_length),
    /// including the RNG draw sequence used to pick the sources.
    pub fn average_path_length(&mut self, sources: usize, rng: &mut SmallRng) -> Option<f64> {
        let n = self.graph.node_count();
        let mut drawn = std::mem::take(&mut self.sources);
        draw_path_sources(n, sources, rng, &mut drawn);
        self.sources = drawn;
        if n < 2 {
            return None;
        }
        let (hops, pairs) = self.multi_source_sums();
        if pairs == 0 {
            None
        } else {
            Some(hops as f64 / pairs as f64)
        }
    }

    /// Average shortest-path length over pre-drawn BFS source ranks, as produced by
    /// [`draw_path_sources`] for this graph's vertex count. Bit-identical to
    /// [`average_path_length`](Self::average_path_length) with the same RNG state — the
    /// split exists so a driver thread can consume the RNG draws in sample order while
    /// the BFS sweep itself runs later on a metrics worker.
    pub fn average_path_length_with_sources(&mut self, sources: &[u32]) -> Option<f64> {
        if self.graph.node_count() < 2 || sources.is_empty() {
            return None;
        }
        self.sources.clear();
        self.sources.extend_from_slice(sources);
        let (hops, pairs) = self.multi_source_sums();
        if pairs == 0 {
            None
        } else {
            Some(hops as f64 / pairs as f64)
        }
    }

    /// Runs one BFS per entry of `self.sources`, fanned out over the worker threads, and
    /// returns the exact merged `(Σ hops, pairs)` totals.
    fn multi_source_sums(&mut self) -> (u64, u64) {
        let threads = self.threads.min(self.sources.len()).max(1);
        let graph = &self.graph;
        if threads == 1 {
            let scratch = &mut self.scratch[0];
            let mut totals = (0u64, 0u64);
            for &source in &self.sources {
                let (hops, pairs) = scratch.sweep_sums(graph, source);
                totals.0 += hops;
                totals.1 += pairs;
            }
            return totals;
        }
        let chunk_len = self.sources.len().div_ceil(threads);
        self.partials.iter_mut().for_each(|p| *p = (0, 0));
        std::thread::scope(|scope| {
            for ((chunk, scratch), partial) in self
                .sources
                .chunks(chunk_len)
                .zip(self.scratch.iter_mut())
                .zip(self.partials.iter_mut())
            {
                scope.spawn(move || {
                    for &source in chunk {
                        let (hops, pairs) = scratch.sweep_sums(graph, source);
                        partial.0 += hops;
                        partial.1 += pairs;
                    }
                });
            }
        });
        self.partials
            .iter()
            .fold((0, 0), |acc, p| (acc.0 + p.0, acc.1 + p.1))
    }

    /// Average local clustering coefficient over all observed nodes, computed by
    /// merge-intersecting the sorted adjacency rows. Results are bit-identical to
    /// [`average_clustering_coefficient`](crate::clustering::average_clustering_coefficient)'s
    /// reference semantics (same per-node terms, same accumulation order).
    pub fn average_clustering_coefficient(&self) -> f64 {
        let n = self.graph.node_count();
        if n == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for u in 0..n as u32 {
            let row = self.graph.row(u);
            let k = row.len();
            if k < 2 {
                continue;
            }
            let mut links = 0usize;
            for (i, &v) in row.iter().enumerate() {
                // Count neighbour pairs (v, w) with w after v in u's row that are
                // themselves adjacent: |row(u)[i+1..] ∩ row(v)|.
                links += sorted_intersection_count(&row[i + 1..], self.graph.row(v));
            }
            total += 2.0 * links as f64 / (k as f64 * (k as f64 - 1.0));
        }
        total / n as f64
    }

    /// Fraction of observed nodes inside the largest connected component (0.0 for an
    /// empty snapshot), exactly as
    /// [`largest_component_fraction`](crate::components::largest_component_fraction).
    pub fn largest_component_fraction(&mut self) -> f64 {
        let n = self.graph.node_count();
        if n == 0 {
            return 0.0;
        }
        let graph = &self.graph;
        let scratch = &mut self.scratch[0];
        let epoch = scratch.begin(n);
        let mut largest = 0usize;
        for start in 0..n as u32 {
            if scratch.mark[start as usize] == epoch {
                continue;
            }
            // Flat frontier sweep counting the component around `start`.
            scratch.mark[start as usize] = epoch;
            scratch.frontier.clear();
            scratch.frontier.push(start);
            let mut size = 1usize;
            while !scratch.frontier.is_empty() {
                scratch.next.clear();
                for &u in &scratch.frontier {
                    for &v in graph.row(u) {
                        if scratch.mark[v as usize] != epoch {
                            scratch.mark[v as usize] = epoch;
                            scratch.next.push(v);
                        }
                    }
                }
                size += scratch.next.len();
                std::mem::swap(&mut scratch.frontier, &mut scratch.next);
            }
            largest = largest.max(size);
        }
        largest as f64 / n as f64
    }

    /// Node ids of the current sample's vertices, ascending.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.graph.nodes()
    }
}

/// Draws the BFS source ranks for a path-length sample over `n` vertices, exactly as
/// [`MetricsContext::average_path_length`] does internally: for `n < 2` no RNG draw is
/// consumed and `out` is left empty (the metric is undefined); otherwise ranks `0..n`
/// are shuffled and truncated to `sources.max(1).min(n)` entries.
///
/// Shuffling ranks consumes the same draws — and selects the same positions — as the
/// reference implementation's shuffle of the sorted node-id list, because rank order
/// equals ascending id order.
pub fn draw_path_sources(n: usize, sources: usize, rng: &mut SmallRng, out: &mut Vec<u32>) {
    out.clear();
    if n < 2 {
        return;
    }
    out.extend(0..n as u32);
    out.shuffle(rng);
    out.truncate(sources.max(1).min(n));
}

/// Number of elements common to two ascending, duplicate-free slices (two-pointer merge).
fn sorted_intersection_count(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::NodeObservation;
    use croupier_simulator::NatClass;
    use rand::SeedableRng;

    fn snapshot(nodes: &[u64], edges: &[(u64, u64)]) -> OverlaySnapshot {
        OverlaySnapshot::from_parts(
            nodes
                .iter()
                .map(|id| NodeObservation {
                    id: NodeId::new(*id),
                    class: NatClass::Public,
                    ratio_estimate: None,
                    rounds_executed: 5,
                })
                .collect(),
            edges
                .iter()
                .map(|(a, b)| (NodeId::new(*a), NodeId::new(*b)))
                .collect(),
        )
    }

    #[test]
    fn intersection_count_merges_sorted_slices() {
        assert_eq!(sorted_intersection_count(&[1, 3, 5, 7], &[2, 3, 4, 7]), 2);
        assert_eq!(sorted_intersection_count(&[], &[1, 2]), 0);
        assert_eq!(sorted_intersection_count(&[9], &[9]), 1);
    }

    #[test]
    fn one_context_serves_all_metrics_from_one_build() {
        // Triangle 1-2-3 plus pendant 4 attached to 1, plus isolated 5.
        let s = snapshot(&[1, 2, 3, 4, 5], &[(1, 2), (2, 3), (1, 3), (1, 4)]);
        let mut ctx = MetricsContext::new(2);
        ctx.build(&s);
        let mut rng = SmallRng::seed_from_u64(3);
        let apl = ctx.average_path_length(usize::MAX, &mut rng).unwrap();
        // Reachable pairs within {1,2,3,4}: twelve ordered pairs, Σ hops = 16.
        assert!((apl - 16.0 / 12.0).abs() < 1e-9);
        let expected_cc = (1.0 / 3.0 + 1.0 + 1.0 + 0.0 + 0.0) / 5.0;
        assert!((ctx.average_clustering_coefficient() - expected_cc).abs() < 1e-9);
        assert!((ctx.largest_component_fraction() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn rebuilds_track_shrinking_and_growing_samples() {
        let mut ctx = MetricsContext::new(1);
        ctx.build(&snapshot(&[0, 1, 2, 3], &[(0, 1), (1, 2), (2, 3)]));
        assert!((ctx.largest_component_fraction() - 1.0).abs() < 1e-9);
        ctx.build(&snapshot(&[0, 1, 2], &[(0, 1)]));
        assert!((ctx.largest_component_fraction() - 2.0 / 3.0).abs() < 1e-9);
        ctx.build(&snapshot(&[0, 1, 2, 3, 4], &[]));
        assert!((ctx.largest_component_fraction() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_and_degenerate_snapshots() {
        let mut ctx = MetricsContext::new(4);
        ctx.build(&OverlaySnapshot::default());
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(ctx.average_path_length(5, &mut rng).is_none());
        assert_eq!(ctx.average_clustering_coefficient(), 0.0);
        assert_eq!(ctx.largest_component_fraction(), 0.0);
        ctx.build(&snapshot(&[7], &[]));
        assert!(ctx.average_path_length(5, &mut rng).is_none());
        assert!((ctx.largest_component_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_and_sequential_path_length_agree_bitwise() {
        // Two rings of 40 and a few chords, enough sources to span all chunks.
        let nodes: Vec<u64> = (0..80).collect();
        let mut edges: Vec<(u64, u64)> = (0..40).map(|i| (i, (i + 1) % 40)).collect();
        edges.extend((40..80).map(|i| (i, 40 + (i + 1) % 40)));
        edges.push((0, 40));
        let s = snapshot(&nodes, &edges);
        let run = |threads: usize| {
            let mut ctx = MetricsContext::new(threads);
            ctx.build(&s);
            let mut rng = SmallRng::seed_from_u64(42);
            ctx.average_path_length(usize::MAX, &mut rng).unwrap()
        };
        let sequential = run(1);
        assert_eq!(sequential.to_bits(), run(2).to_bits());
        assert_eq!(sequential.to_bits(), run(4).to_bits());
        assert_eq!(sequential.to_bits(), run(7).to_bits());
    }

    #[test]
    fn predrawn_sources_match_the_inline_draw_bitwise() {
        use rand::Rng;
        let s = snapshot(
            &[1, 2, 3, 4, 5, 6],
            &[(1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 1), (1, 4)],
        );
        let mut ctx = MetricsContext::new(2);
        ctx.build(&s);
        let mut inline_rng = SmallRng::seed_from_u64(42);
        let inline = ctx.average_path_length(3, &mut inline_rng);
        let mut split_rng = SmallRng::seed_from_u64(42);
        let mut sources = Vec::new();
        draw_path_sources(s.node_count(), 3, &mut split_rng, &mut sources);
        let split = ctx.average_path_length_with_sources(&sources);
        assert_eq!(inline.map(f64::to_bits), split.map(f64::to_bits));
        assert_eq!(
            inline_rng.gen::<u64>(),
            split_rng.gen::<u64>(),
            "both paths must consume the same RNG draws"
        );
        // Degenerate graphs consume no draws on either path.
        ctx.build(&snapshot(&[7], &[]));
        let before = inline_rng.clone().gen::<u64>();
        assert!(ctx.average_path_length(3, &mut inline_rng).is_none());
        assert_eq!(inline_rng.gen::<u64>(), before, "no draw for n < 2");
        draw_path_sources(1, 3, &mut split_rng, &mut sources);
        assert!(sources.is_empty());
        assert!(ctx.average_path_length_with_sources(&sources).is_none());
    }

    #[test]
    fn epoch_buffer_survives_many_builds() {
        let s = snapshot(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let mut ctx = MetricsContext::new(1);
        for _ in 0..100 {
            ctx.build(&s);
            assert!((ctx.largest_component_fraction() - 1.0).abs() < 1e-9);
        }
    }
}
