//! Incremental largest-component tracking for high-frequency sampling loops.
//!
//! The CSR pipeline ([`MetricsContext`](crate::context::MetricsContext)) rebuilds the
//! whole undirected graph and sweeps it with BFS on every sample — O(V + E) per sample
//! regardless of how little the overlay changed. Between consecutive samples of a
//! steady-state run, however, only a few percent of view entries turn over, so the work
//! that actually needs doing is proportional to the **edge delta**, not the graph.
//!
//! [`IncrementalComponents`] maintains a union-find forest over the observed nodes and
//! consumes the capture-to-capture diff recorded by
//! [`OverlaySnapshot::enable_delta_tracking`]:
//!
//! * **Added edges** are pure unions — O(α) each, idempotent, order-independent.
//! * **Removed edges** that still exist in the other direction, or that were never part
//!   of the union forest (cycle edges), cannot change connectivity and are skipped.
//! * When *forest* edges disappear the structure attempts an O(V + Δ) **repair**: it
//!   re-unions the surviving forest edges plus the added edges, and accepts the result
//!   when that subgraph already spans every observed node in one component — a
//!   certificate that the full graph (a superset) does too. Gossip overlays are
//!   connected in steady state, so the repair almost always certifies even though a
//!   shuffling overlay turns over a large fraction of its edges between samples.
//! * Only when the certificate fails — or membership changes, which invalidates the
//!   rank space — does the structure fall back to a full rebuild: a single union pass
//!   over the snapshot's directed edge list (no sort, no scatter, no BFS).
//!
//! # Equivalence with the CSR reference
//!
//! The result of [`largest_component_fraction`](IncrementalComponents::largest_component_fraction)
//! is `largest / n` where both operands are exact integers: the size of the largest
//! connected component over the same vertex set (observed nodes, isolated nodes
//! included) and edge set (self-loops and edges touching unobserved nodes dropped,
//! direction and duplicates collapsed) that [`CsrGraph`](crate::graph::CsrGraph) builds.
//! Union-find and BFS compute the same partition on the same graph, so the two integer
//! operands — and therefore the one floating-point division — are **bit-identical** to
//! the CSR + BFS path, which `tests/property_tests.rs` pins down under randomized churn.

use croupier_simulator::{FastHashSet, NodeId};

use crate::snapshot::OverlaySnapshot;

/// Marker for "id not observed in this sample" in the stamped lookup table.
const NO_RANK: u32 = u32::MAX;

/// Same dense-id heuristic as [`CsrGraph`](crate::graph::CsrGraph): engine captures
/// qualify for the O(1) id → rank table, hand-built snapshots with huge ids binary-search.
const DENSE_RANGE_FACTOR: u64 = 32;

/// A union-find connectivity structure that updates from snapshot edge deltas instead of
/// rebuilding per sample. See the module documentation for the algorithm and the
/// equivalence argument.
///
/// The structure tracks **one** snapshot instance: feed it the same
/// delta-tracking-enabled [`OverlaySnapshot`] on every sample (the experiment driver's
/// pattern). Handing it unrelated snapshots is safe — any capture without a valid delta,
/// or with membership changes, triggers a full rebuild — but forfeits the fast path.
///
/// # Examples
///
/// ```
/// use croupier_metrics::{IncrementalComponents, NodeObservation, OverlaySnapshot};
/// use croupier_simulator::{NatClass, NodeId};
///
/// let snapshot = OverlaySnapshot::from_parts(
///     (0..3)
///         .map(|i| NodeObservation {
///             id: NodeId::new(i),
///             class: NatClass::Public,
///             ratio_estimate: None,
///             rounds_executed: 5,
///         })
///         .collect(),
///     vec![(NodeId::new(0), NodeId::new(1))],
/// );
/// let mut components = IncrementalComponents::new();
/// components.update(&snapshot);
/// assert!((components.largest_component_fraction() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct IncrementalComponents {
    /// Rank → node id, ascending (the same rank space as [`CsrGraph`]).
    ids: Vec<NodeId>,
    /// Union-find parent per rank.
    parent: Vec<u32>,
    /// Component size at each root rank.
    size: Vec<u32>,
    /// Size of the largest component (monotone under unions; recomputed on rebuild).
    largest: u32,
    /// Canonical `(min rank, max rank)` pairs (packed) of the edges whose union call
    /// actually merged two components. Removing any *other* edge cannot split a
    /// component, so only forest-edge removals force a rebuild.
    forest: FastHashSet<u64>,
    /// Id-indexed rank table, valid where `lookup_stamp[id] == stamp` (dense path only).
    lookup: Vec<u32>,
    lookup_stamp: Vec<u32>,
    stamp: u32,
    dense_lookup: bool,
    /// Whether the union-find state describes the previous capture of the tracked
    /// snapshot (fast-path precondition).
    synced: bool,
    /// Number of full rebuilds performed (diagnostics; sublinearity tests).
    rebuilds: u64,
    /// Number of delta-only updates performed (diagnostics; sublinearity tests).
    fast_updates: u64,
    /// Number of forest-repair updates performed (diagnostics; sublinearity tests).
    repairs: u64,
    /// Scratch: surviving forest edges during a repair.
    forest_scratch: Vec<u64>,
    /// Scratch: packed rank pairs of forest edges removed by the current delta.
    removed_scratch: FastHashSet<u64>,
}

impl IncrementalComponents {
    /// Creates an empty structure; the first [`update`](Self::update) performs a full
    /// rebuild.
    pub fn new() -> Self {
        IncrementalComponents::default()
    }

    /// Brings the structure in sync with `snapshot`, by delta replay when the snapshot
    /// carries a usable diff and by full rebuild otherwise.
    pub fn update(&mut self, snapshot: &OverlaySnapshot) {
        let fast = self.synced
            && match snapshot.edge_delta() {
                Some(delta) => !delta.membership_changed && self.apply_delta(snapshot),
                None => false,
            };
        if !fast {
            self.rebuild(snapshot);
            self.rebuilds += 1;
        }
        self.synced = true;
    }

    /// Fraction of observed nodes inside the largest connected component (0.0 for an
    /// empty snapshot) — bit-identical to
    /// [`MetricsContext::largest_component_fraction`](crate::context::MetricsContext::largest_component_fraction)
    /// on the same snapshot.
    pub fn largest_component_fraction(&self) -> f64 {
        if self.ids.is_empty() {
            return 0.0;
        }
        self.largest as f64 / self.ids.len() as f64
    }

    /// Number of connected components among the observed nodes.
    pub fn component_count(&self) -> usize {
        (0..self.parent.len() as u32)
            .filter(|&v| self.parent[v as usize] == v)
            .count()
    }

    /// Full rebuilds performed so far (the first `update` always counts one).
    pub fn rebuild_count(&self) -> u64 {
        self.rebuilds
    }

    /// Delta-only updates performed so far.
    pub fn fast_update_count(&self) -> u64 {
        self.fast_updates
    }

    /// Forest-repair updates performed so far (removed forest edges, but the surviving
    /// forest plus the added edges still spanned everything in one component).
    pub fn repair_count(&self) -> u64 {
        self.repairs
    }

    /// Updates avoiding the full edge scan: delta-only fast updates plus certified
    /// repairs, both with cost independent of the total edge count.
    pub fn sublinear_update_count(&self) -> u64 {
        self.fast_updates + self.repairs
    }

    /// Attempts the delta-only and repair paths. Returns `false` (leaving the state
    /// stale but rank-consistent, since membership is unchanged) when removed forest
    /// edges broke the spanning certificate, in which case the caller rebuilds.
    fn apply_delta(&mut self, snapshot: &OverlaySnapshot) -> bool {
        let delta = snapshot.edge_delta().expect("caller checked the delta");
        // Removals first: decide which undirected edges actually left the graph *and*
        // carried the forest. A directed removal `a → b` leaves the undirected edge
        // intact while `b → a` is still present in the new capture, and removing a
        // cycle edge cannot change the partition at all.
        let mut removed_forest = std::mem::take(&mut self.removed_scratch);
        removed_forest.clear();
        for &(a, b) in delta.removed {
            let (Some(ra), Some(rb)) = (self.rank_of(a), self.rank_of(b)) else {
                // Endpoint not observed: the edge was dropped from the old graph too
                // (membership is unchanged), so nothing can have existed to remove.
                continue;
            };
            if ra == rb {
                continue; // self-loops never enter the graph
            }
            if snapshot.has_directed_edge(b, a) || snapshot.has_directed_edge(a, b) {
                continue; // the undirected edge survives via the other direction
            }
            let key = pack_pair(ra, rb);
            if self.forest.contains(&key) {
                removed_forest.insert(key);
            }
        }
        let ok = if removed_forest.is_empty() {
            for &(a, b) in delta.added {
                let (Some(ra), Some(rb)) = (self.rank_of(a), self.rank_of(b)) else {
                    continue;
                };
                if ra != rb {
                    self.union(ra, rb);
                }
            }
            self.fast_updates += 1;
            true
        } else if self.repair(snapshot, &removed_forest) {
            self.repairs += 1;
            true
        } else {
            false
        };
        self.removed_scratch = removed_forest;
        ok
    }

    /// Re-unions the surviving forest edges plus the delta's added edges — O(V + Δ),
    /// independent of the total edge count — and accepts the result iff that subgraph
    /// spans all observed nodes in one component. The subgraph only uses edges present
    /// in the new capture, and the full graph is a superset of it, so a spanning
    /// subgraph proves the full graph's largest component is also everything: the
    /// answer `n / n` is exact and bit-identical to the CSR + BFS sweep.
    fn repair(&mut self, snapshot: &OverlaySnapshot, removed_forest: &FastHashSet<u64>) -> bool {
        let delta = snapshot.edge_delta().expect("caller checked the delta");
        let mut survivors = std::mem::take(&mut self.forest_scratch);
        survivors.clear();
        survivors.extend(
            self.forest
                .iter()
                .copied()
                .filter(|key| !removed_forest.contains(key)),
        );
        self.reset_partition();
        for &key in &survivors {
            self.union((key >> 32) as u32, key as u32);
        }
        self.forest_scratch = survivors;
        for &(a, b) in delta.added {
            let (Some(ra), Some(rb)) = (self.rank_of(a), self.rank_of(b)) else {
                continue;
            };
            if ra != rb {
                self.union(ra, rb);
            }
        }
        !self.ids.is_empty() && self.largest as usize == self.ids.len()
    }

    /// Rebuilds the union-find state from scratch: one pass over the snapshot's directed
    /// edges, unioning every resolvable pair. No adjacency is materialised and no
    /// traversal runs, so a rebuild is considerably cheaper than a CSR build + BFS even
    /// when the fast path never fires.
    fn rebuild(&mut self, snapshot: &OverlaySnapshot) {
        self.ids.clear();
        self.ids.extend(snapshot.nodes.iter().map(|n| n.id));
        if !self.ids.windows(2).all(|w| w[0] < w[1]) {
            self.ids.sort_unstable();
            self.ids.dedup();
        }
        self.restamp_lookup(snapshot);
        self.reset_partition();
        for &(a, b) in &snapshot.edges {
            if a == b {
                continue;
            }
            if let (Some(ra), Some(rb)) = (self.rank_of(a), self.rank_of(b)) {
                self.union(ra, rb);
            }
        }
    }

    /// Resets the partition to `n` singletons, emptying the forest.
    fn reset_partition(&mut self) {
        let n = self.ids.len();
        self.parent.clear();
        self.parent.extend(0..n as u32);
        self.size.clear();
        self.size.resize(n, 1);
        self.forest.clear();
        self.largest = if n == 0 { 0 } else { 1 };
    }

    /// Unions the components of two distinct ranks (by size, with path compression),
    /// recording the edge in the forest set when it merged two components.
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.largest = self.largest.max(self.size[big as usize]);
        self.forest.insert(pack_pair(a, b));
    }

    /// Root of `v`'s component, halving the path as it walks.
    fn find(&mut self, mut v: u32) -> u32 {
        while self.parent[v as usize] != v {
            let grandparent = self.parent[self.parent[v as usize] as usize];
            self.parent[v as usize] = grandparent;
            v = grandparent;
        }
        v
    }

    /// Stamps a fresh id → rank epoch, mirroring [`CsrGraph`]'s dense/sparse split.
    fn restamp_lookup(&mut self, snapshot: &OverlaySnapshot) {
        let n = self.ids.len();
        let bound = snapshot.id_upper_bound().max(
            self.ids
                .last()
                .map_or(0, |id| id.as_u64().saturating_add(1)),
        );
        self.dense_lookup = bound <= (n as u64).saturating_mul(DENSE_RANGE_FACTOR) + 1024;
        if !self.dense_lookup {
            return;
        }
        let bound = bound as usize;
        if self.lookup.len() < bound {
            self.lookup.resize(bound, NO_RANK);
            self.lookup_stamp.resize(bound, 0);
        }
        self.stamp = match self.stamp.checked_add(1) {
            Some(next) => next,
            None => {
                self.lookup_stamp.fill(0);
                1
            }
        };
        for (rank, id) in self.ids.iter().enumerate() {
            let slot = id.as_u64() as usize;
            self.lookup[slot] = rank as u32;
            self.lookup_stamp[slot] = self.stamp;
        }
    }

    /// The dense rank of `id` in the current sample, if observed.
    #[inline]
    fn rank_of(&self, id: NodeId) -> Option<u32> {
        if self.dense_lookup {
            let slot = id.as_u64() as usize;
            if slot < self.lookup.len() && self.lookup_stamp[slot] == self.stamp {
                Some(self.lookup[slot])
            } else {
                None
            }
        } else {
            self.ids.binary_search(&id).ok().map(|rank| rank as u32)
        }
    }
}

/// Packs a rank pair into an orientation-free `u64` set key.
#[inline]
fn pack_pair(a: u32, b: u32) -> u64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    ((lo as u64) << 32) | hi as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::largest_component_fraction;
    use crate::snapshot::NodeObservation;
    use croupier_simulator::NatClass;

    fn snapshot(nodes: &[u64], edges: &[(u64, u64)]) -> OverlaySnapshot {
        OverlaySnapshot::from_parts(
            nodes
                .iter()
                .map(|id| NodeObservation {
                    id: NodeId::new(*id),
                    class: NatClass::Public,
                    ratio_estimate: None,
                    rounds_executed: 5,
                })
                .collect(),
            edges
                .iter()
                .map(|(a, b)| (NodeId::new(*a), NodeId::new(*b)))
                .collect(),
        )
    }

    #[test]
    fn matches_the_csr_pipeline_on_fresh_snapshots() {
        for (nodes, edges) in [
            (vec![1u64, 2, 3], vec![(1u64, 2u64), (2, 3)]),
            (vec![1, 2, 3, 4, 5], vec![(1, 2), (2, 3)]),
            (vec![1, 2, 3, 4], vec![]),
            (vec![], vec![]),
            (
                vec![1, 2, 3, 4, 5, 6, 7],
                vec![(1, 2), (2, 3), (4, 5), (5, 4), (6, 42), (3, 3)],
            ),
        ] {
            let s = snapshot(&nodes, &edges);
            let mut inc = IncrementalComponents::new();
            inc.update(&s);
            let expected = largest_component_fraction(&s);
            assert_eq!(
                inc.largest_component_fraction().to_bits(),
                expected.to_bits(),
                "nodes {nodes:?} edges {edges:?}"
            );
        }
    }

    #[test]
    fn every_update_without_delta_tracking_rebuilds() {
        let s = snapshot(&[1, 2, 3], &[(1, 2)]);
        let mut inc = IncrementalComponents::new();
        inc.update(&s);
        inc.update(&s);
        assert_eq!(inc.rebuild_count(), 2);
        assert_eq!(inc.fast_update_count(), 0);
    }

    #[test]
    fn component_count_partitions_the_nodes() {
        let mut inc = IncrementalComponents::new();
        inc.update(&snapshot(&[1, 2, 3, 4, 5], &[(1, 2), (3, 4)]));
        assert_eq!(inc.component_count(), 3);
        assert!((inc.largest_component_fraction() - 0.4).abs() < 1e-12);
    }
}
