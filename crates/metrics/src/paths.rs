//! Average shortest path length of the overlay (Fig. 6(b) of the paper).

use rand::rngs::SmallRng;

use crate::context::MetricsContext;
use crate::snapshot::OverlaySnapshot;

/// Average shortest-path length (in hops) between reachable node pairs.
///
/// The paper averages over all pairs; on systems of thousands of nodes an exact all-pairs
/// BFS is still affordable but wasteful inside a per-round measurement loop, so the
/// computation samples `sources` BFS sources chosen uniformly at random (pass
/// `usize::MAX` to use every node as a source and obtain the exact value). Unreachable
/// pairs are excluded, matching the paper's treatment (connectivity is measured separately
/// in Fig. 7(b)).
///
/// Returns `None` when the snapshot has fewer than two nodes or no reachable pair exists.
///
/// This convenience wrapper builds a fresh single-threaded [`MetricsContext`] per call;
/// sampling loops should keep one context alive and reuse it across samples (and across
/// the other graph metrics) instead — that is the allocation-free path.
pub fn average_path_length(
    snapshot: &OverlaySnapshot,
    sources: usize,
    rng: &mut SmallRng,
) -> Option<f64> {
    let mut context = MetricsContext::new(1);
    context.build(snapshot);
    context.average_path_length(sources, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::naive_average_path_length;
    use crate::snapshot::NodeObservation;
    use croupier_simulator::{NatClass, NodeId};
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    fn snapshot(nodes: &[u64], edges: &[(u64, u64)]) -> OverlaySnapshot {
        OverlaySnapshot::from_parts(
            nodes
                .iter()
                .map(|id| NodeObservation {
                    id: NodeId::new(*id),
                    class: NatClass::Public,
                    ratio_estimate: None,
                    rounds_executed: 5,
                })
                .collect(),
            edges
                .iter()
                .map(|(a, b)| (NodeId::new(*a), NodeId::new(*b)))
                .collect(),
        )
    }

    #[test]
    fn path_length_of_a_line_graph() {
        // Line 1-2-3-4: exact average shortest path = (sum over pairs) / pairs
        // pairs: (1,2)=1 (1,3)=2 (1,4)=3 (2,3)=1 (2,4)=2 (3,4)=1 → 10/6.
        let s = snapshot(&[1, 2, 3, 4], &[(1, 2), (2, 3), (3, 4)]);
        let apl = average_path_length(&s, usize::MAX, &mut rng()).unwrap();
        assert!((apl - 10.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn complete_graph_has_path_length_one() {
        let s = snapshot(&[1, 2, 3], &[(1, 2), (1, 3), (2, 3)]);
        let apl = average_path_length(&s, usize::MAX, &mut rng()).unwrap();
        assert!((apl - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_sources_approximates_the_exact_value() {
        // Ring of 40 nodes.
        let nodes: Vec<u64> = (0..40).collect();
        let edges: Vec<(u64, u64)> = (0..40).map(|i| (i, (i + 1) % 40)).collect();
        let s = snapshot(&nodes, &edges);
        let exact = average_path_length(&s, usize::MAX, &mut rng()).unwrap();
        let sampled = average_path_length(&s, 10, &mut rng()).unwrap();
        assert!(
            (exact - sampled).abs() < 0.5,
            "exact {exact} vs sampled {sampled}"
        );
    }

    #[test]
    fn matches_the_naive_reference_with_the_same_rng_stream() {
        // Same seed, same snapshot, sampled sources: the CSR path must consume the RNG
        // identically and produce the bit-identical result.
        let nodes: Vec<u64> = (0..60).collect();
        let edges: Vec<(u64, u64)> = (0..60)
            .flat_map(|i| [(i, (i + 1) % 60), (i, (i + 7) % 60)])
            .collect();
        let s = snapshot(&nodes, &edges);
        let fast = average_path_length(&s, 12, &mut rng()).unwrap();
        let naive = naive_average_path_length(&s, 12, &mut rng()).unwrap();
        assert_eq!(fast.to_bits(), naive.to_bits());
    }

    #[test]
    fn degenerate_cases_return_none() {
        assert!(average_path_length(&OverlaySnapshot::default(), 5, &mut rng()).is_none());
        let single = snapshot(&[1], &[]);
        assert!(average_path_length(&single, 5, &mut rng()).is_none());
        let disconnected = snapshot(&[1, 2], &[]);
        assert!(average_path_length(&disconnected, usize::MAX, &mut rng()).is_none());
    }
}
