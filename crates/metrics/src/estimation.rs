//! Estimation-error metrics (equations 10–13 of the paper, Figures 1–5).
//!
//! Unlike the graph metrics, estimation errors need no overlay graph: one linear pass
//! over the snapshot's observations suffices, so [`estimation_errors`] allocates nothing
//! and sits on the per-sample path as-is (the runner evaluates it before building the
//! sample's [`MetricsContext`](crate::context::MetricsContext)).

use serde::{Deserialize, Serialize};

use crate::snapshot::OverlaySnapshot;

/// Estimation-error summary across all nodes that hold an estimate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EstimationErrors {
    /// Average absolute error |ω − Eₙ(ω)| over all nodes with an estimate
    /// (equations 12–13; the absolute value makes the metric meaningful on the paper's
    /// logarithmic axes).
    pub average: f64,
    /// Maximum absolute error over all nodes — the Kolmogorov–Smirnov-style bound of
    /// equations 10–11.
    pub maximum: f64,
    /// Number of nodes that held an estimate at snapshot time.
    pub nodes_with_estimate: usize,
    /// Number of observed nodes without any estimate yet.
    pub nodes_without_estimate: usize,
}

/// Computes the estimation errors of a snapshot against the true ratio `omega`.
///
/// Nodes without an estimate are counted separately rather than treated as maximally wrong,
/// mirroring the paper's exclusion of nodes that have not completed two rounds.
pub fn estimation_errors(snapshot: &OverlaySnapshot, omega: f64) -> EstimationErrors {
    let mut sum = 0.0;
    let mut max: f64 = 0.0;
    let mut with = 0usize;
    let mut without = 0usize;
    for node in &snapshot.nodes {
        match node.ratio_estimate {
            Some(estimate) if estimate.is_finite() => {
                let error = (omega - estimate).abs();
                sum += error;
                max = max.max(error);
                with += 1;
            }
            _ => without += 1,
        }
    }
    EstimationErrors {
        average: if with > 0 { sum / with as f64 } else { 0.0 },
        maximum: max,
        nodes_with_estimate: with,
        nodes_without_estimate: without,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::NodeObservation;
    use croupier_simulator::{NatClass, NodeId};

    fn obs(id: u64, estimate: Option<f64>) -> NodeObservation {
        NodeObservation {
            id: NodeId::new(id),
            class: NatClass::Private,
            ratio_estimate: estimate,
            rounds_executed: 5,
        }
    }

    #[test]
    fn average_and_maximum_are_computed_over_estimating_nodes() {
        let snapshot = OverlaySnapshot::from_parts(
            vec![obs(1, Some(0.25)), obs(2, Some(0.15)), obs(3, None)],
            vec![],
        );
        let errors = estimation_errors(&snapshot, 0.2);
        assert!((errors.average - 0.05).abs() < 1e-9);
        assert!((errors.maximum - 0.05).abs() < 1e-9);
        assert_eq!(errors.nodes_with_estimate, 2);
        assert_eq!(errors.nodes_without_estimate, 1);
    }

    #[test]
    fn asymmetric_errors_use_absolute_values() {
        let snapshot =
            OverlaySnapshot::from_parts(vec![obs(1, Some(0.1)), obs(2, Some(0.4))], vec![]);
        let errors = estimation_errors(&snapshot, 0.2);
        assert!((errors.average - 0.15).abs() < 1e-9);
        assert!((errors.maximum - 0.2).abs() < 1e-9);
    }

    #[test]
    fn perfect_estimates_have_zero_error() {
        let snapshot =
            OverlaySnapshot::from_parts(vec![obs(1, Some(0.2)), obs(2, Some(0.2))], vec![]);
        let errors = estimation_errors(&snapshot, 0.2);
        assert_eq!(errors.average, 0.0);
        assert_eq!(errors.maximum, 0.0);
    }

    #[test]
    fn non_finite_estimates_are_ignored() {
        let snapshot =
            OverlaySnapshot::from_parts(vec![obs(1, Some(f64::NAN)), obs(2, Some(0.3))], vec![]);
        let errors = estimation_errors(&snapshot, 0.2);
        assert_eq!(errors.nodes_with_estimate, 1);
        assert_eq!(errors.nodes_without_estimate, 1);
        assert!((errors.maximum - 0.1).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_reports_zeroes() {
        let errors = estimation_errors(&OverlaySnapshot::default(), 0.2);
        assert_eq!(errors, EstimationErrors::default());
    }
}
