//! Undirected graph utilities shared by the overlay metrics.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use croupier_simulator::NodeId;

use crate::snapshot::OverlaySnapshot;

/// An undirected graph over node identifiers, built from the "knows-about" edges of an
/// [`OverlaySnapshot`].
///
/// The paper's connectivity, path-length and clustering metrics treat view edges as
/// undirected communication links (once a node knows another it can initiate an exchange,
/// and the exchange flows both ways), which is the standard convention in the peer-sampling
/// literature.
#[derive(Clone, Debug, Default)]
pub struct UndirectedGraph {
    // Ordered maps keep every traversal (and therefore every floating-point accumulation
    // downstream) deterministic for a fixed seed.
    adjacency: BTreeMap<NodeId, BTreeSet<NodeId>>,
}

impl UndirectedGraph {
    /// Builds the graph from a snapshot, ignoring self-loops and edges to unobserved nodes.
    pub fn from_snapshot(snapshot: &OverlaySnapshot) -> Self {
        let live: HashSet<NodeId> = snapshot.nodes.iter().map(|n| n.id).collect();
        let mut graph = UndirectedGraph::default();
        for node in &live {
            graph.adjacency.entry(*node).or_default();
        }
        for (a, b) in &snapshot.edges {
            if a == b || !live.contains(a) || !live.contains(b) {
                continue;
            }
            graph.adjacency.entry(*a).or_default().insert(*b);
            graph.adjacency.entry(*b).or_default().insert(*a);
        }
        graph
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.values().map(|n| n.len()).sum::<usize>() / 2
    }

    /// The neighbours of `node`.
    pub fn neighbours(&self, node: NodeId) -> Option<&BTreeSet<NodeId>> {
        self.adjacency.get(&node)
    }

    /// All vertices.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency.keys().copied()
    }

    /// Breadth-first distances (in hops) from `source` to every reachable vertex.
    pub fn bfs_distances(&self, source: NodeId) -> HashMap<NodeId, u32> {
        let mut distances = HashMap::new();
        if !self.adjacency.contains_key(&source) {
            return distances;
        }
        distances.insert(source, 0);
        let mut queue = VecDeque::from([source]);
        while let Some(current) = queue.pop_front() {
            let d = distances[&current];
            if let Some(neighbours) = self.adjacency.get(&current) {
                for next in neighbours {
                    if !distances.contains_key(next) {
                        distances.insert(*next, d + 1);
                        queue.push_back(*next);
                    }
                }
            }
        }
        distances
    }

    /// Sizes of all connected components, in descending order.
    pub fn component_sizes(&self) -> Vec<usize> {
        let mut visited: HashSet<NodeId> = HashSet::new();
        let mut sizes = Vec::new();
        for start in self.adjacency.keys() {
            if visited.contains(start) {
                continue;
            }
            let mut size = 0;
            let mut queue = VecDeque::from([*start]);
            visited.insert(*start);
            while let Some(current) = queue.pop_front() {
                size += 1;
                if let Some(neighbours) = self.adjacency.get(&current) {
                    for next in neighbours {
                        if visited.insert(*next) {
                            queue.push_back(*next);
                        }
                    }
                }
            }
            sizes.push(size);
        }
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::NodeObservation;
    use croupier_simulator::NatClass;

    fn snapshot(nodes: &[u64], edges: &[(u64, u64)]) -> OverlaySnapshot {
        OverlaySnapshot::from_parts(
            nodes
                .iter()
                .map(|id| NodeObservation {
                    id: NodeId::new(*id),
                    class: NatClass::Public,
                    ratio_estimate: None,
                    rounds_executed: 10,
                })
                .collect(),
            edges
                .iter()
                .map(|(a, b)| (NodeId::new(*a), NodeId::new(*b)))
                .collect(),
        )
    }

    #[test]
    fn builds_undirected_adjacency_without_self_loops() {
        let g = UndirectedGraph::from_snapshot(&snapshot(
            &[1, 2, 3],
            &[(1, 2), (2, 1), (2, 2), (2, 3), (1, 99)],
        ));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g
            .neighbours(NodeId::new(2))
            .unwrap()
            .contains(&NodeId::new(1)));
        assert!(g
            .neighbours(NodeId::new(1))
            .unwrap()
            .contains(&NodeId::new(2)));
        assert!(!g
            .neighbours(NodeId::new(2))
            .unwrap()
            .contains(&NodeId::new(2)));
    }

    #[test]
    fn bfs_computes_hop_distances() {
        let g =
            UndirectedGraph::from_snapshot(&snapshot(&[1, 2, 3, 4, 5], &[(1, 2), (2, 3), (3, 4)]));
        let d = g.bfs_distances(NodeId::new(1));
        assert_eq!(d[&NodeId::new(1)], 0);
        assert_eq!(d[&NodeId::new(2)], 1);
        assert_eq!(d[&NodeId::new(3)], 2);
        assert_eq!(d[&NodeId::new(4)], 3);
        assert!(
            !d.contains_key(&NodeId::new(5)),
            "disconnected node is unreachable"
        );
        assert!(g.bfs_distances(NodeId::new(42)).is_empty());
    }

    #[test]
    fn component_sizes_are_sorted_descending() {
        let g = UndirectedGraph::from_snapshot(&snapshot(
            &[1, 2, 3, 4, 5, 6],
            &[(1, 2), (2, 3), (4, 5)],
        ));
        assert_eq!(g.component_sizes(), vec![3, 2, 1]);
    }

    #[test]
    fn empty_snapshot_gives_empty_graph() {
        let g = UndirectedGraph::from_snapshot(&OverlaySnapshot::default());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.component_sizes().is_empty());
    }
}
