//! Compressed-sparse-row (CSR) representation of the undirected overlay graph.
//!
//! Every metrics sample used to rebuild a `BTreeMap<NodeId, BTreeSet<NodeId>>` adjacency
//! **three times** (once per metric); at 100k nodes the tree insertions and pointer chasing
//! dominated the whole analysis. [`CsrGraph`] replaces that with the classic flat layout —
//! one `offsets` array and one `neighbours` array of dense `u32` node indices — built in
//! two linear passes over the snapshot's edge list and shared by all metrics of the sample.
//!
//! **Dense indexing.** Vertices are ranks in the ascending order of observed node ids, so
//! rank order equals the old `BTreeMap` iteration order and every float accumulation
//! downstream reproduces the reference implementation bit for bit. `NodeId → rank`
//! resolution reuses the engines' dense-id invariant (ids double as `NodeArena` slot
//! indices, see [`SimulationEngine::node_id_upper_bound`]): a stamped id-indexed table
//! turns each edge-endpoint lookup into one array load — no hashing, no tree descent.
//! All build scratch (the stamp table, row cursors) lives in the `CsrGraph` value and is
//! reused across samples, so steady-state rebuilds allocate nothing.
//!
//! [`SimulationEngine::node_id_upper_bound`]:
//!     croupier_simulator::SimulationEngine::node_id_upper_bound

use croupier_simulator::NodeId;

use crate::snapshot::OverlaySnapshot;

/// Marker for "id not observed in this sample" in the stamped lookup table.
const NO_RANK: u32 = u32::MAX;

/// An undirected overlay graph in compressed-sparse-row form, with reusable build buffers.
///
/// Semantics match [`UndirectedGraph`](crate::reference::UndirectedGraph) exactly: one
/// vertex per observed node (isolated nodes included), self-loops and edges touching
/// unobserved nodes dropped, duplicate directed edges collapsed into one undirected edge.
/// Each row of `neighbours` is sorted ascending and duplicate-free, which the clustering
/// metric exploits for merge-style intersection counting.
///
/// # Examples
///
/// ```
/// use croupier_metrics::{CsrGraph, OverlaySnapshot};
///
/// let mut graph = CsrGraph::new();
/// graph.rebuild(&OverlaySnapshot::default());
/// assert_eq!(graph.node_count(), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CsrGraph {
    /// Rank → node id, ascending.
    ids: Vec<NodeId>,
    /// Row start offsets into `neighbours`; `offsets.len() == node_count() + 1`.
    offsets: Vec<u32>,
    /// Concatenated adjacency rows of dense ranks; sorted and deduped per row.
    neighbours: Vec<u32>,
    /// Id-indexed rank table, valid where `lookup_stamp[id] == stamp`. Used only when the
    /// id space is dense (`dense_lookup`); sparse snapshots binary-search `ids` instead.
    lookup: Vec<u32>,
    lookup_stamp: Vec<u32>,
    stamp: u32,
    /// Whether the current sample's ids were dense enough for the O(1) lookup table.
    dense_lookup: bool,
    /// Per-row write cursors used while filling `neighbours`.
    cursor: Vec<u32>,
}

/// A sample is treated as dense when the id range is at most this many times the node
/// count (plus slack for tiny snapshots). Engine captures always qualify — ids are arena
/// slots assigned from zero, and even heavy churn replaces the population a handful of
/// times per run — while hand-built snapshots with huge ids fall back to binary search
/// rather than allocating an id-range-sized table.
const DENSE_RANGE_FACTOR: u64 = 32;

impl CsrGraph {
    /// Creates an empty graph with no buffers allocated yet.
    pub fn new() -> Self {
        CsrGraph::default()
    }

    /// Builds the graph for `snapshot`, a convenience for one-off use. Per-sample loops
    /// should keep one `CsrGraph` (or a [`MetricsContext`](crate::context::MetricsContext))
    /// alive and call [`rebuild`](CsrGraph::rebuild) so buffers are reused.
    pub fn from_snapshot(snapshot: &OverlaySnapshot) -> Self {
        let mut graph = CsrGraph::new();
        graph.rebuild(snapshot);
        graph
    }

    /// Rebuilds the graph from `snapshot`, reusing every internal buffer.
    pub fn rebuild(&mut self, snapshot: &OverlaySnapshot) {
        self.ids.clear();
        self.ids.extend(snapshot.nodes.iter().map(|n| n.id));
        // `capture` sorts observations by id; tolerate hand-built snapshots that do not.
        if !self.ids.windows(2).all(|w| w[0] < w[1]) {
            self.ids.sort_unstable();
            self.ids.dedup();
        }
        let n = self.ids.len();

        // Stamp a fresh id → rank epoch. The table is sized by the engine-reported dense
        // id bound (ids double as arena slot indices), falling back to the largest
        // observed id for snapshots assembled by hand.
        let bound = snapshot.id_upper_bound().max(
            self.ids
                .last()
                .map_or(0, |id| id.as_u64().saturating_add(1)),
        );
        self.dense_lookup = bound <= (n as u64).saturating_mul(DENSE_RANGE_FACTOR) + 1024;
        if self.dense_lookup {
            let bound = bound as usize;
            if self.lookup.len() < bound {
                self.lookup.resize(bound, NO_RANK);
                self.lookup_stamp.resize(bound, 0);
            }
            self.stamp = match self.stamp.checked_add(1) {
                Some(next) => next,
                None => {
                    self.lookup_stamp.fill(0);
                    1
                }
            };
            for (rank, id) in self.ids.iter().enumerate() {
                let slot = id.as_u64() as usize;
                self.lookup[slot] = rank as u32;
                self.lookup_stamp[slot] = self.stamp;
            }
        }

        // Pass 1: count row degrees (duplicates included; they are removed per row below).
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        for &(a, b) in &snapshot.edges {
            if let Some((ra, rb)) = self.resolve_pair(a, b) {
                self.offsets[ra as usize + 1] += 1;
                self.offsets[rb as usize + 1] += 1;
            }
        }
        for i in 0..n {
            self.offsets[i + 1] += self.offsets[i];
        }

        // Pass 2: scatter both directions of every surviving edge.
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.offsets[..n]);
        self.neighbours.clear();
        self.neighbours.resize(self.offsets[n] as usize, 0);
        for &(a, b) in &snapshot.edges {
            if let Some((ra, rb)) = self.resolve_pair(a, b) {
                self.neighbours[self.cursor[ra as usize] as usize] = rb;
                self.cursor[ra as usize] += 1;
                self.neighbours[self.cursor[rb as usize] as usize] = ra;
                self.cursor[rb as usize] += 1;
            }
        }

        // Sort and dedup each row, compacting the rows in place (a directed edge pair
        // `a → b`, `b → a` produces the same undirected edge twice).
        let mut write = 0usize;
        let mut row_start = self.offsets[0] as usize;
        for i in 0..n {
            let row_end = self.offsets[i + 1] as usize;
            self.neighbours[row_start..row_end].sort_unstable();
            self.offsets[i] = write as u32;
            let mut previous = NO_RANK;
            for read in row_start..row_end {
                let value = self.neighbours[read];
                if value != previous {
                    self.neighbours[write] = value;
                    write += 1;
                    previous = value;
                }
            }
            row_start = row_end;
        }
        self.offsets[n] = write as u32;
        self.neighbours.truncate(write);
    }

    /// Resolves an edge to dense rank endpoints, dropping self-loops and edges touching
    /// unobserved nodes (exactly the reference implementation's filtering).
    #[inline]
    fn resolve_pair(&self, a: NodeId, b: NodeId) -> Option<(u32, u32)> {
        if a == b {
            return None;
        }
        Some((self.rank_of(a)?, self.rank_of(b)?))
    }

    /// The dense rank of `id` in this sample, if the node was observed.
    #[inline]
    pub fn rank_of(&self, id: NodeId) -> Option<u32> {
        if self.dense_lookup {
            let slot = id.as_u64() as usize;
            if slot < self.lookup.len() && self.lookup_stamp[slot] == self.stamp {
                Some(self.lookup[slot])
            } else {
                None
            }
        } else {
            // Sparse ids: ranks are positions in the sorted id list.
            self.ids.binary_search(&id).ok().map(|rank| rank as u32)
        }
    }

    /// The node id at dense rank `rank`.
    #[inline]
    pub fn id_of(&self, rank: u32) -> NodeId {
        self.ids[rank as usize]
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.neighbours.len() / 2
    }

    /// The sorted, duplicate-free adjacency row of the vertex at `rank`.
    #[inline]
    pub fn row(&self, rank: u32) -> &[u32] {
        &self.neighbours
            [self.offsets[rank as usize] as usize..self.offsets[rank as usize + 1] as usize]
    }

    /// All vertices in ascending id order (equals ascending rank order).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ids.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::NodeObservation;
    use croupier_simulator::NatClass;

    fn snapshot(nodes: &[u64], edges: &[(u64, u64)]) -> OverlaySnapshot {
        OverlaySnapshot::from_parts(
            nodes
                .iter()
                .map(|id| NodeObservation {
                    id: NodeId::new(*id),
                    class: NatClass::Public,
                    ratio_estimate: None,
                    rounds_executed: 10,
                })
                .collect(),
            edges
                .iter()
                .map(|(a, b)| (NodeId::new(*a), NodeId::new(*b)))
                .collect(),
        )
    }

    #[test]
    fn builds_undirected_adjacency_without_self_loops() {
        let g = CsrGraph::from_snapshot(&snapshot(
            &[1, 2, 3],
            &[(1, 2), (2, 1), (2, 2), (2, 3), (1, 99)],
        ));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2, "duplicates and self-loops are dropped");
        let rank_of = |raw: u64| g.rank_of(NodeId::new(raw)).unwrap();
        assert_eq!(g.row(rank_of(2)), &[rank_of(1), rank_of(3)]);
        assert_eq!(g.row(rank_of(1)), &[rank_of(2)]);
        assert!(g.rank_of(NodeId::new(99)).is_none());
    }

    #[test]
    fn ranks_follow_ascending_id_order() {
        let g = CsrGraph::from_snapshot(&snapshot(&[30, 10, 20], &[(10, 30)]));
        assert_eq!(g.id_of(0), NodeId::new(10));
        assert_eq!(g.id_of(1), NodeId::new(20));
        assert_eq!(g.id_of(2), NodeId::new(30));
        assert_eq!(g.row(0), &[2]);
        assert!(g.row(1).is_empty(), "isolated nodes keep an empty row");
    }

    #[test]
    fn rebuild_reuses_buffers_and_invalidates_old_ranks() {
        let mut g = CsrGraph::from_snapshot(&snapshot(&[1, 2, 3, 4], &[(1, 2), (3, 4)]));
        assert_eq!(g.node_count(), 4);
        g.rebuild(&snapshot(&[2, 3], &[(2, 3)]));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(
            g.rank_of(NodeId::new(1)).is_none(),
            "stamping must forget the previous sample's nodes"
        );
        assert_eq!(g.row(g.rank_of(NodeId::new(2)).unwrap()), &[1]);
    }

    #[test]
    fn sparse_ids_fall_back_to_binary_search() {
        // An id range vastly larger than the node count must not allocate an
        // id-range-sized table; the graph still answers every query correctly.
        let huge = u64::MAX - 1;
        let g = CsrGraph::from_snapshot(&snapshot(&[5, huge], &[(5, huge), (huge, 5)]));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.lookup.is_empty(), "sparse build must not size the table");
        assert_eq!(g.rank_of(NodeId::new(5)), Some(0));
        assert_eq!(g.rank_of(NodeId::new(huge)), Some(1));
        assert_eq!(g.rank_of(NodeId::new(6)), None);
        assert_eq!(g.row(0), &[1]);
    }

    #[test]
    fn empty_snapshot_gives_empty_graph() {
        let g = CsrGraph::from_snapshot(&OverlaySnapshot::default());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.nodes().next().is_none());
    }

    #[test]
    fn rows_are_sorted_and_deduped() {
        let g = CsrGraph::from_snapshot(&snapshot(
            &[0, 1, 2, 3],
            &[(0, 3), (0, 1), (3, 0), (0, 2), (1, 0), (2, 0)],
        ));
        assert_eq!(g.row(0), &[1, 2, 3]);
        assert_eq!(g.edge_count(), 3);
    }
}
