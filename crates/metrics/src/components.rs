//! Connectivity after catastrophic failure (Fig. 7(b) of the paper).

use crate::context::MetricsContext;
use crate::snapshot::OverlaySnapshot;

/// Fraction of the observed (surviving) nodes contained in the largest connected component
/// of the overlay — the paper's "biggest cluster size (%)", reported after failing a large
/// fraction of the system at one instant.
///
/// Returns 0.0 for an empty snapshot and 1.0 for a single node.
///
/// This convenience wrapper builds a fresh [`MetricsContext`] per call; sampling loops
/// should keep one context alive so the CSR graph is built once and shared by all
/// metrics of the sample.
pub fn largest_component_fraction(snapshot: &OverlaySnapshot) -> f64 {
    let mut context = MetricsContext::new(1);
    context.build(snapshot);
    context.largest_component_fraction()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::naive_largest_component_fraction;
    use crate::snapshot::NodeObservation;
    use croupier_simulator::{NatClass, NodeId};

    fn snapshot(nodes: &[u64], edges: &[(u64, u64)]) -> OverlaySnapshot {
        OverlaySnapshot::from_parts(
            nodes
                .iter()
                .map(|id| NodeObservation {
                    id: NodeId::new(*id),
                    class: NatClass::Public,
                    ratio_estimate: None,
                    rounds_executed: 5,
                })
                .collect(),
            edges
                .iter()
                .map(|(a, b)| (NodeId::new(*a), NodeId::new(*b)))
                .collect(),
        )
    }

    #[test]
    fn fully_connected_graph_scores_one() {
        let s = snapshot(&[1, 2, 3], &[(1, 2), (2, 3)]);
        assert!((largest_component_fraction(&s) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partitioned_graph_reports_largest_part() {
        let s = snapshot(&[1, 2, 3, 4, 5], &[(1, 2), (2, 3)]);
        assert!((largest_component_fraction(&s) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn isolated_nodes_only() {
        let s = snapshot(&[1, 2, 3, 4], &[]);
        assert!((largest_component_fraction(&s) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn matches_the_naive_reference_bitwise() {
        let s = snapshot(
            &[1, 2, 3, 4, 5, 6, 7],
            &[(1, 2), (2, 3), (4, 5), (5, 4), (6, 42)],
        );
        let fast = largest_component_fraction(&s);
        let naive = naive_largest_component_fraction(&s);
        assert_eq!(fast.to_bits(), naive.to_bits());
    }

    #[test]
    fn empty_snapshot_scores_zero() {
        assert_eq!(largest_component_fraction(&OverlaySnapshot::default()), 0.0);
    }
}
