//! Connectivity after catastrophic failure (Fig. 7(b) of the paper).

use crate::graph::UndirectedGraph;
use crate::snapshot::OverlaySnapshot;

/// Fraction of the observed (surviving) nodes contained in the largest connected component
/// of the overlay — the paper's "biggest cluster size (%)", reported after failing a large
/// fraction of the system at one instant.
///
/// Returns 0.0 for an empty snapshot and 1.0 for a single node.
pub fn largest_component_fraction(snapshot: &OverlaySnapshot) -> f64 {
    let graph = UndirectedGraph::from_snapshot(snapshot);
    let n = graph.node_count();
    if n == 0 {
        return 0.0;
    }
    let largest = graph.component_sizes().into_iter().next().unwrap_or(0);
    largest as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::NodeObservation;
    use croupier_simulator::{NatClass, NodeId};

    fn snapshot(nodes: &[u64], edges: &[(u64, u64)]) -> OverlaySnapshot {
        OverlaySnapshot::from_parts(
            nodes
                .iter()
                .map(|id| NodeObservation {
                    id: NodeId::new(*id),
                    class: NatClass::Public,
                    ratio_estimate: None,
                    rounds_executed: 5,
                })
                .collect(),
            edges
                .iter()
                .map(|(a, b)| (NodeId::new(*a), NodeId::new(*b)))
                .collect(),
        )
    }

    #[test]
    fn fully_connected_graph_scores_one() {
        let s = snapshot(&[1, 2, 3], &[(1, 2), (2, 3)]);
        assert!((largest_component_fraction(&s) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partitioned_graph_reports_largest_part() {
        let s = snapshot(&[1, 2, 3, 4, 5], &[(1, 2), (2, 3)]);
        assert!((largest_component_fraction(&s) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn isolated_nodes_only() {
        let s = snapshot(&[1, 2, 3, 4], &[]);
        assert!((largest_component_fraction(&s) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_scores_zero() {
        assert_eq!(largest_component_fraction(&OverlaySnapshot::default()), 0.0);
    }
}
