//! Average clustering coefficient of the overlay (Fig. 6(c) of the paper).

use crate::context::MetricsContext;
use crate::snapshot::OverlaySnapshot;

/// Average local clustering coefficient over all observed nodes.
///
/// A node's clustering coefficient is the fraction of pairs of its neighbours that are
/// themselves neighbours: 1 for a clique, 0 for a tree. Nodes with fewer than two
/// neighbours contribute 0, following the convention of the peer-sampling literature the
/// paper builds on.
///
/// This convenience wrapper builds a fresh [`MetricsContext`] per call; sampling loops
/// should keep one context alive so the CSR graph is built once and shared by all
/// metrics of the sample.
pub fn average_clustering_coefficient(snapshot: &OverlaySnapshot) -> f64 {
    let mut context = MetricsContext::new(1);
    context.build(snapshot);
    context.average_clustering_coefficient()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::naive_average_clustering_coefficient;
    use crate::snapshot::NodeObservation;
    use croupier_simulator::{NatClass, NodeId};

    fn snapshot(nodes: &[u64], edges: &[(u64, u64)]) -> OverlaySnapshot {
        OverlaySnapshot::from_parts(
            nodes
                .iter()
                .map(|id| NodeObservation {
                    id: NodeId::new(*id),
                    class: NatClass::Public,
                    ratio_estimate: None,
                    rounds_executed: 5,
                })
                .collect(),
            edges
                .iter()
                .map(|(a, b)| (NodeId::new(*a), NodeId::new(*b)))
                .collect(),
        )
    }

    #[test]
    fn clique_has_coefficient_one() {
        let s = snapshot(
            &[1, 2, 3, 4],
            &[(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)],
        );
        assert!((average_clustering_coefficient(&s) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tree_has_coefficient_zero() {
        let s = snapshot(&[1, 2, 3, 4, 5], &[(1, 2), (1, 3), (2, 4), (2, 5)]);
        assert_eq!(average_clustering_coefficient(&s), 0.0);
    }

    #[test]
    fn triangle_plus_pendant_averages_over_all_nodes() {
        // Triangle 1-2-3 plus pendant 4 attached to 1: CC(1)=1/3, CC(2)=1, CC(3)=1, CC(4)=0.
        let s = snapshot(&[1, 2, 3, 4], &[(1, 2), (2, 3), (1, 3), (1, 4)]);
        let expected = (1.0 / 3.0 + 1.0 + 1.0 + 0.0) / 4.0;
        assert!((average_clustering_coefficient(&s) - expected).abs() < 1e-9);
    }

    #[test]
    fn matches_the_naive_reference_bitwise() {
        // A denser synthetic overlay with duplicate directed edges and a dangler.
        let nodes: Vec<u64> = (0..30).collect();
        let edges: Vec<(u64, u64)> = (0..30)
            .flat_map(|i| [(i, (i + 1) % 30), ((i + 1) % 30, i), (i, (i + 4) % 30)])
            .chain([(0, 99)])
            .collect();
        let s = snapshot(&nodes, &edges);
        let fast = average_clustering_coefficient(&s);
        let naive = naive_average_clustering_coefficient(&s);
        assert_eq!(fast.to_bits(), naive.to_bits());
    }

    #[test]
    fn empty_snapshot_is_zero() {
        assert_eq!(
            average_clustering_coefficient(&OverlaySnapshot::default()),
            0.0
        );
    }
}
