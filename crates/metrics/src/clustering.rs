//! Average clustering coefficient of the overlay (Fig. 6(c) of the paper).

use crate::graph::UndirectedGraph;
use crate::snapshot::OverlaySnapshot;

/// Average local clustering coefficient over all observed nodes.
///
/// A node's clustering coefficient is the fraction of pairs of its neighbours that are
/// themselves neighbours: 1 for a clique, 0 for a tree. Nodes with fewer than two
/// neighbours contribute 0, following the convention of the peer-sampling literature the
/// paper builds on.
pub fn average_clustering_coefficient(snapshot: &OverlaySnapshot) -> f64 {
    let graph = UndirectedGraph::from_snapshot(snapshot);
    let n = graph.node_count();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for node in graph.nodes() {
        let neighbours = match graph.neighbours(node) {
            Some(set) if set.len() >= 2 => set,
            _ => continue,
        };
        let k = neighbours.len();
        let mut links = 0usize;
        let neighbour_list: Vec<_> = neighbours.iter().copied().collect();
        for i in 0..neighbour_list.len() {
            for j in (i + 1)..neighbour_list.len() {
                if graph
                    .neighbours(neighbour_list[i])
                    .map(|set| set.contains(&neighbour_list[j]))
                    .unwrap_or(false)
                {
                    links += 1;
                }
            }
        }
        total += 2.0 * links as f64 / (k as f64 * (k as f64 - 1.0));
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::NodeObservation;
    use croupier_simulator::{NatClass, NodeId};

    fn snapshot(nodes: &[u64], edges: &[(u64, u64)]) -> OverlaySnapshot {
        OverlaySnapshot::from_parts(
            nodes
                .iter()
                .map(|id| NodeObservation {
                    id: NodeId::new(*id),
                    class: NatClass::Public,
                    ratio_estimate: None,
                    rounds_executed: 5,
                })
                .collect(),
            edges
                .iter()
                .map(|(a, b)| (NodeId::new(*a), NodeId::new(*b)))
                .collect(),
        )
    }

    #[test]
    fn clique_has_coefficient_one() {
        let s = snapshot(
            &[1, 2, 3, 4],
            &[(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)],
        );
        assert!((average_clustering_coefficient(&s) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tree_has_coefficient_zero() {
        let s = snapshot(&[1, 2, 3, 4, 5], &[(1, 2), (1, 3), (2, 4), (2, 5)]);
        assert_eq!(average_clustering_coefficient(&s), 0.0);
    }

    #[test]
    fn triangle_plus_pendant_averages_over_all_nodes() {
        // Triangle 1-2-3 plus pendant 4 attached to 1: CC(1)=1/3, CC(2)=1, CC(3)=1, CC(4)=0.
        let s = snapshot(&[1, 2, 3, 4], &[(1, 2), (2, 3), (1, 3), (1, 4)]);
        let expected = (1.0 / 3.0 + 1.0 + 1.0 + 0.0) / 4.0;
        assert!((average_clustering_coefficient(&s) - expected).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        assert_eq!(
            average_clustering_coefficient(&OverlaySnapshot::default()),
            0.0
        );
    }
}
