//! RFC 4787 conformance matrix for the NAT emulation.
//!
//! Every combination of mapping policy × filtering policy × hairpinning × port
//! preservation is driven through the same traffic pattern and checked against the
//! behaviour RFC 4787 prescribes for that combination. Targeted tests below the matrix
//! cover the requirements that need a specific traffic shape: port collision fallback,
//! port parity (REQ-5), asymmetric refresh (REQ-6), IP pooling (REQ-2) and the scripted
//! gateway-profile dynamics that reach these behaviours from scenario scripts.

use croupier_nat::mapping::internal_source_port;
use croupier_nat::{
    AddressInfo, FilteringPolicy, GatewayProfile, Ip, MappingPolicy, NatDynamicsEvent, NatGateway,
    NatGatewayConfig, NatTopologyBuilder, PoolingBehavior,
};
use croupier_simulator::{DeliveryFilter, DeliveryVerdict, NodeId, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const T0: SimTime = SimTime::ZERO;

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

/// The full 3 × 3 × 2 × 2 behaviour matrix, one assertion set per combination.
#[test]
fn rfc4787_conformance_matrix() {
    for mapping in MappingPolicy::ALL {
        for filtering in FilteringPolicy::ALL {
            for hairpin in [true, false] {
                for preservation in [true, false] {
                    let config = NatGatewayConfig::with_filtering(filtering)
                        .mapping(mapping)
                        .hairpin(hairpin)
                        .port_preservation(preservation);
                    let combo = format!(
                        "mapping={mapping} filtering={filtering} \
                         hairpin={hairpin} preservation={preservation}"
                    );
                    check_mapping_axis(config, &combo);
                    check_filtering_axis(config, &combo);
                    check_hairpin_axis(config, &combo);
                }
            }
        }
    }
}

/// RFC 4787 §4.1: how many distinct external endpoints do flows from one internal
/// source to several destinations get?
fn check_mapping_axis(config: NatGatewayConfig, combo: &str) {
    let mut gw = NatGateway::new(Ip::public(1), config);
    let internal = NodeId::new(1);
    // Three remotes: a, b on distinct IPs; b2 on b's IP but a different port (node).
    let (a, a_ip) = (NodeId::new(10), Ip::public(10));
    let (b, b_ip) = (NodeId::new(11), Ip::public(11));
    let b2 = NodeId::new(12);

    gw.record_outbound(internal, a, a_ip, T0);
    gw.record_outbound(internal, b, b_ip, T0);
    gw.record_outbound(internal, b2, b_ip, T0);
    let now = t(10);
    let ep_a = gw.external_endpoint(internal, a, a_ip, now).expect(combo);
    let ep_b = gw.external_endpoint(internal, b, b_ip, now).expect(combo);
    let ep_b2 = gw.external_endpoint(internal, b2, b_ip, now).expect(combo);

    match config.mapping {
        MappingPolicy::EndpointIndependent => {
            assert_eq!(ep_a, ep_b, "EI mapping must reuse the endpoint: {combo}");
            assert_eq!(ep_b, ep_b2, "EI mapping must reuse the endpoint: {combo}");
            assert_eq!(gw.mapping_count(), 1, "{combo}");
        }
        MappingPolicy::AddressDependent => {
            assert_ne!(ep_a, ep_b, "AD mapping: distinct remote IPs: {combo}");
            assert_eq!(ep_b, ep_b2, "AD mapping: same remote IP: {combo}");
            assert_eq!(gw.mapping_count(), 2, "{combo}");
        }
        MappingPolicy::AddressAndPortDependent => {
            assert_ne!(ep_a, ep_b, "APD mapping: distinct remotes: {combo}");
            assert_ne!(ep_b, ep_b2, "APD mapping: distinct remote ports: {combo}");
            assert_eq!(gw.mapping_count(), 3, "{combo}");
        }
        _ => unreachable!("matrix iterates MappingPolicy::ALL"),
    }

    if config.port_preservation {
        // The first flow finds its preferred port free.
        assert_eq!(
            ep_a.port,
            internal_source_port(1),
            "preservation keeps the internal port when free: {combo}"
        );
    }
}

/// RFC 4787 §5: which inbound packets pass an established mapping?
fn check_filtering_axis(config: NatGatewayConfig, combo: &str) {
    let mut gw = NatGateway::new(Ip::public(1), config);
    let internal = NodeId::new(1);
    let (a, a_ip) = (NodeId::new(10), Ip::public(10));
    gw.record_outbound(internal, a, a_ip, T0);
    let now = t(10);

    // The contacted endpoint always gets back in.
    assert!(
        gw.accepts_inbound(internal, a, a_ip, now),
        "reply from the contacted endpoint must pass: {combo}"
    );
    // A stranger on an uncontacted IP passes only endpoint-independent filtering.
    let stranger = gw.accepts_inbound(internal, NodeId::new(20), Ip::public(20), now);
    assert_eq!(
        stranger,
        config.filtering == FilteringPolicy::EndpointIndependent,
        "unsolicited inbound vs filtering policy: {combo}"
    );
    // A different port on the contacted IP passes everything except APD filtering.
    let same_ip_other_port = gw.accepts_inbound(internal, NodeId::new(12), a_ip, now);
    assert_eq!(
        same_ip_other_port,
        config.filtering != FilteringPolicy::AddressAndPortDependent,
        "same-IP/other-port inbound vs filtering policy: {combo}"
    );
}

/// RFC 4787 REQ-9: traffic between two hosts behind the same gateway is delivered iff
/// the gateway hairpins.
fn check_hairpin_axis(config: NatGatewayConfig, combo: &str) {
    let topology = NatTopologyBuilder::new(7).build();
    let (x, y) = (NodeId::new(0), NodeId::new(1));
    let gw = topology.add_shared_gateway(config);
    assert!(topology.add_private_node_behind(x, gw), "{combo}");
    assert!(topology.add_private_node_behind(y, gw), "{combo}");

    let mut filter = topology.clone();
    // y talks to x first, so x→y afterwards is a reply under every filtering policy.
    filter.on_send(y, x, T0);
    let verdict = filter.can_deliver(x, y, t(10));
    if config.hairpinning {
        assert_eq!(
            verdict,
            DeliveryVerdict::Deliver,
            "hairpin-capable gateway must loop internal traffic: {combo}"
        );
        assert_eq!(topology.stats().hairpin_blocked, 0, "{combo}");
    } else {
        assert_eq!(
            verdict,
            DeliveryVerdict::BlockedByNat,
            "hairpin-incapable gateway must drop internal traffic: {combo}"
        );
        assert_eq!(topology.stats().hairpin_blocked, 1, "{combo}");
    }
}

/// Two internals whose preferred external ports collide: the first keeps its port, the
/// second falls back to the deterministic scan and gets a distinct one.
#[test]
fn port_preservation_collision_falls_back_to_scan() {
    let mut gw = NatGateway::new(Ip::public(1), NatGatewayConfig::default());
    // 64517 ≡ 5 (mod 64512), so both internals prefer the same external port.
    let (first, second) = (NodeId::new(5), NodeId::new(64517));
    let want = internal_source_port(5);
    assert_eq!(want, internal_source_port(64517));

    let (remote, remote_ip) = (NodeId::new(100), Ip::public(100));
    gw.record_outbound(first, remote, remote_ip, T0);
    gw.record_outbound(second, remote, remote_ip, T0);
    let ep_first = gw
        .external_endpoint(first, remote, remote_ip, t(1))
        .unwrap();
    let ep_second = gw
        .external_endpoint(second, remote, remote_ip, t(1))
        .unwrap();
    assert_eq!(ep_first.port, want, "first claimant keeps its port");
    assert_ne!(ep_second.port, want, "loser of the collision is rehomed");
    assert_ne!(ep_first, ep_second);
}

/// RFC 4787 REQ-5 refinement: a non-preserved external port keeps the internal port's
/// parity when `port_parity` is set.
#[test]
fn port_parity_is_preserved_on_reassignment() {
    let config = NatGatewayConfig::default()
        .port_preservation(false)
        .port_parity(true);
    let mut gw = NatGateway::new(Ip::public(1), config);
    let (remote, remote_ip) = (NodeId::new(100), Ip::public(100));
    for raw in [4u64, 5, 6, 7] {
        let internal = NodeId::new(raw);
        gw.record_outbound(internal, remote, remote_ip, T0);
        let ep = gw
            .external_endpoint(internal, remote, remote_ip, t(1))
            .unwrap();
        assert_eq!(
            ep.port % 2,
            internal_source_port(raw as u32) % 2,
            "external port parity must match internal port parity for node {raw}"
        );
    }
}

/// RFC 4787 REQ-6: only outbound traffic refreshes a mapping; a peer talking *at* the
/// mapping does not keep it alive.
#[test]
fn mapping_refresh_is_asymmetric() {
    let config = NatGatewayConfig::default().mapping_timeout(SimDuration::from_secs(60));
    let mut gw = NatGateway::new(Ip::public(1), config);
    let internal = NodeId::new(1);
    let (remote, remote_ip) = (NodeId::new(10), Ip::public(10));
    gw.record_outbound(internal, remote, remote_ip, T0);

    // Inbound checks just before expiry succeed but must not extend the mapping.
    let almost = t(59_000);
    assert!(gw.accepts_inbound(internal, remote, remote_ip, almost));
    assert!(gw
        .external_endpoint(internal, remote, remote_ip, almost)
        .is_some());
    let after = t(61_000);
    assert!(
        !gw.accepts_inbound(internal, remote, remote_ip, after),
        "inbound traffic must not have refreshed the mapping"
    );
    assert!(gw
        .external_endpoint(internal, remote, remote_ip, after)
        .is_none());

    // Outbound traffic does refresh...
    gw.record_outbound(internal, remote, remote_ip, T0);
    gw.record_outbound(internal, remote, remote_ip, t(50_000));
    assert!(gw
        .external_endpoint(internal, remote, remote_ip, t(100_000))
        .is_some());
    // ...and an out-of-order older timestamp never shortens the lifetime.
    gw.record_outbound(internal, remote, remote_ip, t(10_000));
    assert!(gw
        .external_endpoint(internal, remote, remote_ip, t(100_000))
        .is_some());
}

/// RFC 4787 REQ-2: with a pool of external addresses, "paired" pooling keeps all of one
/// internal host's mappings on one address; "arbitrary" pooling does not.
#[test]
fn ip_pooling_paired_vs_arbitrary() {
    let pool: Vec<Ip> = (1..=4).map(Ip::public).collect();
    let internal = NodeId::new(1);
    let flows = [
        (NodeId::new(10), Ip::public(10)),
        (NodeId::new(11), Ip::public(11)),
        (NodeId::new(12), Ip::public(12)),
    ];

    // Address-dependent mapping so each flow allocates its own mapping entry.
    let base = NatGatewayConfig::default().mapping(MappingPolicy::AddressDependent);

    let mut paired = NatGateway::with_pool(pool.clone(), base.pool(4, PoolingBehavior::Paired));
    for (remote, ip) in flows {
        paired.record_outbound(internal, remote, ip, T0);
    }
    let paired_ips: Vec<Ip> = flows
        .iter()
        .map(|(remote, ip)| {
            paired
                .external_endpoint(internal, *remote, *ip, t(1))
                .unwrap()
                .ip
        })
        .collect();
    assert!(
        paired_ips.iter().all(|ip| *ip == paired_ips[0]),
        "paired pooling must keep one host on one address, got {paired_ips:?}"
    );

    let mut arbitrary = NatGateway::with_pool(pool, base.pool(4, PoolingBehavior::Arbitrary));
    for (remote, ip) in flows {
        arbitrary.record_outbound(internal, remote, ip, T0);
    }
    let arbitrary_ips: Vec<Ip> = flows
        .iter()
        .map(|(remote, ip)| {
            arbitrary
                .external_endpoint(internal, *remote, *ip, t(1))
                .unwrap()
                .ip
        })
        .collect();
    assert!(
        arbitrary_ips.iter().any(|ip| *ip != arbitrary_ips[0]),
        "arbitrary pooling must spread one host's flows across the pool"
    );
}

/// A gateway reboot wipes the external mapping table along with the bindings.
#[test]
fn reboot_clears_mappings_and_frees_ports() {
    let mut gw = NatGateway::new(Ip::public(1), NatGatewayConfig::default());
    let internal = NodeId::new(1);
    let (remote, remote_ip) = (NodeId::new(10), Ip::public(10));
    gw.record_outbound(internal, remote, remote_ip, T0);
    assert_eq!(gw.mapping_count(), 1);
    gw.reboot(t(5));
    assert_eq!(gw.mapping_count(), 0);
    assert!(gw
        .external_endpoint(internal, remote, remote_ip, t(10))
        .is_none());
    // The freed port is reusable immediately.
    gw.record_outbound(internal, remote, remote_ip, t(10));
    assert_eq!(
        gw.external_endpoint(internal, remote, remote_ip, t(11))
            .unwrap()
            .port,
        internal_source_port(1)
    );
}

/// The scripted CGN consolidation event moves the selected nodes behind one shared
/// carrier-grade gateway with a paired address pool — and they can still reach each
/// other through it (hairpinning, REQ-9).
#[test]
fn cgn_consolidation_event_builds_a_shared_pool_gateway() {
    let topology = NatTopologyBuilder::new(7).build();
    let nodes: Vec<NodeId> = (0..4).map(NodeId::new).collect();
    for node in &nodes {
        topology.add_private_node(*node);
    }
    let public = NodeId::new(99);
    topology.add_public_node(public);

    let mut rng = SmallRng::seed_from_u64(42);
    let event = NatDynamicsEvent::CgnConsolidation {
        fraction: 1.0,
        pool_size: 2,
    };
    let applied = topology.apply(&event, 10, t(1_000), &mut rng);
    assert!(applied.taken_offline.is_empty());
    assert!(applied.restore_round.is_none());

    // Everyone selected ended up behind the same gateway...
    let cgn = topology.gateway_of(nodes[0]).expect("behind the CGN");
    for node in &nodes {
        assert_eq!(topology.gateway_of(*node), Some(cgn));
    }
    // ...surfacing from a pool of at most `pool_size` external addresses.
    let mut pool_ips: Vec<Ip> = nodes
        .iter()
        .map(|n| topology.observed_ip(*n).expect("observed IP"))
        .collect();
    pool_ips.sort_unstable();
    pool_ips.dedup();
    assert!(
        (1..=2).contains(&pool_ips.len()),
        "paired pooling over a pool of 2, got {pool_ips:?}"
    );

    // Customers of one CGN still reach each other: the CGN profile hairpins.
    let mut filter = topology.clone();
    filter.on_send(nodes[1], nodes[0], t(2_000));
    assert_eq!(
        filter.can_deliver(nodes[0], nodes[1], t(2_010)),
        DeliveryVerdict::Deliver
    );
}

/// The scripted gateway-reconfig event switches the selected nodes' gateways to the
/// requested profile; under the symmetric profile, distinct destinations then observe
/// distinct external endpoints.
#[test]
fn gateway_reconfig_event_switches_profiles() {
    let topology = NatTopologyBuilder::new(7).build();
    let node = NodeId::new(0);
    topology.add_private_node(node);
    let (r1, r2) = (NodeId::new(10), NodeId::new(11));
    topology.add_public_node(r1);
    topology.add_public_node(r2);

    let mut rng = SmallRng::seed_from_u64(42);
    let event = NatDynamicsEvent::GatewayReconfig {
        fraction: 1.0,
        profile: GatewayProfile::Symmetric,
    };
    topology.apply(&event, 10, t(1_000), &mut rng);

    let mut filter = topology.clone();
    filter.on_send(node, r1, t(2_000));
    filter.on_send(node, r2, t(2_000));
    let ep1 = topology
        .external_endpoint(node, r1, t(2_010))
        .expect("mapping to r1");
    let ep2 = topology
        .external_endpoint(node, r2, t(2_010))
        .expect("mapping to r2");
    assert_ne!(
        ep1, ep2,
        "symmetric profile must allocate per-destination endpoints"
    );
    // And the symmetric profile filters address-and-port-dependently: r2's reply passes,
    // a never-contacted node's does not.
    assert_eq!(
        filter.can_deliver(r2, node, t(2_020)),
        DeliveryVerdict::Deliver
    );
    let stranger = NodeId::new(12);
    topology.add_public_node(stranger);
    assert_eq!(
        filter.can_deliver(stranger, node, t(2_030)),
        DeliveryVerdict::BlockedByNat
    );
}
