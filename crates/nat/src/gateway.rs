//! A single NAT gateway (or firewall) and its UDP mapping table.

use croupier_simulator::{FastHashMap, FastHashSet, NodeId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::address::{Endpoint, Ip};
use crate::filtering::FilteringPolicy;
use crate::mapping::{
    internal_source_port, ExternalMapping, MappingPolicy, PoolingBehavior, FIRST_NAT_PORT,
};

/// Static configuration of a NAT gateway.
///
/// The defaults reproduce the pre-RFC-4787 emulation exactly: endpoint-independent
/// mapping, hairpinning supported, port preservation on, parity off, a single external
/// address. Seeded runs against a default-configured topology are therefore bit-identical
/// across the fidelity upgrade; the richer behaviours are opt-in per gateway profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NatGatewayConfig {
    /// Inbound filtering policy.
    pub filtering: FilteringPolicy,
    /// External-endpoint mapping policy (RFC 4787 §4.1).
    pub mapping: MappingPolicy,
    /// How long a UDP mapping survives without outbound traffic refreshing it. Refresh is
    /// asymmetric (RFC 4787 REQ-6): only *outbound* packets refresh; inbound never does.
    pub mapping_timeout: SimDuration,
    /// Whether the gateway loops packets addressed to one of its own external endpoints
    /// back to the internal host holding the mapping (RFC 4787 REQ-9). A
    /// hairpin-incapable gateway drops traffic between two hosts behind it.
    pub hairpinning: bool,
    /// Whether the gateway tries to keep the internal source port on the external side.
    pub port_preservation: bool,
    /// Whether a non-preserved external port must keep the internal port's parity
    /// (RFC 4787 REQ-5's "port parity" refinement).
    pub port_parity: bool,
    /// How internal hosts are paired to pool addresses when the gateway owns several.
    pub pooling: PoolingBehavior,
    /// Number of external addresses the gateway owns (carrier-grade NATs own a pool;
    /// consumer routers own one). Clamped to at least 1 when the gateway is built.
    pub pool_size: u8,
    /// Whether the gateway supports the UPnP Internet Gateway Device protocol. Nodes behind
    /// a UPnP gateway can map a public port explicitly and therefore behave as public nodes.
    pub upnp_enabled: bool,
}

impl Default for NatGatewayConfig {
    fn default() -> Self {
        NatGatewayConfig {
            filtering: FilteringPolicy::default(),
            mapping: MappingPolicy::default(),
            mapping_timeout: SimDuration::from_secs(60),
            hairpinning: true,
            port_preservation: true,
            port_parity: false,
            pooling: PoolingBehavior::default(),
            pool_size: 1,
            upnp_enabled: false,
        }
    }
}

impl NatGatewayConfig {
    /// Creates a config with the given filtering policy and the default 60 s mapping
    /// timeout.
    pub fn with_filtering(filtering: FilteringPolicy) -> Self {
        NatGatewayConfig {
            filtering,
            ..NatGatewayConfig::default()
        }
    }

    /// Sets the mapping timeout.
    pub fn mapping_timeout(mut self, timeout: SimDuration) -> Self {
        self.mapping_timeout = timeout;
        self
    }

    /// Sets the mapping policy.
    pub fn mapping(mut self, policy: MappingPolicy) -> Self {
        self.mapping = policy;
        self
    }

    /// Enables or disables hairpinning.
    pub fn hairpin(mut self, enabled: bool) -> Self {
        self.hairpinning = enabled;
        self
    }

    /// Enables or disables port preservation.
    pub fn port_preservation(mut self, enabled: bool) -> Self {
        self.port_preservation = enabled;
        self
    }

    /// Enables or disables port-parity preservation.
    pub fn port_parity(mut self, enabled: bool) -> Self {
        self.port_parity = enabled;
        self
    }

    /// Sets the external address pool: `size` addresses assigned per `pooling`.
    pub fn pool(mut self, size: u8, pooling: PoolingBehavior) -> Self {
        self.pool_size = size.max(1);
        self.pooling = pooling;
        self
    }

    /// Enables or disables UPnP IGD support.
    pub fn upnp(mut self, enabled: bool) -> Self {
        self.upnp_enabled = enabled;
        self
    }

    /// The "full-cone" profile: endpoint-independent on both axes, hairpinning, port
    /// preservation — the friendliest NAT RFC 4787 describes (and the only one the
    /// paper's `ForwardTest` traverses unsolicited).
    pub fn full_cone() -> Self {
        NatGatewayConfig {
            filtering: FilteringPolicy::EndpointIndependent,
            mapping: MappingPolicy::EndpointIndependent,
            ..NatGatewayConfig::default()
        }
    }

    /// The "symmetric" profile: address-and-port-dependent on both axes, no hairpinning,
    /// no port preservation, parity kept — the NAT under which observed endpoints are
    /// useless to third parties and hole-punching degenerates to relaying.
    pub fn symmetric() -> Self {
        NatGatewayConfig {
            filtering: FilteringPolicy::AddressAndPortDependent,
            mapping: MappingPolicy::AddressAndPortDependent,
            hairpinning: false,
            port_preservation: false,
            port_parity: true,
            ..NatGatewayConfig::default()
        }
    }

    /// A carrier-grade profile: many customers share one gateway with a pool of external
    /// addresses (paired, per RFC 4787 REQ-2), address-dependent on both axes, hairpinning
    /// supported (customers of one CGN must still reach each other), no port preservation
    /// (the port space is shared).
    pub fn carrier_grade(pool_size: u8) -> Self {
        NatGatewayConfig {
            filtering: FilteringPolicy::AddressDependent,
            mapping: MappingPolicy::AddressDependent,
            port_preservation: false,
            pooling: PoolingBehavior::Paired,
            pool_size: pool_size.max(1),
            ..NatGatewayConfig::default()
        }
    }
}

/// One entry of a gateway's UDP mapping table: internal host `internal` has sent traffic to
/// remote node `remote` (whose observed address is `remote_ip`), most recently at
/// `last_refreshed`.
///
/// Node identifiers are stored as `u32` (checked on construction), shrinking the entry
/// from 32 to 24 bytes. At the 1M-node tier every private node owns a gateway and a
/// steady-state table holds tens of bindings, so the mapping tables are one of the
/// largest per-node allocations in the NAT layer; the same `u32` packing also lets the
/// table keys collapse to single `u64`s (see `pair_key`/`ip_key`), which hash faster
/// than tuple keys on the per-message filter path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Binding {
    internal: u32,
    remote: u32,
    remote_ip: Ip,
    last_refreshed: SimTime,
}

impl Binding {
    /// Creates a mapping-table entry.
    ///
    /// # Panics
    ///
    /// Panics if either node identifier exceeds the table's `u32` key space.
    pub fn new(internal: NodeId, remote: NodeId, remote_ip: Ip, last_refreshed: SimTime) -> Self {
        Binding {
            internal: id32(internal),
            remote: id32(remote),
            remote_ip,
            last_refreshed,
        }
    }

    /// The internal (private) node that created the mapping.
    pub fn internal(&self) -> NodeId {
        NodeId::new(self.internal as u64)
    }

    /// The remote node the mapping points at.
    pub fn remote(&self) -> NodeId {
        NodeId::new(self.remote as u64)
    }

    /// The remote node's publicly observable IP address.
    pub fn remote_ip(&self) -> Ip {
        self.remote_ip
    }

    /// Last time outbound traffic refreshed the mapping.
    pub fn last_refreshed(&self) -> SimTime {
        self.last_refreshed
    }

    /// Returns `true` if the binding has expired at time `now` under `timeout`.
    pub fn is_expired(&self, now: SimTime, timeout: SimDuration) -> bool {
        now.saturating_since(self.last_refreshed) > timeout
    }
}

/// Narrows a node identifier to the mapping tables' `u32` key space.
#[inline]
fn id32(node: NodeId) -> u32 {
    let raw = node.as_u64();
    assert!(
        raw <= u32::MAX as u64,
        "node id {raw} exceeds the NAT mapping table's u32 key space"
    );
    raw as u32
}

/// Packs an `(internal, remote)` node pair into the exact-match table's `u64` key.
#[inline]
fn pair_key(internal: u32, remote: u32) -> u64 {
    ((internal as u64) << 32) | remote as u64
}

/// Packs an `(internal, remote ip)` pair into the address-dependent index's `u64` key.
#[inline]
fn ip_key(internal: u32, ip: Ip) -> u64 {
    ((internal as u64) << 32) | ip.as_u32() as u64
}

/// Packs a `(pool address index, port)` pair into the used-port set's `u32` key.
#[inline]
fn port_key(ip_index: u8, port: u16) -> u32 {
    ((ip_index as u32) << 16) | port as u32
}

/// How many mapping-table operations a gateway absorbs between opportunistic purges of
/// expired bindings. Purging is a memory bound, not a correctness mechanism (expiry is
/// checked against timestamps on every query), so the cadence only trades table size
/// against purge work. Per-gateway counters replaced a global sweep over every gateway in
/// the topology, which at 100k nodes (one gateway per private node) dominated the
/// barrier's per-message cost.
const PURGE_EVERY_OPS: u32 = 256;

/// A NAT gateway: a public IP address plus a mapping table shared by the private nodes that
/// sit behind it.
///
/// Inbound-filtering decisions are O(1) for every policy: besides the exact
/// `(internal, remote)` table, the gateway maintains *newest-binding* indexes — the most
/// recent refresh time per internal node and per `(internal, remote ip)` pair. "Some
/// unexpired binding exists" is equivalent to "the newest such binding is unexpired"
/// because expiry is monotone in the refresh time, so the
/// endpoint-independent/address-dependent policies query one index entry instead of
/// scanning the table. The address-dependent index additionally relies on addresses
/// never being *reused*, which [`NatTopology`](crate::NatTopology) guarantees (IPs are
/// allocated monotonically, even across scripted profile changes and node migrations —
/// a node that moves or is promoted gets a fresh address, so an index entry keyed on an
/// old observed IP can only ever go stale and expire, never silently authorise a
/// different peer).
///
/// # Examples
///
/// ```
/// use croupier_nat::{FilteringPolicy, Ip, NatGateway, NatGatewayConfig};
/// use croupier_simulator::{NodeId, SimDuration, SimTime};
///
/// let cfg = NatGatewayConfig::with_filtering(FilteringPolicy::AddressAndPortDependent)
///     .mapping_timeout(SimDuration::from_secs(30));
/// let mut gw = NatGateway::new(Ip::public(9), cfg);
/// let inside = NodeId::new(1);
/// let outside = NodeId::new(2);
///
/// // Unsolicited inbound traffic is dropped.
/// assert!(!gw.accepts_inbound(inside, outside, Ip::public(3), SimTime::ZERO));
/// // After the internal node sends out, the reverse path opens until the mapping expires.
/// gw.record_outbound(inside, outside, Ip::public(3), SimTime::ZERO);
/// assert!(gw.accepts_inbound(inside, outside, Ip::public(3), SimTime::from_secs(10)));
/// assert!(!gw.accepts_inbound(inside, outside, Ip::public(3), SimTime::from_secs(100)));
/// ```
#[derive(Clone, Debug)]
pub struct NatGateway {
    /// External address pool; `[0]` is the primary address ([`public_ip`](Self::public_ip)).
    external_ips: Vec<Ip>,
    config: NatGatewayConfig,
    /// Exact-match table, keyed by `pair_key`.
    bindings: FastHashMap<u64, Binding>,
    /// Newest refresh time per internal node (endpoint-independent fast path).
    newest_per_internal: FastHashMap<u32, SimTime>,
    /// Newest refresh time per `(internal, remote ip)` (address-dependent fast path),
    /// keyed by `ip_key`.
    newest_per_remote_ip: FastHashMap<u64, SimTime>,
    /// External-endpoint mappings, keyed per [`MappingPolicy`]: endpoint-independent by
    /// `internal`, address-dependent by `ip_key`, address-and-port-dependent by
    /// `pair_key`. The key spaces never mix because the policy is fixed per config and a
    /// reconfig clears the table.
    mappings: FastHashMap<u64, ExternalMapping>,
    /// Allocated external ports, keyed by `port_key` (pool index × port).
    used_ports: FastHashSet<u32>,
    /// Scan cursor for non-preserving port allocation.
    next_port: u16,
    /// Round-robin cursor for [`PoolingBehavior::Arbitrary`] address assignment.
    arbitrary_cursor: u32,
    ops_since_purge: u32,
    /// Time of the most recent [`reboot`](Self::reboot), if any.
    last_reboot: Option<SimTime>,
    /// Number of reboots this gateway has been through.
    reboots: u64,
}

impl NatGateway {
    /// Creates a gateway with the given public address and configuration.
    pub fn new(public_ip: Ip, config: NatGatewayConfig) -> Self {
        NatGateway::with_pool(vec![public_ip], config)
    }

    /// Creates a gateway owning a pool of external addresses; `pool[0]` is the primary
    /// address. Panics if the pool is empty.
    pub fn with_pool(pool: Vec<Ip>, config: NatGatewayConfig) -> Self {
        assert!(
            !pool.is_empty(),
            "a NAT gateway needs at least one external address"
        );
        NatGateway {
            external_ips: pool,
            config,
            bindings: FastHashMap::default(),
            newest_per_internal: FastHashMap::default(),
            newest_per_remote_ip: FastHashMap::default(),
            mappings: FastHashMap::default(),
            used_ports: FastHashSet::default(),
            next_port: FIRST_NAT_PORT,
            arbitrary_cursor: 0,
            ops_since_purge: 0,
            last_reboot: None,
            reboots: 0,
        }
    }

    /// The gateway's primary public IP address (what remote peers observe as the packet
    /// source when the pool holds a single address).
    pub fn public_ip(&self) -> Ip {
        self.external_ips[0]
    }

    /// The gateway's external address pool.
    pub fn external_ips(&self) -> &[Ip] {
        &self.external_ips
    }

    /// Appends an address to the external pool (topology-side pool growth during a
    /// scripted gateway reconfiguration).
    pub fn extend_pool(&mut self, ip: Ip) {
        self.external_ips.push(ip);
    }

    /// The pool address `internal`'s *paired* mappings surface from. With the default
    /// single-address pool this is [`public_ip`](Self::public_ip) for every node, which
    /// is what keeps pre-pool seeded runs bit-identical. Under
    /// [`PoolingBehavior::Arbitrary`] individual mappings may use other pool members;
    /// query [`external_endpoint`](Self::external_endpoint) for the per-flow truth.
    pub fn external_ip_for(&self, internal: NodeId) -> Ip {
        self.external_ips[id32(internal) as usize % self.external_ips.len()]
    }

    /// Whether the gateway loops traffic between two of its own internal hosts.
    pub fn hairpinning(&self) -> bool {
        self.config.hairpinning
    }

    /// The gateway's configuration.
    pub fn config(&self) -> &NatGatewayConfig {
        &self.config
    }

    /// Number of mapping-table entries (including expired ones not yet purged).
    pub fn binding_count(&self) -> usize {
        self.bindings.len()
    }

    /// Records outbound traffic from `internal` towards `remote`, creating or refreshing the
    /// corresponding mapping. Refreshing only ever extends a mapping's lifetime: a packet
    /// carrying an older timestamp (which cannot happen on the engine's monotonic clock but
    /// can in hand-written tests) never shortens it.
    pub fn record_outbound(
        &mut self,
        internal: NodeId,
        remote: NodeId,
        remote_ip: Ip,
        now: SimTime,
    ) {
        let (internal, remote) = (id32(internal), id32(remote));
        let entry = self
            .bindings
            .entry(pair_key(internal, remote))
            .or_insert(Binding {
                internal,
                remote,
                remote_ip,
                last_refreshed: now,
            });
        entry.remote_ip = remote_ip;
        entry.last_refreshed = entry.last_refreshed.max(now);
        // Maintain the newest-binding index the configured policy queries (monotone max,
        // so the same never-shortens rule applies).
        match self.config.filtering {
            FilteringPolicy::EndpointIndependent => {
                let newest = self.newest_per_internal.entry(internal).or_insert(now);
                *newest = (*newest).max(now);
            }
            FilteringPolicy::AddressDependent => {
                let newest = self
                    .newest_per_remote_ip
                    .entry(ip_key(internal, remote_ip))
                    .or_insert(now);
                *newest = (*newest).max(now);
            }
            FilteringPolicy::AddressAndPortDependent => {}
        }
        self.refresh_or_allocate_mapping(internal, remote, remote_ip, now);
        self.ops_since_purge += 1;
        if self.ops_since_purge >= PURGE_EVERY_OPS {
            self.purge_expired(now);
        }
    }

    /// Key of the external mapping `(internal → remote)` under the configured
    /// [`MappingPolicy`].
    fn mapping_key(&self, internal: u32, remote: u32, remote_ip: Ip) -> u64 {
        match self.config.mapping {
            MappingPolicy::EndpointIndependent => internal as u64,
            MappingPolicy::AddressDependent => ip_key(internal, remote_ip),
            MappingPolicy::AddressAndPortDependent => pair_key(internal, remote),
        }
    }

    /// Upserts the external mapping for an outbound packet. The hot path (a live mapping
    /// already exists — under the default endpoint-independent policy that is every
    /// packet after a node's first) is one hash lookup and a timestamp max, with no
    /// allocation; only a genuinely new or expired-and-torn-down flow allocates an
    /// external endpoint.
    fn refresh_or_allocate_mapping(
        &mut self,
        internal: u32,
        remote: u32,
        remote_ip: Ip,
        now: SimTime,
    ) {
        let key = self.mapping_key(internal, remote, remote_ip);
        let timeout = self.config.mapping_timeout;
        if let Some(m) = self.mappings.get_mut(&key) {
            if !m.is_expired(now, timeout) {
                m.last_refreshed = m.last_refreshed.max(now);
                return;
            }
            // The NAT already tore the expired mapping down; this packet allocates a
            // fresh external endpoint (which may or may not coincide with the old one).
            let stale = *m;
            self.used_ports
                .remove(&port_key(stale.ip_index, stale.port));
            self.mappings.remove(&key);
        }
        let ip_index = self.assign_pool_index(internal);
        let port = self.allocate_port(ip_index, internal_source_port(internal));
        self.used_ports.insert(port_key(ip_index, port));
        self.mappings.insert(
            key,
            ExternalMapping {
                internal,
                ip_index,
                port,
                last_refreshed: now,
            },
        );
    }

    /// Picks the pool address for a new mapping of `internal`.
    fn assign_pool_index(&mut self, internal: u32) -> u8 {
        match self.config.pooling {
            PoolingBehavior::Paired => (internal as usize % self.external_ips.len()) as u8,
            PoolingBehavior::Arbitrary => {
                let index = self.arbitrary_cursor as usize % self.external_ips.len();
                self.arbitrary_cursor = self.arbitrary_cursor.wrapping_add(1);
                index as u8
            }
        }
    }

    /// Allocates an external port on pool address `ip_index`, wanting `want` (the internal
    /// source port). Preservation tries `want` first; otherwise a deterministic cursor
    /// scan finds the next free port, stepping by 2 when parity must be kept. If the
    /// 64k-port space is genuinely exhausted the gateway falls back to port overloading
    /// (reusing `want`), which RFC 4787 discourages but which must not wedge the
    /// simulation.
    fn allocate_port(&mut self, ip_index: u8, want: u16) -> u16 {
        if self.config.port_preservation && !self.used_ports.contains(&port_key(ip_index, want)) {
            return want;
        }
        let step: u16 = if self.config.port_parity { 2 } else { 1 };
        let parity = want & 1;
        let mut candidate = if self.config.port_preservation {
            want
        } else {
            self.next_port
        };
        if candidate < FIRST_NAT_PORT {
            candidate = FIRST_NAT_PORT;
        }
        if self.config.port_parity && (candidate & 1) != parity {
            candidate = candidate.checked_add(1).unwrap_or(FIRST_NAT_PORT | parity);
        }
        let span = u16::MAX as u32 + 1 - FIRST_NAT_PORT as u32;
        let mut remaining = span / step as u32 + 1;
        while remaining > 0 {
            if !self.used_ports.contains(&port_key(ip_index, candidate)) {
                if !self.config.port_preservation {
                    self.next_port = match candidate.checked_add(step) {
                        Some(next) => next,
                        None => FIRST_NAT_PORT,
                    };
                }
                return candidate;
            }
            candidate = match candidate.checked_add(step) {
                Some(next) => next,
                None => {
                    if self.config.port_parity {
                        FIRST_NAT_PORT | parity
                    } else {
                        FIRST_NAT_PORT
                    }
                }
            };
            remaining -= 1;
        }
        want
    }

    /// The external endpoint remote peers observe for traffic from `internal` towards
    /// `(remote, remote_ip)`, or `None` if no live mapping exists at `now`. Under
    /// endpoint-independent mapping the result is destination-independent — the property
    /// hole-punching relies on; under the dependent policies distinct destinations see
    /// distinct endpoints.
    pub fn external_endpoint(
        &self,
        internal: NodeId,
        remote: NodeId,
        remote_ip: Ip,
        now: SimTime,
    ) -> Option<Endpoint> {
        let key = self.mapping_key(id32(internal), id32(remote), remote_ip);
        let m = self.mappings.get(&key)?;
        if m.is_expired(now, self.config.mapping_timeout) {
            return None;
        }
        Some(Endpoint::new(
            self.external_ips[m.ip_index as usize],
            m.port,
        ))
    }

    /// Number of live-or-not-yet-purged external mappings.
    pub fn mapping_count(&self) -> usize {
        self.mappings.len()
    }

    /// Decides whether an inbound packet from `from` (with observed source address
    /// `from_ip`) addressed to the internal node `internal` passes the gateway at `now`.
    pub fn accepts_inbound(
        &self,
        internal: NodeId,
        from: NodeId,
        from_ip: Ip,
        now: SimTime,
    ) -> bool {
        if self.config.upnp_enabled {
            // An explicitly mapped UPnP port behaves like a public endpoint.
            return true;
        }
        let timeout = self.config.mapping_timeout;
        let fresh = |refreshed: &SimTime| now.saturating_since(*refreshed) <= timeout;
        let internal = id32(internal);
        match self.config.filtering {
            FilteringPolicy::EndpointIndependent => {
                self.newest_per_internal.get(&internal).is_some_and(fresh)
            }
            FilteringPolicy::AddressDependent => self
                .newest_per_remote_ip
                .get(&ip_key(internal, from_ip))
                .is_some_and(fresh),
            FilteringPolicy::AddressAndPortDependent => self
                .bindings
                .get(&pair_key(internal, id32(from)))
                .map(|b| !b.is_expired(now, timeout))
                .unwrap_or(false),
        }
    }

    /// Removes every binding that has expired at `now`. Called opportunistically to bound
    /// the size of the mapping table in long simulations.
    pub fn purge_expired(&mut self, now: SimTime) {
        let timeout = self.config.mapping_timeout;
        self.bindings.retain(|_, b| !b.is_expired(now, timeout));
        let fresh = |refreshed: &SimTime| now.saturating_since(*refreshed) <= timeout;
        self.newest_per_internal.retain(|_, t| fresh(t));
        self.newest_per_remote_ip.retain(|_, t| fresh(t));
        let used_ports = &mut self.used_ports;
        self.mappings.retain(|_, m| {
            let keep = !m.is_expired(now, timeout);
            if !keep {
                used_ports.remove(&port_key(m.ip_index, m.port));
            }
            keep
        });
        self.ops_since_purge = 0;
    }

    /// Power-cycles the gateway at `now`: the entire mapping table — and with it both
    /// newest-binding indexes — is lost, exactly as on a consumer router reboot. The
    /// configuration and the public address survive (ISPs commonly hand the same lease
    /// back; a reboot that also changes the address is modelled as a reboot followed by
    /// [`NatTopology::migrate_node`](crate::NatTopology::migrate_node)).
    ///
    /// Clearing the indexes together with the table keeps the O(1)-filter invariant —
    /// "the newest entry decides" — trivially intact: both sides are empty, so every
    /// inbound packet is unsolicited until new outbound traffic re-creates mappings.
    pub fn reboot(&mut self, now: SimTime) {
        self.bindings.clear();
        self.newest_per_internal.clear();
        self.newest_per_remote_ip.clear();
        self.mappings.clear();
        self.used_ports.clear();
        self.next_port = FIRST_NAT_PORT;
        self.arbitrary_cursor = 0;
        self.ops_since_purge = 0;
        self.last_reboot = Some(now);
        self.reboots += 1;
    }

    /// Time of the most recent reboot, if the gateway ever rebooted.
    pub fn last_reboot(&self) -> Option<SimTime> {
        self.last_reboot
    }

    /// Number of reboots this gateway has been through.
    pub fn reboot_count(&self) -> u64 {
        self.reboots
    }

    /// Returns `true` if the gateway rebooted within one mapping-timeout before `now` —
    /// the window in which an inbound block is plausibly a *stale-binding* failure (the
    /// sender refreshed a mapping recently enough that it would still be alive had the
    /// reboot not wiped it).
    pub fn rebooted_within_timeout(&self, now: SimTime) -> bool {
        self.last_reboot
            .is_some_and(|at| now.saturating_since(at) <= self.config.mapping_timeout)
    }

    /// Changes the inbound filtering policy at runtime (scripted NAT-dynamics: firmware
    /// update, config change, or the ISP swapping CPE behaviour).
    ///
    /// The newest-binding indexes are policy-specific — [`record_outbound`] only
    /// maintains the index the *configured* policy queries — so a policy change rebuilds
    /// the index the new policy needs from the exact mapping table. The rebuild carries
    /// expired entries along unfiltered (it has no clock): that is sound because every
    /// index entry records the *newest* refresh time of its key, expiry is monotone in
    /// the refresh time, and [`accepts_inbound`](Self::accepts_inbound) re-checks expiry
    /// against the query instant — an expired newest entry answers exactly as no entry
    /// would.
    ///
    /// [`record_outbound`]: Self::record_outbound
    pub fn set_filtering(&mut self, policy: FilteringPolicy) {
        if policy == self.config.filtering {
            return;
        }
        self.config.filtering = policy;
        self.rebuild_newest_indexes();
    }

    /// Replaces the whole configuration at runtime (scripted gateway reconfiguration:
    /// firmware swap, CPE replacement, consolidation behind a carrier-grade NAT).
    ///
    /// The exact binding table — and therefore the filtering behaviour towards flows the
    /// new policy still admits — survives, and the newest-binding index the new filtering
    /// policy queries is rebuilt from it (same soundness argument as
    /// [`set_filtering`](Self::set_filtering)). The external *mapping* table does not
    /// survive: its keys are policy-specific, and a real NAT that changes mapping
    /// behaviour renumbers its external endpoints anyway, so the table, the used-port set
    /// and both allocation cursors reset. If the new config wants a larger address pool
    /// than the gateway owns, the caller (the topology) must
    /// [`extend_pool`](Self::extend_pool) first — the gateway itself cannot allocate
    /// addresses.
    pub fn set_config(&mut self, config: NatGatewayConfig) {
        self.config = config;
        self.mappings.clear();
        self.used_ports.clear();
        self.next_port = FIRST_NAT_PORT;
        self.arbitrary_cursor = 0;
        self.rebuild_newest_indexes();
    }

    /// Rebuilds the newest-binding index the configured filtering policy queries from the
    /// exact binding table; see [`set_filtering`](Self::set_filtering) for why carrying
    /// expired entries along unfiltered is sound.
    fn rebuild_newest_indexes(&mut self) {
        self.newest_per_internal.clear();
        self.newest_per_remote_ip.clear();
        match self.config.filtering {
            FilteringPolicy::EndpointIndependent => {
                for binding in self.bindings.values() {
                    let newest = self
                        .newest_per_internal
                        .entry(binding.internal)
                        .or_insert(binding.last_refreshed);
                    *newest = (*newest).max(binding.last_refreshed);
                }
            }
            FilteringPolicy::AddressDependent => {
                for binding in self.bindings.values() {
                    let newest = self
                        .newest_per_remote_ip
                        .entry(ip_key(binding.internal, binding.remote_ip))
                        .or_insert(binding.last_refreshed);
                    *newest = (*newest).max(binding.last_refreshed);
                }
            }
            FilteringPolicy::AddressAndPortDependent => {}
        }
    }

    /// Removes every binding owned by `internal` (the node left the system).
    pub fn remove_internal(&mut self, internal: NodeId) {
        let internal = id32(internal);
        self.bindings.retain(|_, b| b.internal != internal);
        self.newest_per_internal.remove(&internal);
        self.newest_per_remote_ip
            .retain(|key, _| (key >> 32) as u32 != internal);
        let used_ports = &mut self.used_ports;
        self.mappings.retain(|_, m| {
            let keep = m.internal != internal;
            if !keep {
                used_ports.remove(&port_key(m.ip_index, m.port));
            }
            keep
        });
    }

    /// Iterates over the current mapping-table entries.
    pub fn bindings(&self) -> impl Iterator<Item = &Binding> {
        self.bindings.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gw(policy: FilteringPolicy) -> NatGateway {
        NatGateway::new(
            Ip::public(100),
            NatGatewayConfig::with_filtering(policy).mapping_timeout(SimDuration::from_secs(30)),
        )
    }

    const INSIDE: NodeId = NodeId::new(1);
    const PEER_A: NodeId = NodeId::new(10);
    const PEER_B: NodeId = NodeId::new(11);

    #[test]
    fn unsolicited_inbound_is_blocked_for_all_policies() {
        for policy in FilteringPolicy::ALL {
            let g = gw(policy);
            assert!(
                !g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::ZERO),
                "{policy} must block unsolicited traffic"
            );
        }
    }

    #[test]
    fn endpoint_independent_opens_to_everyone_after_any_outbound() {
        let mut g = gw(FilteringPolicy::EndpointIndependent);
        g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::ZERO);
        assert!(g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(1)));
        // A completely different peer can also get through.
        assert!(g.accepts_inbound(INSIDE, PEER_B, Ip::public(3), SimTime::from_secs(1)));
    }

    #[test]
    fn address_dependent_requires_matching_remote_ip() {
        let mut g = gw(FilteringPolicy::AddressDependent);
        g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::ZERO);
        // Same IP (e.g. another node behind the same remote gateway) passes.
        assert!(g.accepts_inbound(INSIDE, PEER_B, Ip::public(2), SimTime::from_secs(1)));
        // A different IP does not.
        assert!(!g.accepts_inbound(INSIDE, PEER_B, Ip::public(3), SimTime::from_secs(1)));
    }

    #[test]
    fn address_and_port_dependent_requires_exact_peer() {
        let mut g = gw(FilteringPolicy::AddressAndPortDependent);
        g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::ZERO);
        assert!(g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(1)));
        assert!(!g.accepts_inbound(INSIDE, PEER_B, Ip::public(2), SimTime::from_secs(1)));
    }

    #[test]
    fn mappings_expire_after_timeout() {
        let mut g = gw(FilteringPolicy::AddressAndPortDependent);
        g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::ZERO);
        assert!(g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(30)));
        assert!(!g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(31)));
    }

    #[test]
    fn refreshing_outbound_extends_the_mapping() {
        let mut g = gw(FilteringPolicy::AddressAndPortDependent);
        g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::ZERO);
        g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(25));
        assert!(g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(50)));
    }

    #[test]
    fn upnp_gateways_accept_everything() {
        let mut g = NatGateway::new(Ip::public(100), NatGatewayConfig::default().upnp(true));
        assert!(g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::ZERO));
        g.purge_expired(SimTime::from_secs(1_000));
        assert!(g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(2_000)));
    }

    #[test]
    fn purge_and_remove_internal_clean_the_table() {
        let mut g = gw(FilteringPolicy::AddressAndPortDependent);
        g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::ZERO);
        g.record_outbound(
            NodeId::new(2),
            PEER_A,
            Ip::public(2),
            SimTime::from_secs(100),
        );
        assert_eq!(g.binding_count(), 2);
        g.purge_expired(SimTime::from_secs(100));
        assert_eq!(g.binding_count(), 1);
        g.remove_internal(NodeId::new(2));
        assert_eq!(g.binding_count(), 0);
    }

    #[test]
    fn reboot_wipes_bindings_for_every_policy() {
        for policy in FilteringPolicy::ALL {
            let mut g = gw(policy);
            g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::ZERO);
            assert!(g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(1)));
            g.reboot(SimTime::from_secs(2));
            assert_eq!(g.binding_count(), 0);
            assert!(
                !g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(3)),
                "{policy}: a reboot must drop the reply path even though the binding \
                 would only have expired at t=30s"
            );
            assert_eq!(g.last_reboot(), Some(SimTime::from_secs(2)));
            assert_eq!(g.reboot_count(), 1);
        }
    }

    #[test]
    fn newest_binding_index_is_consistent_after_a_reboot() {
        // The reboot-vs-expiry interaction the O(1) filter rework must survive: a wiped
        // index must not remember pre-reboot refresh times, and post-reboot outbound
        // traffic must rebuild it from scratch with post-reboot times only.
        for policy in [
            FilteringPolicy::EndpointIndependent,
            FilteringPolicy::AddressDependent,
        ] {
            let mut g = gw(policy);
            // Refresh generously before the reboot: without the wipe these mappings
            // would stay alive until t=55s.
            g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(25));
            g.reboot(SimTime::from_secs(26));
            // Rebuild with a single early outbound; the newest binding is now t=27s, so
            // the reply path must close at t=57s — NOT at the pre-reboot t=55s horizon,
            // and NOT stay open because a stale index entry survived the wipe.
            g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(27));
            assert!(g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(57)));
            assert!(
                !g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(58)),
                "{policy}: expiry must be measured from the post-reboot refresh"
            );
        }
    }

    #[test]
    fn reboot_then_purge_then_refresh_keeps_table_and_index_in_lockstep() {
        let mut g = gw(FilteringPolicy::EndpointIndependent);
        g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::ZERO);
        g.record_outbound(NodeId::new(2), PEER_B, Ip::public(3), SimTime::from_secs(5));
        g.reboot(SimTime::from_secs(10));
        // A purge right after the wipe must be a no-op on an empty table.
        g.purge_expired(SimTime::from_secs(10));
        assert_eq!(g.binding_count(), 0);
        assert!(!g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(10)));
        // Only the re-created mapping opens up again.
        g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(11));
        assert!(g.accepts_inbound(INSIDE, PEER_B, Ip::public(9), SimTime::from_secs(12)));
        assert_eq!(g.binding_count(), 1);
    }

    #[test]
    fn rebooted_within_timeout_tracks_the_stale_binding_window() {
        let mut g = gw(FilteringPolicy::AddressAndPortDependent);
        assert!(!g.rebooted_within_timeout(SimTime::from_secs(100)));
        g.reboot(SimTime::from_secs(100));
        assert!(g.rebooted_within_timeout(SimTime::from_secs(100)));
        assert!(g.rebooted_within_timeout(SimTime::from_secs(130)));
        assert!(
            !g.rebooted_within_timeout(SimTime::from_secs(131)),
            "beyond one mapping timeout, a block can no longer be blamed on the reboot"
        );
    }

    #[test]
    fn policy_change_rebuilds_the_index_the_new_policy_needs() {
        // Start port-dependent: record_outbound maintains no newest index at all.
        let mut g = gw(FilteringPolicy::AddressAndPortDependent);
        g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::ZERO);
        g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(10));
        assert!(!g.accepts_inbound(INSIDE, PEER_B, Ip::public(2), SimTime::from_secs(11)));
        // Relax to address-dependent: the (internal, remote ip) index must be rebuilt
        // from the table, carrying the *newest* refresh time (t=10s, not t=0).
        g.set_filtering(FilteringPolicy::AddressDependent);
        assert_eq!(g.config().filtering, FilteringPolicy::AddressDependent);
        assert!(g.accepts_inbound(INSIDE, PEER_B, Ip::public(2), SimTime::from_secs(40)));
        assert!(!g.accepts_inbound(INSIDE, PEER_B, Ip::public(2), SimTime::from_secs(41)));
        // Relax further to endpoint-independent: any remote passes until expiry.
        g.set_filtering(FilteringPolicy::EndpointIndependent);
        assert!(g.accepts_inbound(INSIDE, PEER_B, Ip::public(9), SimTime::from_secs(40)));
        // Tighten back to port-dependent: only the exact (internal, remote) binding
        // decides again, and the stale relaxed indexes must not leak through.
        g.set_filtering(FilteringPolicy::AddressAndPortDependent);
        assert!(g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(40)));
        assert!(!g.accepts_inbound(INSIDE, PEER_B, Ip::public(2), SimTime::from_secs(12)));
    }

    #[test]
    fn binding_expiry_is_inclusive_of_timeout() {
        let b = Binding::new(INSIDE, PEER_A, Ip::public(1), SimTime::ZERO);
        assert!(!b.is_expired(SimTime::from_secs(30), SimDuration::from_secs(30)));
        assert!(b.is_expired(SimTime::from_millis(30_001), SimDuration::from_secs(30)));
    }

    #[test]
    fn bindings_are_compact_and_round_trip_their_fields() {
        // The u32-packed entry is 24 bytes; the padded NodeId-based layout was 32. At the
        // 1M-node tier the mapping tables are among the largest NAT-layer allocations.
        assert!(std::mem::size_of::<Binding>() <= 24);
        let b = Binding::new(INSIDE, PEER_A, Ip::public(7), SimTime::from_secs(3));
        assert_eq!(b.internal(), INSIDE);
        assert_eq!(b.remote(), PEER_A);
        assert_eq!(b.remote_ip(), Ip::public(7));
        assert_eq!(b.last_refreshed(), SimTime::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "u32 key space")]
    fn oversized_node_ids_are_rejected_by_the_mapping_table() {
        let mut g = gw(FilteringPolicy::EndpointIndependent);
        g.record_outbound(NodeId::new(1 << 32), PEER_A, Ip::public(2), SimTime::ZERO);
    }
}
