//! A single NAT gateway (or firewall) and its UDP mapping table.

use std::collections::HashMap;

use croupier_simulator::{NodeId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::address::Ip;
use crate::filtering::FilteringPolicy;

/// Static configuration of a NAT gateway.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NatGatewayConfig {
    /// Inbound filtering policy.
    pub filtering: FilteringPolicy,
    /// How long a UDP mapping survives without outbound traffic refreshing it.
    pub mapping_timeout: SimDuration,
    /// Whether the gateway supports the UPnP Internet Gateway Device protocol. Nodes behind
    /// a UPnP gateway can map a public port explicitly and therefore behave as public nodes.
    pub upnp_enabled: bool,
}

impl Default for NatGatewayConfig {
    fn default() -> Self {
        NatGatewayConfig {
            filtering: FilteringPolicy::default(),
            mapping_timeout: SimDuration::from_secs(60),
            upnp_enabled: false,
        }
    }
}

impl NatGatewayConfig {
    /// Creates a config with the given filtering policy and the default 60 s mapping
    /// timeout.
    pub fn with_filtering(filtering: FilteringPolicy) -> Self {
        NatGatewayConfig {
            filtering,
            ..NatGatewayConfig::default()
        }
    }

    /// Sets the mapping timeout.
    pub fn mapping_timeout(mut self, timeout: SimDuration) -> Self {
        self.mapping_timeout = timeout;
        self
    }

    /// Enables or disables UPnP IGD support.
    pub fn upnp(mut self, enabled: bool) -> Self {
        self.upnp_enabled = enabled;
        self
    }
}

/// One entry of a gateway's UDP mapping table: internal host `internal` has sent traffic to
/// remote node `remote` (whose observed address is `remote_ip`), most recently at
/// `last_refreshed`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Binding {
    /// The internal (private) node that created the mapping.
    pub internal: NodeId,
    /// The remote node the mapping points at.
    pub remote: NodeId,
    /// The remote node's publicly observable IP address.
    pub remote_ip: Ip,
    /// Last time outbound traffic refreshed the mapping.
    pub last_refreshed: SimTime,
}

impl Binding {
    /// Returns `true` if the binding has expired at time `now` under `timeout`.
    pub fn is_expired(&self, now: SimTime, timeout: SimDuration) -> bool {
        now.saturating_since(self.last_refreshed) > timeout
    }
}

/// A NAT gateway: a public IP address plus a mapping table shared by the private nodes that
/// sit behind it.
///
/// # Examples
///
/// ```
/// use croupier_nat::{FilteringPolicy, Ip, NatGateway, NatGatewayConfig};
/// use croupier_simulator::{NodeId, SimDuration, SimTime};
///
/// let cfg = NatGatewayConfig::with_filtering(FilteringPolicy::AddressAndPortDependent)
///     .mapping_timeout(SimDuration::from_secs(30));
/// let mut gw = NatGateway::new(Ip::public(9), cfg);
/// let inside = NodeId::new(1);
/// let outside = NodeId::new(2);
///
/// // Unsolicited inbound traffic is dropped.
/// assert!(!gw.accepts_inbound(inside, outside, Ip::public(3), SimTime::ZERO));
/// // After the internal node sends out, the reverse path opens until the mapping expires.
/// gw.record_outbound(inside, outside, Ip::public(3), SimTime::ZERO);
/// assert!(gw.accepts_inbound(inside, outside, Ip::public(3), SimTime::from_secs(10)));
/// assert!(!gw.accepts_inbound(inside, outside, Ip::public(3), SimTime::from_secs(100)));
/// ```
#[derive(Clone, Debug)]
pub struct NatGateway {
    public_ip: Ip,
    config: NatGatewayConfig,
    bindings: HashMap<(NodeId, NodeId), Binding>,
}

impl NatGateway {
    /// Creates a gateway with the given public address and configuration.
    pub fn new(public_ip: Ip, config: NatGatewayConfig) -> Self {
        NatGateway {
            public_ip,
            config,
            bindings: HashMap::new(),
        }
    }

    /// The gateway's public IP address (what remote peers observe as the packet source).
    pub fn public_ip(&self) -> Ip {
        self.public_ip
    }

    /// The gateway's configuration.
    pub fn config(&self) -> &NatGatewayConfig {
        &self.config
    }

    /// Number of mapping-table entries (including expired ones not yet purged).
    pub fn binding_count(&self) -> usize {
        self.bindings.len()
    }

    /// Records outbound traffic from `internal` towards `remote`, creating or refreshing the
    /// corresponding mapping. Refreshing only ever extends a mapping's lifetime: a packet
    /// carrying an older timestamp (which cannot happen on the engine's monotonic clock but
    /// can in hand-written tests) never shortens it.
    pub fn record_outbound(
        &mut self,
        internal: NodeId,
        remote: NodeId,
        remote_ip: Ip,
        now: SimTime,
    ) {
        let entry = self.bindings.entry((internal, remote)).or_insert(Binding {
            internal,
            remote,
            remote_ip,
            last_refreshed: now,
        });
        entry.remote_ip = remote_ip;
        entry.last_refreshed = entry.last_refreshed.max(now);
    }

    /// Decides whether an inbound packet from `from` (with observed source address
    /// `from_ip`) addressed to the internal node `internal` passes the gateway at `now`.
    pub fn accepts_inbound(
        &self,
        internal: NodeId,
        from: NodeId,
        from_ip: Ip,
        now: SimTime,
    ) -> bool {
        if self.config.upnp_enabled {
            // An explicitly mapped UPnP port behaves like a public endpoint.
            return true;
        }
        let timeout = self.config.mapping_timeout;
        match self.config.filtering {
            FilteringPolicy::EndpointIndependent => self
                .bindings
                .values()
                .any(|b| b.internal == internal && !b.is_expired(now, timeout)),
            FilteringPolicy::AddressDependent => self.bindings.values().any(|b| {
                b.internal == internal && b.remote_ip == from_ip && !b.is_expired(now, timeout)
            }),
            FilteringPolicy::AddressAndPortDependent => self
                .bindings
                .get(&(internal, from))
                .map(|b| !b.is_expired(now, timeout))
                .unwrap_or(false),
        }
    }

    /// Removes every binding that has expired at `now`. Called opportunistically to bound
    /// the size of the mapping table in long simulations.
    pub fn purge_expired(&mut self, now: SimTime) {
        let timeout = self.config.mapping_timeout;
        self.bindings.retain(|_, b| !b.is_expired(now, timeout));
    }

    /// Removes every binding owned by `internal` (the node left the system).
    pub fn remove_internal(&mut self, internal: NodeId) {
        self.bindings.retain(|_, b| b.internal != internal);
    }

    /// Iterates over the current mapping-table entries.
    pub fn bindings(&self) -> impl Iterator<Item = &Binding> {
        self.bindings.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gw(policy: FilteringPolicy) -> NatGateway {
        NatGateway::new(
            Ip::public(100),
            NatGatewayConfig::with_filtering(policy).mapping_timeout(SimDuration::from_secs(30)),
        )
    }

    const INSIDE: NodeId = NodeId::new(1);
    const PEER_A: NodeId = NodeId::new(10);
    const PEER_B: NodeId = NodeId::new(11);

    #[test]
    fn unsolicited_inbound_is_blocked_for_all_policies() {
        for policy in FilteringPolicy::ALL {
            let g = gw(policy);
            assert!(
                !g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::ZERO),
                "{policy} must block unsolicited traffic"
            );
        }
    }

    #[test]
    fn endpoint_independent_opens_to_everyone_after_any_outbound() {
        let mut g = gw(FilteringPolicy::EndpointIndependent);
        g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::ZERO);
        assert!(g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(1)));
        // A completely different peer can also get through.
        assert!(g.accepts_inbound(INSIDE, PEER_B, Ip::public(3), SimTime::from_secs(1)));
    }

    #[test]
    fn address_dependent_requires_matching_remote_ip() {
        let mut g = gw(FilteringPolicy::AddressDependent);
        g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::ZERO);
        // Same IP (e.g. another node behind the same remote gateway) passes.
        assert!(g.accepts_inbound(INSIDE, PEER_B, Ip::public(2), SimTime::from_secs(1)));
        // A different IP does not.
        assert!(!g.accepts_inbound(INSIDE, PEER_B, Ip::public(3), SimTime::from_secs(1)));
    }

    #[test]
    fn address_and_port_dependent_requires_exact_peer() {
        let mut g = gw(FilteringPolicy::AddressAndPortDependent);
        g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::ZERO);
        assert!(g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(1)));
        assert!(!g.accepts_inbound(INSIDE, PEER_B, Ip::public(2), SimTime::from_secs(1)));
    }

    #[test]
    fn mappings_expire_after_timeout() {
        let mut g = gw(FilteringPolicy::AddressAndPortDependent);
        g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::ZERO);
        assert!(g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(30)));
        assert!(!g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(31)));
    }

    #[test]
    fn refreshing_outbound_extends_the_mapping() {
        let mut g = gw(FilteringPolicy::AddressAndPortDependent);
        g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::ZERO);
        g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(25));
        assert!(g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(50)));
    }

    #[test]
    fn upnp_gateways_accept_everything() {
        let mut g = NatGateway::new(Ip::public(100), NatGatewayConfig::default().upnp(true));
        assert!(g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::ZERO));
        g.purge_expired(SimTime::from_secs(1_000));
        assert!(g.accepts_inbound(INSIDE, PEER_A, Ip::public(2), SimTime::from_secs(2_000)));
    }

    #[test]
    fn purge_and_remove_internal_clean_the_table() {
        let mut g = gw(FilteringPolicy::AddressAndPortDependent);
        g.record_outbound(INSIDE, PEER_A, Ip::public(2), SimTime::ZERO);
        g.record_outbound(
            NodeId::new(2),
            PEER_A,
            Ip::public(2),
            SimTime::from_secs(100),
        );
        assert_eq!(g.binding_count(), 2);
        g.purge_expired(SimTime::from_secs(100));
        assert_eq!(g.binding_count(), 1);
        g.remove_internal(NodeId::new(2));
        assert_eq!(g.binding_count(), 0);
    }

    #[test]
    fn binding_expiry_is_inclusive_of_timeout() {
        let b = Binding {
            internal: INSIDE,
            remote: PEER_A,
            remote_ip: Ip::public(1),
            last_refreshed: SimTime::ZERO,
        };
        assert!(!b.is_expired(SimTime::from_secs(30), SimDuration::from_secs(30)));
        assert!(b.is_expired(SimTime::from_millis(30_001), SimDuration::from_secs(30)));
    }
}
