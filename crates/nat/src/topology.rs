//! Assignment of nodes to public addresses or NAT gateways, and the resulting
//! network-reachability filter.

use std::sync::{Arc, Mutex};

use croupier_simulator::{DeliveryFilter, DeliveryVerdict, NatClass, NodeId, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::address::{Endpoint, Ip};
use crate::dynamics::{AppliedEvent, NatDynamicsEvent};
use crate::filtering::FilteringPolicy;
use crate::gateway::{NatGateway, NatGatewayConfig};

/// Identifier of a NAT gateway inside a [`NatTopology`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct GatewayId(u64);

/// The address situation of one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NatProfile {
    /// The node owns a globally reachable address.
    Public {
        /// The node's public IP.
        ip: Ip,
    },
    /// The node sits behind a NAT gateway.
    Private {
        /// The gateway in front of the node.
        gateway: GatewayId,
        /// The node's RFC1918-like local address.
        local_ip: Ip,
    },
}

/// Exposes the addressing facts a deployed protocol could observe through its sockets:
/// its own local address, the source address a remote peer sees, and whether its gateway
/// answers UPnP IGD requests.
///
/// The NAT-type identification protocol of the paper (§V) is written against this trait.
pub trait AddressInfo {
    /// The address the node itself is bound to (a private address behind a NAT).
    fn local_ip(&self, node: NodeId) -> Option<Ip>;

    /// The source address a remote peer observes on packets sent by `node`.
    fn observed_ip(&self, node: NodeId) -> Option<Ip>;

    /// Whether the node can establish a port mapping through UPnP IGD.
    fn supports_upnp(&self, node: NodeId) -> bool;
}

/// Aggregate statistics about a topology.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologyStats {
    /// Nodes with globally reachable addresses.
    pub public_nodes: usize,
    /// Nodes behind NAT gateways without UPnP.
    pub private_nodes: usize,
    /// Nodes behind UPnP-enabled gateways (they behave as public nodes).
    pub upnp_nodes: usize,
    /// Messages blocked by NAT filtering so far.
    pub blocked_messages: u64,
    /// Subset of `blocked_messages` attributable to a recent gateway reboot: the
    /// destination's gateway rebooted within one mapping timeout before the block, so the
    /// sender was plausibly talking to a binding the reboot wiped.
    pub stale_binding_failures: u64,
    /// Subset of `blocked_messages` dropped because both endpoints sit behind the same
    /// hairpin-incapable gateway (RFC 4787 REQ-9 not met).
    pub hairpin_blocked: u64,
    /// Nodes currently marked offline by a scripted partition/outage.
    pub offline_nodes: usize,
}

impl TopologyStats {
    /// The effective public/private ratio ω = |U| / (|U| + |V|), counting UPnP nodes as
    /// public (they are reachable).
    pub fn public_private_ratio(&self) -> f64 {
        let public = (self.public_nodes + self.upnp_nodes) as f64;
        let total = (self.public_nodes + self.upnp_nodes + self.private_nodes) as f64;
        if total == 0.0 {
            0.0
        } else {
            public / total
        }
    }
}

struct Inner {
    /// Node profiles in a dense slot table indexed by the raw node id (ids are assigned
    /// densely from zero throughout the workspace), so the two profile resolutions on
    /// every delivery are plain indexed loads instead of hash lookups.
    profiles: Vec<Option<NatProfile>>,
    /// Number of `Some` entries in `profiles`.
    profile_count: usize,
    /// Gateways indexed by their sequentially allocated [`GatewayId`].
    gateways: Vec<NatGateway>,
    default_config: NatGatewayConfig,
    filtering_mix: Vec<(FilteringPolicy, f64)>,
    rng: SmallRng,
    next_public_ip: u32,
    next_private_ip: u32,
    blocked_messages: u64,
    /// Blocked messages attributable to a recent gateway reboot (see
    /// [`TopologyStats::stale_binding_failures`]).
    stale_binding_failures: u64,
    /// Blocked messages dropped by a hairpin-incapable gateway (see
    /// [`TopologyStats::hairpin_blocked`]).
    hairpin_blocked: u64,
    /// Offline flags in the same dense slot layout as `profiles`; a scripted regional
    /// outage/partition marks nodes here without touching their NAT state.
    offline: Vec<bool>,
    /// Number of `true` entries in `offline`.
    offline_count: usize,
}

impl Inner {
    fn allocate_public_ip(&mut self) -> Ip {
        let ip = Ip::public(self.next_public_ip);
        self.next_public_ip += 1;
        ip
    }

    fn allocate_private_ip(&mut self) -> Ip {
        let ip = Ip::private(self.next_private_ip);
        self.next_private_ip += 1;
        ip
    }

    fn pick_filtering(&mut self) -> FilteringPolicy {
        if self.filtering_mix.is_empty() {
            return self.default_config.filtering;
        }
        let total: f64 = self.filtering_mix.iter().map(|(_, w)| *w).sum();
        let mut draw = self.rng.gen_range(0.0..total);
        for (policy, weight) in &self.filtering_mix {
            if draw < *weight {
                return *policy;
            }
            draw -= *weight;
        }
        self.filtering_mix
            .last()
            .map(|(p, _)| *p)
            .unwrap_or(self.default_config.filtering)
    }

    fn add_gateway(&mut self, config: NatGatewayConfig) -> GatewayId {
        let id = GatewayId(self.gateways.len() as u64);
        let pool_size = config.pool_size.max(1) as usize;
        let pool = (0..pool_size).map(|_| self.allocate_public_ip()).collect();
        self.gateways.push(NatGateway::with_pool(pool, config));
        id
    }

    fn profile(&self, node: NodeId) -> Option<&NatProfile> {
        self.profiles.get(node.as_u64() as usize)?.as_ref()
    }

    fn set_profile(&mut self, node: NodeId, profile: NatProfile) {
        let slot = node.as_u64() as usize;
        if slot >= self.profiles.len() {
            self.profiles.resize(slot + 1, None);
        }
        if self.profiles[slot].replace(profile).is_none() {
            self.profile_count += 1;
        }
    }

    fn gateway(&self, id: GatewayId) -> Option<&NatGateway> {
        self.gateways.get(id.0 as usize)
    }

    fn gateway_mut(&mut self, id: GatewayId) -> Option<&mut NatGateway> {
        self.gateways.get_mut(id.0 as usize)
    }

    fn observed_ip(&self, node: NodeId) -> Option<Ip> {
        match self.profile(node)? {
            NatProfile::Public { ip } => Some(*ip),
            // The paired pool address: with the default one-address pool this is the
            // gateway's public IP for every node.
            NatProfile::Private { gateway, .. } => {
                self.gateway(*gateway).map(|gw| gw.external_ip_for(node))
            }
        }
    }

    fn is_offline(&self, node: NodeId) -> bool {
        self.offline
            .get(node.as_u64() as usize)
            .copied()
            .unwrap_or(false)
    }

    fn set_offline(&mut self, node: NodeId, offline: bool) {
        let slot = node.as_u64() as usize;
        if slot >= self.offline.len() {
            if !offline {
                return;
            }
            self.offline.resize(slot + 1, false);
        }
        if self.offline[slot] != offline {
            self.offline[slot] = offline;
            if offline {
                self.offline_count += 1;
            } else {
                self.offline_count -= 1;
            }
        }
    }

    /// Detaches a private node from its gateway, dropping its bindings there. The (now
    /// possibly empty) gateway stays allocated: gateway ids are dense indexes and other
    /// state (address-dependent indexes on *other* gateways keyed by its public IP) may
    /// still reference it until expiry.
    fn detach_from_gateway(&mut self, node: NodeId, gateway: GatewayId) {
        if let Some(gw) = self.gateway_mut(gateway) {
            gw.remove_internal(node);
        }
    }
}

/// The complete NAT topology of a simulated system.
///
/// `NatTopology` is cheap to clone: clones share the same underlying state, so one clone can
/// be installed as the simulation engine's [`DeliveryFilter`] while the experiment keeps
/// another to add nodes as they join or to read statistics.
///
/// See the crate-level documentation for a usage example.
#[derive(Clone)]
pub struct NatTopology {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for NatTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("NatTopology")
            .field("public_nodes", &stats.public_nodes)
            .field("private_nodes", &stats.private_nodes)
            .field("upnp_nodes", &stats.upnp_nodes)
            .finish()
    }
}

impl NatTopology {
    /// Registers `node` as a public node with its own globally reachable address.
    pub fn add_public_node(&self, node: NodeId) {
        let mut inner = self.inner.lock().expect("NAT topology lock poisoned");
        let ip = inner.allocate_public_ip();
        inner.set_profile(node, NatProfile::Public { ip });
    }

    /// Registers `node` behind its own NAT gateway, using the builder's filtering policy
    /// (or policy mix).
    pub fn add_private_node(&self, node: NodeId) {
        let mut inner = self.inner.lock().expect("NAT topology lock poisoned");
        let filtering = inner.pick_filtering();
        let config = NatGatewayConfig {
            filtering,
            ..inner.default_config
        };
        let gateway = inner.add_gateway(config);
        let local_ip = inner.allocate_private_ip();
        inner.set_profile(node, NatProfile::Private { gateway, local_ip });
    }

    /// Registers `node` behind a NAT gateway with an explicit configuration.
    pub fn add_private_node_with(&self, node: NodeId, config: NatGatewayConfig) {
        let mut inner = self.inner.lock().expect("NAT topology lock poisoned");
        let gateway = inner.add_gateway(config);
        let local_ip = inner.allocate_private_ip();
        inner.set_profile(node, NatProfile::Private { gateway, local_ip });
    }

    /// Registers `node` behind a UPnP-enabled gateway: topologically private but effectively
    /// public, because it can map a port on its gateway.
    pub fn add_upnp_node(&self, node: NodeId) {
        let config = {
            let inner = self.inner.lock().expect("NAT topology lock poisoned");
            inner.default_config.upnp(true)
        };
        self.add_private_node_with(node, config);
    }

    /// Allocates a gateway not (yet) fronting any node, for explicitly shared
    /// deployments: several private nodes behind one home router or one carrier-grade
    /// NAT. The gateway receives `config.pool_size` fresh external addresses.
    pub fn add_shared_gateway(&self, config: NatGatewayConfig) -> GatewayId {
        let mut inner = self.inner.lock().expect("NAT topology lock poisoned");
        inner.add_gateway(config)
    }

    /// Registers `node` behind the existing `gateway` (sharing it with whatever other
    /// nodes sit there). Returns `false` for an unknown gateway.
    pub fn add_private_node_behind(&self, node: NodeId, gateway: GatewayId) -> bool {
        let mut inner = self.inner.lock().expect("NAT topology lock poisoned");
        if inner.gateway(gateway).is_none() {
            return false;
        }
        let local_ip = inner.allocate_private_ip();
        inner.set_profile(node, NatProfile::Private { gateway, local_ip });
        true
    }

    /// Moves a private `node` behind the existing `gateway` (ISP consolidation behind a
    /// shared NAT): bindings at the old gateway are dropped and the node gets a fresh
    /// local address behind the new one. Returns `false` if the node is unknown or
    /// public, or the gateway unknown.
    pub fn move_node_behind(&self, node: NodeId, gateway: GatewayId) -> bool {
        let mut inner = self.inner.lock().expect("NAT topology lock poisoned");
        if inner.gateway(gateway).is_none() {
            return false;
        }
        let Some(NatProfile::Private {
            gateway: old_gateway,
            ..
        }) = inner.profile(node).copied()
        else {
            return false;
        };
        if old_gateway != gateway {
            inner.detach_from_gateway(node, old_gateway);
        }
        let local_ip = inner.allocate_private_ip();
        inner.set_profile(node, NatProfile::Private { gateway, local_ip });
        true
    }

    /// Replaces the whole configuration of `gateway` (see [`NatGateway::set_config`]),
    /// allocating any external addresses the new config's pool size needs beyond what
    /// the gateway already owns (addresses are never taken away — they are leased).
    /// Returns `false` for an unknown gateway.
    pub fn reconfigure_gateway(&self, gateway: GatewayId, config: NatGatewayConfig) -> bool {
        let mut inner = self.inner.lock().expect("NAT topology lock poisoned");
        let Some(gw) = inner.gateway(gateway) else {
            return false;
        };
        let missing = (config.pool_size.max(1) as usize).saturating_sub(gw.external_ips().len());
        for _ in 0..missing {
            let ip = inner.allocate_public_ip();
            if let Some(gw) = inner.gateway_mut(gateway) {
                gw.extend_pool(ip);
            }
        }
        if let Some(gw) = inner.gateway_mut(gateway) {
            gw.set_config(config);
        }
        true
    }

    /// Replaces the configuration of the gateway in front of `node`. Returns `false` if
    /// the node is unknown or public.
    pub fn reconfigure_gateway_of(&self, node: NodeId, config: NatGatewayConfig) -> bool {
        match self.gateway_of(node) {
            Some(gateway) => self.reconfigure_gateway(gateway, config),
            None => false,
        }
    }

    /// The external endpoint a peer observes on packets from `node` towards `remote` at
    /// `now`: the node's own address for public nodes (port = the node's internal source
    /// port), the gateway's live mapping for private ones — `None` if the node is
    /// unknown, or private with no live mapping towards `remote` (nothing was sent, or
    /// the mapping expired). Under endpoint-*dependent* mapping policies the answer
    /// genuinely varies with `remote`, which is exactly what a STUN-style observer
    /// cannot see from a single vantage point.
    pub fn external_endpoint(
        &self,
        node: NodeId,
        remote: NodeId,
        now: SimTime,
    ) -> Option<Endpoint> {
        let inner = self.inner.lock().expect("NAT topology lock poisoned");
        match inner.profile(node)? {
            NatProfile::Public { ip } => Some(Endpoint::new(
                *ip,
                crate::mapping::internal_source_port(node.as_u64() as u32),
            )),
            NatProfile::Private { gateway, .. } => {
                let remote_ip = inner.observed_ip(remote)?;
                inner
                    .gateway(*gateway)?
                    .external_endpoint(node, remote, remote_ip, now)
            }
        }
    }

    /// The default gateway configuration new private nodes receive (before any
    /// filtering-mix draw).
    pub fn default_gateway_config(&self) -> NatGatewayConfig {
        self.inner
            .lock()
            .expect("NAT topology lock poisoned")
            .default_config
    }

    /// Registers `node` with the connectivity class `class` (public nodes get their own
    /// address, private nodes their own gateway).
    pub fn add_node(&self, node: NodeId, class: NatClass) {
        match class {
            NatClass::Public => self.add_public_node(node),
            NatClass::Private => self.add_private_node(node),
        }
    }

    /// Removes a node and all mapping-table state belonging to it.
    pub fn remove_node(&self, node: NodeId) {
        let mut inner = self.inner.lock().expect("NAT topology lock poisoned");
        let slot = node.as_u64() as usize;
        let removed = inner.profiles.get_mut(slot).and_then(Option::take);
        if removed.is_some() {
            inner.profile_count -= 1;
        }
        inner.set_offline(node, false);
        if let Some(NatProfile::Private { gateway, .. }) = removed {
            inner.detach_from_gateway(node, gateway);
        }
    }

    /// The gateway in front of `node`, if the node is topologically private.
    pub fn gateway_of(&self, node: NodeId) -> Option<GatewayId> {
        let inner = self.inner.lock().expect("NAT topology lock poisoned");
        match inner.profile(node)? {
            NatProfile::Private { gateway, .. } => Some(*gateway),
            NatProfile::Public { .. } => None,
        }
    }

    /// Number of gateways ever allocated (including gateways whose last node migrated
    /// away or left; gateway ids are dense and never reused).
    pub fn gateway_count(&self) -> usize {
        self.inner
            .lock()
            .expect("NAT topology lock poisoned")
            .gateways
            .len()
    }

    /// Power-cycles `gateway` at `now`, wiping its whole mapping table (see
    /// [`NatGateway::reboot`]). Returns `false` for an unknown gateway.
    pub fn reboot_gateway(&self, gateway: GatewayId, now: SimTime) -> bool {
        let mut inner = self.inner.lock().expect("NAT topology lock poisoned");
        match inner.gateway_mut(gateway) {
            Some(gw) => {
                gw.reboot(now);
                true
            }
            None => false,
        }
    }

    /// Power-cycles the gateway in front of `node` at `now`. Returns `false` if the node
    /// is unknown or public.
    pub fn reboot_gateway_of(&self, node: NodeId, now: SimTime) -> bool {
        match self.gateway_of(node) {
            Some(gateway) => self.reboot_gateway(gateway, now),
            None => false,
        }
    }

    /// Node mobility: moves a private `node` behind a *fresh* gateway (new public IP, new
    /// local address, filtering drawn from the builder's policy mix), as when a laptop
    /// hops from one network to another. All bindings at the old gateway are dropped; the
    /// node's observed IP changes, so mappings other nodes hold towards its old address
    /// go stale and expire. Returns `false` if the node is unknown or public (use
    /// [`demote_to_private`](Self::demote_to_private) for those).
    pub fn migrate_node(&self, node: NodeId) -> bool {
        let mut inner = self.inner.lock().expect("NAT topology lock poisoned");
        let Some(NatProfile::Private { gateway, .. }) = inner.profile(node).copied() else {
            return false;
        };
        inner.detach_from_gateway(node, gateway);
        let filtering = inner.pick_filtering();
        let config = NatGatewayConfig {
            filtering,
            ..inner.default_config
        };
        let new_gateway = inner.add_gateway(config);
        let local_ip = inner.allocate_private_ip();
        inner.set_profile(
            node,
            NatProfile::Private {
                gateway: new_gateway,
                local_ip,
            },
        );
        true
    }

    /// NAT-profile upgrade: turns a private `node` into a public one with a fresh
    /// globally reachable address (the user enabled port forwarding, or moved onto an
    /// unfirewalled network). Bindings at its old gateway are dropped. Returns `false`
    /// if the node is unknown or already public.
    ///
    /// The *protocols* are not notified: a node keeps advertising the class it detected
    /// when it joined, exactly like a deployed peer whose NAT situation changes under it
    /// — re-running NAT-type identification is the protocol's job, and the resulting
    /// stale self-classification is part of the stress the scripted scenarios apply.
    pub fn promote_to_public(&self, node: NodeId) -> bool {
        let mut inner = self.inner.lock().expect("NAT topology lock poisoned");
        let Some(NatProfile::Private { gateway, .. }) = inner.profile(node).copied() else {
            return false;
        };
        inner.detach_from_gateway(node, gateway);
        let ip = inner.allocate_public_ip();
        inner.set_profile(node, NatProfile::Public { ip });
        true
    }

    /// NAT-profile downgrade: puts a public `node` behind a fresh NAT gateway (the ISP
    /// moved it behind carrier-grade NAT, or it roamed onto a NATed network). Returns
    /// `false` if the node is unknown or already private. See
    /// [`promote_to_public`](Self::promote_to_public) for the stale-self-classification
    /// caveat, which applies symmetrically.
    pub fn demote_to_private(&self, node: NodeId) -> bool {
        let mut inner = self.inner.lock().expect("NAT topology lock poisoned");
        let Some(NatProfile::Public { .. }) = inner.profile(node).copied() else {
            return false;
        };
        let filtering = inner.pick_filtering();
        let config = NatGatewayConfig {
            filtering,
            ..inner.default_config
        };
        let gateway = inner.add_gateway(config);
        let local_ip = inner.allocate_private_ip();
        inner.set_profile(node, NatProfile::Private { gateway, local_ip });
        true
    }

    /// Changes the filtering policy of `gateway` at runtime (see
    /// [`NatGateway::set_filtering`]). Returns `false` for an unknown gateway.
    pub fn set_gateway_filtering(&self, gateway: GatewayId, policy: FilteringPolicy) -> bool {
        let mut inner = self.inner.lock().expect("NAT topology lock poisoned");
        match inner.gateway_mut(gateway) {
            Some(gw) => {
                gw.set_filtering(policy);
                true
            }
            None => false,
        }
    }

    /// Changes the filtering policy of the gateway in front of `node`. Returns `false`
    /// if the node is unknown or public.
    pub fn set_filtering_of(&self, node: NodeId, policy: FilteringPolicy) -> bool {
        match self.gateway_of(node) {
            Some(gateway) => self.set_gateway_filtering(gateway, policy),
            None => false,
        }
    }

    /// Applies one scripted [`NatDynamicsEvent`] at round barrier `round` / time `now`,
    /// drawing per-candidate selections from `rng`.
    ///
    /// This is the single dispatcher behind scripted NAT dynamics: the experiments
    /// crate's `ScenarioExecutor` (and any test) calls it instead of duplicating the
    /// event→mutation mapping over the individual entry points
    /// ([`reboot_gateway_of`](Self::reboot_gateway_of),
    /// [`migrate_node`](Self::migrate_node), …). Selection draws one uniform variate per
    /// candidate node in ascending id order, so the draw sequence depends only on the
    /// event and the population, never on engine internals — the determinism contract
    /// the scenario engine's bit-identity gate relies on.
    ///
    /// Returns the caller's follow-up obligations: for
    /// [`RegionalOutage`](NatDynamicsEvent::RegionalOutage), the exact nodes taken
    /// offline and the round at which they must be restored (restoring is scheduling,
    /// which the topology does not do). [`FlashCrowd`](NatDynamicsEvent::FlashCrowd) is
    /// a no-op here — membership growth is engine-side state the experiment driver
    /// expands into the join schedule before the run.
    pub fn apply(
        &self,
        event: &NatDynamicsEvent,
        round: u64,
        now: SimTime,
        rng: &mut SmallRng,
    ) -> AppliedEvent {
        match *event {
            NatDynamicsEvent::GatewayRebootStorm { fraction } => {
                for node in self.private_node_ids() {
                    if rng.gen_range(0.0..1.0) < fraction {
                        self.reboot_gateway_of(node, now);
                    }
                }
                AppliedEvent::done()
            }
            NatDynamicsEvent::MobilityWave { fraction } => {
                for node in self.private_node_ids() {
                    if rng.gen_range(0.0..1.0) < fraction {
                        self.migrate_node(node);
                    }
                }
                AppliedEvent::done()
            }
            NatDynamicsEvent::ProfileUpgrade { fraction } => {
                for node in self.private_node_ids() {
                    if rng.gen_range(0.0..1.0) < fraction {
                        self.promote_to_public(node);
                    }
                }
                AppliedEvent::done()
            }
            NatDynamicsEvent::ProfileDowngrade { fraction } => {
                for node in self.public_node_ids() {
                    if rng.gen_range(0.0..1.0) < fraction {
                        self.demote_to_private(node);
                    }
                }
                AppliedEvent::done()
            }
            NatDynamicsEvent::FilteringShift { fraction, policy } => {
                for node in self.private_node_ids() {
                    if rng.gen_range(0.0..1.0) < fraction {
                        self.set_filtering_of(node, policy);
                    }
                }
                AppliedEvent::done()
            }
            NatDynamicsEvent::GatewayReconfig { fraction, profile } => {
                let config = profile.config(&self.default_gateway_config());
                for node in self.private_node_ids() {
                    if rng.gen_range(0.0..1.0) < fraction {
                        self.reconfigure_gateway_of(node, config);
                    }
                }
                AppliedEvent::done()
            }
            NatDynamicsEvent::CgnConsolidation {
                fraction,
                pool_size,
            } => {
                // Draw first (one variate per private node, ascending ids, same as every
                // other selection), then create the CGN only if anyone was selected so an
                // empty draw does not burn a gateway id or pool addresses.
                let selected: Vec<NodeId> = self
                    .private_node_ids()
                    .into_iter()
                    .filter(|_| rng.gen_range(0.0..1.0) < fraction)
                    .collect();
                if !selected.is_empty() {
                    let mut config = NatGatewayConfig::carrier_grade(pool_size);
                    config.mapping_timeout = self.default_gateway_config().mapping_timeout;
                    let cgn = self.add_shared_gateway(config);
                    for node in selected {
                        self.move_node_behind(node, cgn);
                    }
                }
                AppliedEvent::done()
            }
            NatDynamicsEvent::RegionalOutage {
                region,
                regions,
                outage_rounds,
            } => {
                let mut affected = Vec::new();
                for node in self.node_ids() {
                    // A node already dark from an overlapping earlier outage stays
                    // claimed by that outage (and comes back at *its* restore round);
                    // claiming it twice would let the earliest restore cut the later
                    // outage short.
                    if node.as_u64() % regions == region
                        && !self.is_offline(node)
                        && self.set_offline(node, true)
                    {
                        affected.push(node);
                    }
                }
                if affected.is_empty() {
                    AppliedEvent::done()
                } else {
                    AppliedEvent {
                        taken_offline: affected,
                        restore_round: Some(round + outage_rounds),
                    }
                }
            }
            // Membership growth cannot happen from inside the engine's hook; the driver
            // expands flash crowds into the join schedule instead.
            NatDynamicsEvent::FlashCrowd { .. } => AppliedEvent::done(),
        }
    }

    /// Marks `node` offline (scripted partition/regional outage: no packet from or to it
    /// passes the filter) or back online. The node's NAT state is untouched — bindings
    /// keep ageing while it is cut off, exactly as during a real partition. Returns
    /// `false` for an unknown node (the offline flag is still cleared, so restoring a
    /// node that churned out meanwhile is harmless).
    pub fn set_offline(&self, node: NodeId, offline: bool) -> bool {
        let mut inner = self.inner.lock().expect("NAT topology lock poisoned");
        if inner.profile(node).is_none() {
            inner.set_offline(node, false);
            return false;
        }
        inner.set_offline(node, offline);
        true
    }

    /// Returns `true` if `node` is currently marked offline.
    pub fn is_offline(&self, node: NodeId) -> bool {
        self.inner
            .lock()
            .expect("NAT topology lock poisoned")
            .is_offline(node)
    }

    /// Identifiers of all topologically private nodes (behind a gateway, UPnP or not),
    /// in ascending id order.
    pub fn private_node_ids(&self) -> Vec<NodeId> {
        let inner = self.inner.lock().expect("NAT topology lock poisoned");
        inner
            .profiles
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, Some(NatProfile::Private { .. })))
            .map(|(slot, _)| NodeId::new(slot as u64))
            .collect()
    }

    /// Identifiers of all topologically public nodes, in ascending id order.
    pub fn public_node_ids(&self) -> Vec<NodeId> {
        let inner = self.inner.lock().expect("NAT topology lock poisoned");
        inner
            .profiles
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, Some(NatProfile::Public { .. })))
            .map(|(slot, _)| NodeId::new(slot as u64))
            .collect()
    }

    /// Identifiers of all registered nodes, in ascending id order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        let inner = self.inner.lock().expect("NAT topology lock poisoned");
        inner
            .profiles
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .map(|(slot, _)| NodeId::new(slot as u64))
            .collect()
    }

    /// The effective connectivity class of `node`: public nodes and nodes behind
    /// UPnP-enabled gateways count as [`NatClass::Public`]; everything else is private.
    ///
    /// Returns `None` for unknown nodes.
    pub fn class_of(&self, node: NodeId) -> Option<NatClass> {
        let inner = self.inner.lock().expect("NAT topology lock poisoned");
        match inner.profile(node)? {
            NatProfile::Public { .. } => Some(NatClass::Public),
            NatProfile::Private { gateway, .. } => {
                let upnp = inner
                    .gateway(*gateway)
                    .map(|gw| gw.config().upnp_enabled)
                    .unwrap_or(false);
                Some(if upnp {
                    NatClass::Public
                } else {
                    NatClass::Private
                })
            }
        }
    }

    /// Returns `true` if the node sits behind a NAT gateway (regardless of UPnP support).
    pub fn is_behind_nat(&self, node: NodeId) -> bool {
        let inner = self.inner.lock().expect("NAT topology lock poisoned");
        matches!(inner.profile(node), Some(NatProfile::Private { .. }))
    }

    /// The profile of `node`, if registered.
    pub fn profile(&self, node: NodeId) -> Option<NatProfile> {
        let inner = self.inner.lock().expect("NAT topology lock poisoned");
        inner.profile(node).copied()
    }

    /// Aggregate statistics about the topology.
    pub fn stats(&self) -> TopologyStats {
        let inner = self.inner.lock().expect("NAT topology lock poisoned");
        let mut stats = TopologyStats {
            blocked_messages: inner.blocked_messages,
            stale_binding_failures: inner.stale_binding_failures,
            hairpin_blocked: inner.hairpin_blocked,
            offline_nodes: inner.offline_count,
            ..TopologyStats::default()
        };
        for profile in inner.profiles.iter().flatten() {
            match profile {
                NatProfile::Public { .. } => stats.public_nodes += 1,
                NatProfile::Private { gateway, .. } => {
                    let upnp = inner
                        .gateway(*gateway)
                        .map(|gw| gw.config().upnp_enabled)
                        .unwrap_or(false);
                    if upnp {
                        stats.upnp_nodes += 1;
                    } else {
                        stats.private_nodes += 1;
                    }
                }
            }
        }
        stats
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("NAT topology lock poisoned")
            .profile_count
    }

    /// Returns `true` if no node is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl AddressInfo for NatTopology {
    fn local_ip(&self, node: NodeId) -> Option<Ip> {
        let inner = self.inner.lock().expect("NAT topology lock poisoned");
        match inner.profile(node)? {
            NatProfile::Public { ip } => Some(*ip),
            NatProfile::Private { local_ip, .. } => Some(*local_ip),
        }
    }

    fn observed_ip(&self, node: NodeId) -> Option<Ip> {
        let inner = self.inner.lock().expect("NAT topology lock poisoned");
        inner.observed_ip(node)
    }

    fn supports_upnp(&self, node: NodeId) -> bool {
        let inner = self.inner.lock().expect("NAT topology lock poisoned");
        match inner.profile(node) {
            Some(NatProfile::Private { gateway, .. }) => inner
                .gateway(*gateway)
                .map(|gw| gw.config().upnp_enabled)
                .unwrap_or(false),
            _ => false,
        }
    }
}

impl DeliveryFilter for NatTopology {
    fn on_send(&mut self, from: NodeId, to: NodeId, now: SimTime) {
        let mut inner = self.inner.lock().expect("NAT topology lock poisoned");
        if inner.is_offline(from) {
            // An offline sender's packets never leave its network, so they cannot
            // create or refresh bindings at its gateway.
            return;
        }
        let remote_ip = inner.observed_ip(to).unwrap_or_default();
        if let Some(NatProfile::Private { gateway, .. }) = inner.profile(from).copied() {
            if let Some(gw) = inner.gateway_mut(gateway) {
                // The gateway purges its own table opportunistically; the old global
                // sweep over every gateway in the topology is gone.
                gw.record_outbound(from, to, remote_ip, now);
            }
        }
    }

    fn can_deliver(&mut self, from: NodeId, to: NodeId, now: SimTime) -> DeliveryVerdict {
        let mut inner = self.inner.lock().expect("NAT topology lock poisoned");
        let from_ip = inner.observed_ip(from).unwrap_or_default();
        match inner.profile(to).copied() {
            None => DeliveryVerdict::NoSuchDestination,
            Some(_) if inner.is_offline(from) || inner.is_offline(to) => {
                // A scripted partition: one of the endpoints is cut off. Blocked, not
                // gone — the node still exists and will come back.
                inner.blocked_messages += 1;
                DeliveryVerdict::BlockedByNat
            }
            Some(NatProfile::Public { .. }) => DeliveryVerdict::Deliver,
            Some(NatProfile::Private { gateway, .. }) => {
                // Hairpinning (RFC 4787 REQ-9): traffic between two hosts behind the
                // same gateway arrives at the gateway's own external address. A
                // hairpin-capable gateway loops it back through the normal filter (the
                // path below — the sender's outbound binding towards the shared
                // external IP is what opens it); an incapable one drops it outright.
                if let Some(NatProfile::Private {
                    gateway: from_gateway,
                    ..
                }) = inner.profile(from)
                {
                    if *from_gateway == gateway
                        && !inner.gateway(gateway).is_some_and(|gw| gw.hairpinning())
                    {
                        inner.blocked_messages += 1;
                        inner.hairpin_blocked += 1;
                        return DeliveryVerdict::BlockedByNat;
                    }
                }
                let (accepted, recent_reboot) = inner
                    .gateway(gateway)
                    .map(|gw| {
                        (
                            gw.accepts_inbound(to, from, from_ip, now),
                            gw.rebooted_within_timeout(now),
                        )
                    })
                    .unwrap_or((false, false));
                if accepted {
                    DeliveryVerdict::Deliver
                } else {
                    inner.blocked_messages += 1;
                    if recent_reboot {
                        inner.stale_binding_failures += 1;
                    }
                    DeliveryVerdict::BlockedByNat
                }
            }
        }
    }

    fn on_node_removed(&mut self, node: NodeId) {
        self.remove_node(node);
    }
}

/// Builder for [`NatTopology`].
///
/// # Examples
///
/// ```
/// use croupier_nat::{FilteringPolicy, NatTopologyBuilder};
/// use croupier_simulator::SimDuration;
///
/// let topology = NatTopologyBuilder::new(42)
///     .default_filtering(FilteringPolicy::EndpointIndependent)
///     .mapping_timeout(SimDuration::from_secs(30))
///     .build();
/// assert!(topology.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct NatTopologyBuilder {
    seed: u64,
    default_config: NatGatewayConfig,
    filtering_mix: Vec<(FilteringPolicy, f64)>,
}

impl NatTopologyBuilder {
    /// Creates a builder; `seed` drives the assignment of filtering policies when a mix is
    /// configured.
    pub fn new(seed: u64) -> Self {
        NatTopologyBuilder {
            seed,
            default_config: NatGatewayConfig::default(),
            filtering_mix: Vec::new(),
        }
    }

    /// Sets the filtering policy used for every private node (unless a mix is configured).
    pub fn default_filtering(mut self, filtering: FilteringPolicy) -> Self {
        self.default_config.filtering = filtering;
        self
    }

    /// Sets a weighted mix of filtering policies; each new private node draws its gateway's
    /// policy from this distribution.
    ///
    /// # Panics
    ///
    /// Panics if `mix` is empty or any weight is not a positive finite number.
    pub fn filtering_mix(mut self, mix: &[(FilteringPolicy, f64)]) -> Self {
        assert!(!mix.is_empty(), "filtering mix must not be empty");
        assert!(
            mix.iter().all(|(_, w)| w.is_finite() && *w > 0.0),
            "filtering mix weights must be positive"
        );
        self.filtering_mix = mix.to_vec();
        self
    }

    /// Sets the UDP mapping timeout of every gateway.
    pub fn mapping_timeout(mut self, timeout: SimDuration) -> Self {
        self.default_config.mapping_timeout = timeout;
        self
    }

    /// Builds the (initially empty) topology.
    pub fn build(self) -> NatTopology {
        NatTopology {
            inner: Arc::new(Mutex::new(Inner {
                profiles: Vec::new(),
                profile_count: 0,
                gateways: Vec::new(),
                default_config: self.default_config,
                filtering_mix: self.filtering_mix,
                rng: SmallRng::seed_from_u64(self.seed),
                next_public_ip: 0,
                next_private_ip: 0,
                blocked_messages: 0,
                stale_binding_failures: 0,
                hairpin_blocked: 0,
                offline: Vec::new(),
                offline_count: 0,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> NatTopology {
        NatTopologyBuilder::new(1)
            .default_filtering(FilteringPolicy::AddressAndPortDependent)
            .mapping_timeout(SimDuration::from_secs(30))
            .build()
    }

    const PUB: NodeId = NodeId::new(0);
    const PRIV: NodeId = NodeId::new(1);
    const OTHER_PUB: NodeId = NodeId::new(2);

    fn populated() -> NatTopology {
        let t = topo();
        t.add_public_node(PUB);
        t.add_private_node(PRIV);
        t.add_public_node(OTHER_PUB);
        t
    }

    #[test]
    fn public_nodes_are_always_reachable() {
        let t = populated();
        let mut f = t.clone();
        assert_eq!(
            f.can_deliver(PRIV, PUB, SimTime::ZERO),
            DeliveryVerdict::Deliver
        );
        assert_eq!(
            f.can_deliver(PUB, OTHER_PUB, SimTime::ZERO),
            DeliveryVerdict::Deliver
        );
    }

    #[test]
    fn private_nodes_block_unsolicited_traffic() {
        let t = populated();
        let mut f = t.clone();
        assert_eq!(
            f.can_deliver(PUB, PRIV, SimTime::ZERO),
            DeliveryVerdict::BlockedByNat
        );
        assert_eq!(t.stats().blocked_messages, 1);
    }

    #[test]
    fn reply_path_opens_after_outbound_and_expires() {
        let t = populated();
        let mut f = t.clone();
        f.on_send(PRIV, PUB, SimTime::ZERO);
        assert_eq!(
            f.can_deliver(PUB, PRIV, SimTime::from_secs(1)),
            DeliveryVerdict::Deliver
        );
        // A different public node still cannot get in (port-dependent filtering).
        assert_eq!(
            f.can_deliver(OTHER_PUB, PRIV, SimTime::from_secs(1)),
            DeliveryVerdict::BlockedByNat
        );
        // The mapping expires after the configured timeout.
        assert_eq!(
            f.can_deliver(PUB, PRIV, SimTime::from_secs(120)),
            DeliveryVerdict::BlockedByNat
        );
    }

    #[test]
    fn unknown_destination_is_reported() {
        let t = populated();
        let mut f = t.clone();
        assert_eq!(
            f.can_deliver(PUB, NodeId::new(99), SimTime::ZERO),
            DeliveryVerdict::NoSuchDestination
        );
    }

    #[test]
    fn classes_and_stats_are_reported() {
        let t = populated();
        t.add_upnp_node(NodeId::new(3));
        assert_eq!(t.class_of(PUB), Some(NatClass::Public));
        assert_eq!(t.class_of(PRIV), Some(NatClass::Private));
        assert_eq!(t.class_of(NodeId::new(3)), Some(NatClass::Public));
        assert_eq!(t.class_of(NodeId::new(42)), None);
        assert!(t.is_behind_nat(NodeId::new(3)));
        assert!(!t.is_behind_nat(PUB));
        let stats = t.stats();
        assert_eq!(stats.public_nodes, 2);
        assert_eq!(stats.private_nodes, 1);
        assert_eq!(stats.upnp_nodes, 1);
        assert!((stats.public_private_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn upnp_nodes_accept_unsolicited_traffic() {
        let t = populated();
        t.add_upnp_node(NodeId::new(3));
        let mut f = t.clone();
        assert_eq!(
            f.can_deliver(PUB, NodeId::new(3), SimTime::ZERO),
            DeliveryVerdict::Deliver
        );
    }

    #[test]
    fn address_info_reports_local_and_observed_ips() {
        let t = populated();
        // A public node observes the same address locally and remotely.
        assert_eq!(t.local_ip(PUB), t.observed_ip(PUB));
        // A private node's local address differs from the address its gateway exposes.
        let local = t.local_ip(PRIV).unwrap();
        let observed = t.observed_ip(PRIV).unwrap();
        assert_ne!(local, observed);
        assert!(local.is_private_range());
        assert!(!observed.is_private_range());
        assert!(!t.supports_upnp(PUB));
        assert!(!t.supports_upnp(PRIV));
        t.add_upnp_node(NodeId::new(3));
        assert!(t.supports_upnp(NodeId::new(3)));
    }

    #[test]
    fn removing_a_node_forgets_its_profile_and_bindings() {
        let t = populated();
        let mut f = t.clone();
        f.on_send(PRIV, PUB, SimTime::ZERO);
        f.on_node_removed(PRIV);
        assert_eq!(t.profile(PRIV), None);
        assert_eq!(
            f.can_deliver(PUB, PRIV, SimTime::from_secs(1)),
            DeliveryVerdict::NoSuchDestination
        );
    }

    #[test]
    fn clones_share_state() {
        let t = topo();
        let clone = t.clone();
        t.add_public_node(PUB);
        assert_eq!(clone.class_of(PUB), Some(NatClass::Public));
        assert_eq!(clone.len(), 1);
    }

    #[test]
    fn filtering_mix_assigns_varied_policies() {
        let t = NatTopologyBuilder::new(3)
            .filtering_mix(&[
                (FilteringPolicy::EndpointIndependent, 0.5),
                (FilteringPolicy::AddressAndPortDependent, 0.5),
            ])
            .build();
        // Register many private nodes, then check that an unsolicited packet passes some
        // (endpoint-independent after an unrelated outbound) but not all.
        let probe = NodeId::new(10_000);
        t.add_public_node(probe);
        let helper = NodeId::new(10_001);
        t.add_public_node(helper);
        let mut f = t.clone();
        let mut accepted = 0;
        let n = 200;
        for i in 0..n {
            let node = NodeId::new(i);
            t.add_private_node(node);
            // The private node contacts `helper`, creating a mapping; whether `probe` can
            // then reach it depends on the gateway's filtering policy.
            f.on_send(node, helper, SimTime::ZERO);
            if f.can_deliver(probe, node, SimTime::from_secs(1))
                .is_delivered()
            {
                accepted += 1;
            }
        }
        assert!(
            accepted > n / 5,
            "some gateways should be endpoint-independent: {accepted}"
        );
        assert!(
            accepted < n,
            "some gateways should be port-dependent: {accepted}"
        );
    }

    #[test]
    fn add_node_uses_class() {
        let t = topo();
        t.add_node(NodeId::new(5), NatClass::Public);
        t.add_node(NodeId::new(6), NatClass::Private);
        assert_eq!(t.class_of(NodeId::new(5)), Some(NatClass::Public));
        assert_eq!(t.class_of(NodeId::new(6)), Some(NatClass::Private));
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_filtering_mix_is_rejected() {
        NatTopologyBuilder::new(0).filtering_mix(&[]);
    }

    #[test]
    fn gateway_reboot_closes_the_reply_path_until_refreshed() {
        let t = populated();
        let mut f = t.clone();
        f.on_send(PRIV, PUB, SimTime::ZERO);
        assert_eq!(
            f.can_deliver(PUB, PRIV, SimTime::from_secs(1)),
            DeliveryVerdict::Deliver
        );
        assert!(t.reboot_gateway_of(PRIV, SimTime::from_secs(2)));
        assert_eq!(
            f.can_deliver(PUB, PRIV, SimTime::from_secs(3)),
            DeliveryVerdict::BlockedByNat
        );
        // The block happened within one mapping timeout of the reboot: it is a
        // stale-binding failure.
        assert_eq!(t.stats().stale_binding_failures, 1);
        // A fresh outbound reopens the path.
        f.on_send(PRIV, PUB, SimTime::from_secs(4));
        assert_eq!(
            f.can_deliver(PUB, PRIV, SimTime::from_secs(5)),
            DeliveryVerdict::Deliver
        );
        // Public nodes have no gateway to reboot.
        assert!(!t.reboot_gateway_of(PUB, SimTime::ZERO));
    }

    #[test]
    fn migration_moves_a_node_behind_a_fresh_gateway() {
        let t = populated();
        let mut f = t.clone();
        f.on_send(PRIV, PUB, SimTime::ZERO);
        let old_gateway = t.gateway_of(PRIV).unwrap();
        let old_observed = t.observed_ip(PRIV).unwrap();
        let gateways_before = t.gateway_count();
        assert!(t.migrate_node(PRIV));
        assert_ne!(t.gateway_of(PRIV).unwrap(), old_gateway);
        assert_ne!(t.observed_ip(PRIV).unwrap(), old_observed, "new public IP");
        assert_eq!(t.gateway_count(), gateways_before + 1);
        // The bindings did not follow the node: the reply path is closed.
        assert_eq!(
            f.can_deliver(PUB, PRIV, SimTime::from_secs(1)),
            DeliveryVerdict::BlockedByNat
        );
        // Public and unknown nodes cannot migrate.
        assert!(!t.migrate_node(PUB));
        assert!(!t.migrate_node(NodeId::new(99)));
    }

    #[test]
    fn promotion_and_demotion_flip_the_effective_class() {
        let t = populated();
        let mut f = t.clone();
        assert!(t.promote_to_public(PRIV));
        assert_eq!(t.class_of(PRIV), Some(NatClass::Public));
        assert!(!t.is_behind_nat(PRIV));
        assert_eq!(
            f.can_deliver(PUB, PRIV, SimTime::ZERO),
            DeliveryVerdict::Deliver,
            "a promoted node accepts unsolicited traffic"
        );
        assert!(!t.promote_to_public(PRIV), "already public");
        assert!(t.demote_to_private(PRIV));
        assert_eq!(t.class_of(PRIV), Some(NatClass::Private));
        assert_eq!(
            f.can_deliver(PUB, PRIV, SimTime::from_secs(1)),
            DeliveryVerdict::BlockedByNat,
            "a demoted node filters unsolicited traffic again"
        );
        assert!(!t.demote_to_private(PRIV), "already private");
        let stats = t.stats();
        assert_eq!(stats.public_nodes, 2);
        assert_eq!(stats.private_nodes, 1);
    }

    #[test]
    fn filtering_changes_apply_per_gateway() {
        let t = populated();
        let mut f = t.clone();
        f.on_send(PRIV, PUB, SimTime::ZERO);
        // Port-dependent: only PUB can get back in.
        assert_eq!(
            f.can_deliver(OTHER_PUB, PRIV, SimTime::from_secs(1)),
            DeliveryVerdict::BlockedByNat
        );
        assert!(t.set_filtering_of(PRIV, FilteringPolicy::EndpointIndependent));
        assert_eq!(
            f.can_deliver(OTHER_PUB, PRIV, SimTime::from_secs(2)),
            DeliveryVerdict::Deliver,
            "endpoint-independent lets any remote through the existing mapping"
        );
        assert!(!t.set_filtering_of(PUB, FilteringPolicy::EndpointIndependent));
    }

    #[test]
    fn offline_nodes_are_partitioned_in_both_directions() {
        let t = populated();
        let mut f = t.clone();
        assert!(t.set_offline(PUB, true));
        assert!(t.is_offline(PUB));
        assert_eq!(t.stats().offline_nodes, 1);
        // Traffic to and from the offline node is blocked, even between public nodes.
        assert_eq!(
            f.can_deliver(OTHER_PUB, PUB, SimTime::ZERO),
            DeliveryVerdict::BlockedByNat
        );
        assert_eq!(
            f.can_deliver(PUB, OTHER_PUB, SimTime::ZERO),
            DeliveryVerdict::BlockedByNat
        );
        // An offline private sender does not refresh bindings.
        assert!(t.set_offline(PRIV, true));
        f.on_send(PRIV, OTHER_PUB, SimTime::ZERO);
        assert!(t.set_offline(PRIV, false));
        assert_eq!(
            f.can_deliver(OTHER_PUB, PRIV, SimTime::from_secs(1)),
            DeliveryVerdict::BlockedByNat,
            "the outbound sent while offline must not have opened the NAT"
        );
        // Restoration clears the partition.
        assert!(t.set_offline(PUB, false));
        assert_eq!(t.stats().offline_nodes, 0);
        assert_eq!(
            f.can_deliver(OTHER_PUB, PUB, SimTime::from_secs(1)),
            DeliveryVerdict::Deliver
        );
        // Unknown nodes report false; clearing them is harmless.
        assert!(!t.set_offline(NodeId::new(99), true));
        assert!(!t.is_offline(NodeId::new(99)));
    }

    #[test]
    fn offline_flag_is_cleared_when_a_node_is_removed() {
        let t = populated();
        t.set_offline(PRIV, true);
        let mut f = t.clone();
        f.on_node_removed(PRIV);
        assert!(!t.is_offline(PRIV));
        assert_eq!(t.stats().offline_nodes, 0);
    }

    #[test]
    fn node_id_listings_are_ascending_and_class_partitioned() {
        let t = populated();
        assert_eq!(t.public_node_ids(), vec![PUB, OTHER_PUB]);
        assert_eq!(t.private_node_ids(), vec![PRIV]);
        assert_eq!(t.node_ids(), vec![PUB, PRIV, OTHER_PUB]);
        t.add_upnp_node(NodeId::new(3));
        assert_eq!(
            t.private_node_ids(),
            vec![PRIV, NodeId::new(3)],
            "UPnP nodes are topologically private"
        );
    }

    #[test]
    fn stale_binding_failures_require_a_recent_reboot() {
        let t = populated();
        let mut f = t.clone();
        // A plain unsolicited block is not a stale-binding failure.
        assert_eq!(
            f.can_deliver(PUB, PRIV, SimTime::ZERO),
            DeliveryVerdict::BlockedByNat
        );
        assert_eq!(t.stats().stale_binding_failures, 0);
        t.reboot_gateway_of(PRIV, SimTime::from_secs(10));
        // Within one mapping timeout (30 s) of the reboot: counted.
        assert_eq!(
            f.can_deliver(PUB, PRIV, SimTime::from_secs(20)),
            DeliveryVerdict::BlockedByNat
        );
        // Beyond the window: an ordinary block again.
        assert_eq!(
            f.can_deliver(PUB, PRIV, SimTime::from_secs(100)),
            DeliveryVerdict::BlockedByNat
        );
        let stats = t.stats();
        assert_eq!(stats.stale_binding_failures, 1);
        assert_eq!(stats.blocked_messages, 3);
    }
}
