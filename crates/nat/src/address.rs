//! IP addresses and endpoints as seen by the NAT emulation.
//!
//! The simulation does not route real packets, but the NAT-type identification protocol
//! (§V of the paper) compares the *local* IP address of a node with the source address a
//! remote peer observes. These light-weight address types give the emulation enough
//! structure to reproduce that comparison faithfully.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 32-bit IPv4-like address.
///
/// Addresses allocated by [`NatTopology`](crate::NatTopology) follow two disjoint ranges so
/// private and public addresses can never collide: public addresses live below
/// `0xC0A8_0000`, private (RFC1918-like) addresses at or above it.
///
/// # Examples
///
/// ```
/// use croupier_nat::Ip;
///
/// let public = Ip::public(7);
/// let private = Ip::private(7);
/// assert!(!public.is_private_range());
/// assert!(private.is_private_range());
/// assert_ne!(public, private);
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Ip(u32);

/// Start of the synthetic private address range (mirrors 192.168.0.0).
const PRIVATE_BASE: u32 = 0xC0A8_0000;

impl Ip {
    /// Creates an address from its raw 32-bit value.
    pub const fn from_raw(raw: u32) -> Self {
        Ip(raw)
    }

    /// Allocates the `index`-th synthetic *public* address.
    ///
    /// # Panics
    ///
    /// Panics if `index` would collide with the private range.
    pub fn public(index: u32) -> Self {
        assert!(
            index < PRIVATE_BASE - 1,
            "public address index overflows into the private range"
        );
        Ip(index + 1)
    }

    /// Allocates the `index`-th synthetic *private* address.
    pub fn private(index: u32) -> Self {
        Ip(PRIVATE_BASE.wrapping_add(index))
    }

    /// Raw 32-bit value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Returns `true` if the address lies in the synthetic private range.
    pub const fn is_private_range(self) -> bool {
        self.0 >= PRIVATE_BASE
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let octets = self.0.to_be_bytes();
        write!(f, "{}.{}.{}.{}", octets[0], octets[1], octets[2], octets[3])
    }
}

/// An (address, port) pair.
///
/// # Examples
///
/// ```
/// use croupier_nat::{Endpoint, Ip};
///
/// let ep = Endpoint::new(Ip::public(1), 5000);
/// assert_eq!(ep.port, 5000);
/// assert_eq!(format!("{ep}"), "0.0.0.2:5000");
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Endpoint {
    /// The IP address.
    pub ip: Ip,
    /// The UDP port.
    pub port: u16,
}

impl Endpoint {
    /// Creates an endpoint.
    pub const fn new(ip: Ip, port: u16) -> Self {
        Endpoint { ip, port }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_and_private_ranges_are_disjoint() {
        for i in 0..1_000u32 {
            assert!(!Ip::public(i).is_private_range());
            assert!(Ip::private(i).is_private_range());
            assert_ne!(Ip::public(i), Ip::private(i));
        }
    }

    #[test]
    fn public_addresses_are_distinct() {
        let a = Ip::public(1);
        let b = Ip::public(2);
        assert_ne!(a, b);
    }

    #[test]
    fn display_renders_dotted_quad() {
        assert_eq!(Ip::from_raw(0x01020304).to_string(), "1.2.3.4");
        assert_eq!(Ip::private(0).to_string(), "192.168.0.0");
    }

    #[test]
    fn endpoint_display_and_ordering() {
        let a = Endpoint::new(Ip::public(1), 80);
        let b = Endpoint::new(Ip::public(1), 443);
        assert!(a < b);
        assert_eq!(a.to_string(), "0.0.0.2:80");
    }

    #[test]
    #[should_panic(expected = "overflows into the private range")]
    fn public_index_cannot_reach_private_range() {
        Ip::public(PRIVATE_BASE);
    }
}
