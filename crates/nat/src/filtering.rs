//! NAT packet-filtering policies.
//!
//! The paper's NAT-type identification protocol distinguishes NATs by their filtering
//! behaviour (§V, citing the NATCracker classification of Roverso et al.). The emulation
//! implements the three standard policies of RFC 4787.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How a NAT filters inbound packets addressed to an existing mapping.
///
/// * [`EndpointIndependent`](FilteringPolicy::EndpointIndependent): once the internal host
///   has created a mapping by sending any packet, inbound packets from *any* remote endpoint
///   are accepted. This is the only policy under which the paper's `ForwardTest` reaches a
///   NATed node.
/// * [`AddressDependent`](FilteringPolicy::AddressDependent): inbound packets are accepted
///   only from remote *IP addresses* the internal host has previously sent to.
/// * [`AddressAndPortDependent`](FilteringPolicy::AddressAndPortDependent): inbound packets
///   are accepted only from remote *endpoints* (IP and port) the internal host has
///   previously sent to. The most restrictive and the most common policy in the wild.
///
/// # Examples
///
/// ```
/// use croupier_nat::FilteringPolicy;
///
/// assert!(FilteringPolicy::AddressAndPortDependent.is_stricter_than(
///     FilteringPolicy::EndpointIndependent));
/// ```
#[non_exhaustive]
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub enum FilteringPolicy {
    /// Accept inbound traffic from anyone once a mapping exists.
    EndpointIndependent,
    /// Accept inbound traffic only from previously-contacted IP addresses.
    AddressDependent,
    /// Accept inbound traffic only from previously-contacted (IP, port) endpoints.
    #[default]
    AddressAndPortDependent,
}

impl FilteringPolicy {
    /// All policies, from most permissive to most restrictive.
    pub const ALL: [FilteringPolicy; 3] = [
        FilteringPolicy::EndpointIndependent,
        FilteringPolicy::AddressDependent,
        FilteringPolicy::AddressAndPortDependent,
    ];

    /// Returns `true` if `self` rejects at least every packet `other` rejects.
    pub fn is_stricter_than(self, other: FilteringPolicy) -> bool {
        self.rank() > other.rank()
    }

    fn rank(self) -> u8 {
        match self {
            FilteringPolicy::EndpointIndependent => 0,
            FilteringPolicy::AddressDependent => 1,
            FilteringPolicy::AddressAndPortDependent => 2,
        }
    }

    /// Returns `true` if an unsolicited packet (from an endpoint the internal host never
    /// contacted) passes this filter, provided a mapping exists at all.
    pub fn accepts_unsolicited(self) -> bool {
        matches!(self, FilteringPolicy::EndpointIndependent)
    }
}

impl fmt::Display for FilteringPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FilteringPolicy::EndpointIndependent => "endpoint-independent",
            FilteringPolicy::AddressDependent => "address-dependent",
            FilteringPolicy::AddressAndPortDependent => "address-and-port-dependent",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strictness_is_a_total_order() {
        use FilteringPolicy::*;
        assert!(AddressDependent.is_stricter_than(EndpointIndependent));
        assert!(AddressAndPortDependent.is_stricter_than(AddressDependent));
        assert!(AddressAndPortDependent.is_stricter_than(EndpointIndependent));
        assert!(!EndpointIndependent.is_stricter_than(AddressDependent));
        assert!(!EndpointIndependent.is_stricter_than(EndpointIndependent));
    }

    #[test]
    fn only_endpoint_independent_accepts_unsolicited() {
        assert!(FilteringPolicy::EndpointIndependent.accepts_unsolicited());
        assert!(!FilteringPolicy::AddressDependent.accepts_unsolicited());
        assert!(!FilteringPolicy::AddressAndPortDependent.accepts_unsolicited());
    }

    #[test]
    fn all_lists_every_variant_in_order() {
        assert_eq!(FilteringPolicy::ALL.len(), 3);
        assert!(FilteringPolicy::ALL
            .windows(2)
            .all(|w| w[1].is_stricter_than(w[0])));
    }

    #[test]
    fn default_is_most_restrictive() {
        assert_eq!(
            FilteringPolicy::default(),
            FilteringPolicy::AddressAndPortDependent
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(
            FilteringPolicy::EndpointIndependent.to_string(),
            "endpoint-independent"
        );
    }
}
