//! Scripted NAT-dynamics events and named gateway profiles.
//!
//! A [`NatDynamicsEvent`] is one mutation of the NAT environment — a reboot storm, a
//! mobility wave, a profile change, a regional outage — expressed as a *fraction* of the
//! affected population so the same script scales from unit tests to 100k-node runs. The
//! enum lives here, next to the topology it mutates, and
//! [`NatTopology::apply`](crate::NatTopology::apply) is the single dispatcher that turns
//! an event into topology mutations; the experiments crate's `ScenarioExecutor` schedules
//! events at round barriers and re-exports the enum for script authors.

use serde::{Deserialize, Serialize};

use crate::filtering::FilteringPolicy;
use crate::gateway::NatGatewayConfig;

/// One scripted NAT-dynamics event. Magnitudes are fractions of the affected population
/// (not absolute counts), so the same script scales from unit tests to 100k-node runs.
///
/// The enum is `#[non_exhaustive]`: scripts are data, and new event kinds are added
/// without a major version bump — downstream matches need a wildcard arm.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum NatDynamicsEvent {
    /// Power-cycles the gateway of each private node independently with probability
    /// `fraction`, wiping the whole mapping table (consumer-router reboot storm after a
    /// power flicker or a coordinated firmware push).
    GatewayRebootStorm {
        /// Probability that any one private node's gateway reboots.
        fraction: f64,
    },
    /// Moves each private node independently with probability `fraction` behind a fresh
    /// gateway with a new public address (laptops hopping networks).
    MobilityWave {
        /// Probability that any one private node migrates.
        fraction: f64,
    },
    /// Promotes each private node independently with probability `fraction` to a public
    /// address. Protocols are *not* notified — the stale self-classification is part of
    /// the stress.
    ProfileUpgrade {
        /// Probability that any one private node becomes public.
        fraction: f64,
    },
    /// Demotes each public node independently with probability `fraction` behind a fresh
    /// NAT gateway (carrier-grade NAT rollout).
    ProfileDowngrade {
        /// Probability that any one public node becomes private.
        fraction: f64,
    },
    /// Switches the filtering policy of each private node's gateway independently with
    /// probability `fraction` to `policy`.
    FilteringShift {
        /// Probability that any one gateway changes policy.
        fraction: f64,
        /// The policy the selected gateways switch to.
        policy: FilteringPolicy,
    },
    /// Replaces the whole configuration of each private node's gateway independently with
    /// probability `fraction` by the named [`GatewayProfile`] (firmware swap or CPE
    /// replacement): mapping *and* filtering policy, hairpinning, port
    /// preservation/parity and pool size all change at once, while the gateway's exact
    /// binding table survives the reconfig.
    GatewayReconfig {
        /// Probability that any one private node's gateway is reconfigured.
        fraction: f64,
        /// The profile the selected gateways switch to.
        profile: GatewayProfile,
    },
    /// Consolidates each private node independently with probability `fraction` behind
    /// one newly created shared carrier-grade gateway
    /// ([`NatGatewayConfig::carrier_grade`]) with `pool_size` external addresses — an ISP
    /// moving customers behind a CGN. Consolidated nodes share the gateway's pool and its
    /// port space; hairpinning stays on so they can still reach each other.
    CgnConsolidation {
        /// Probability that any one private node is moved behind the shared CGN.
        fraction: f64,
        /// Number of external addresses the carrier-grade gateway owns.
        pool_size: u8,
    },
    /// Takes every node whose id falls in `region` (of `regions` equal id-striped
    /// regions) offline for `outage_rounds` rounds, then restores exactly those nodes —
    /// a correlated regional gateway outage / network partition.
    RegionalOutage {
        /// The region that goes dark (`0 <= region < regions`).
        region: u64,
        /// Number of id-striped regions the population is divided into.
        regions: u64,
        /// How many rounds the outage lasts before the region is restored.
        outage_rounds: u64,
    },
    /// A join burst: `growth` times the experiment's initial population joins spread
    /// evenly over the round following the action, `public_fraction` of them public.
    /// Expanded by the experiment driver into the join schedule (the only scripted event
    /// that creates engine-side state, so it cannot run inside the NAT-mutation hook).
    FlashCrowd {
        /// New joiners as a fraction of the initial population.
        growth: f64,
        /// Fraction of the joiners that are public.
        public_fraction: f64,
    },
}

/// A named bundle of RFC-4787 gateway behaviours, used by scripted
/// [`GatewayReconfig`](NatDynamicsEvent::GatewayReconfig) events (an enum rather than an
/// inline [`NatGatewayConfig`] so scripts stay serialisable as compact tags).
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GatewayProfile {
    /// [`NatGatewayConfig::full_cone`]: endpoint-independent mapping and filtering,
    /// hairpinning, port preservation.
    FullCone,
    /// [`NatGatewayConfig::symmetric`]: address-and-port-dependent on both axes, no
    /// hairpinning, no port preservation, parity kept.
    Symmetric,
    /// [`NatGatewayConfig::carrier_grade`] with a 4-address pool: address-dependent on
    /// both axes, paired pooling, hairpinning on, no port preservation.
    CarrierGrade,
}

impl GatewayProfile {
    /// The configuration this profile expands to. Only the mapping timeout is inherited
    /// from `base` (it models the deployment-wide UDP timeout, not a per-device trait);
    /// every behavioural axis comes from the profile.
    pub fn config(self, base: &NatGatewayConfig) -> NatGatewayConfig {
        let mut cfg = match self {
            GatewayProfile::FullCone => NatGatewayConfig::full_cone(),
            GatewayProfile::Symmetric => NatGatewayConfig::symmetric(),
            GatewayProfile::CarrierGrade => NatGatewayConfig::carrier_grade(4),
        };
        cfg.mapping_timeout = base.mapping_timeout;
        cfg
    }
}

/// What applying a [`NatDynamicsEvent`] did, as far as the caller must follow up.
///
/// Only [`RegionalOutage`](NatDynamicsEvent::RegionalOutage) needs follow-up — the exact
/// nodes it silenced must be restored `outage_rounds` later — and only
/// [`FlashCrowd`](NatDynamicsEvent::FlashCrowd) is out of scope for the topology (it
/// creates engine-side join state, which the experiment driver expands before the run).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AppliedEvent {
    /// Nodes the event took offline; the caller must restore exactly these.
    pub taken_offline: Vec<croupier_simulator::NodeId>,
    /// Round barrier (1-based) at which `taken_offline` must come back online.
    pub restore_round: Option<u64>,
}

impl AppliedEvent {
    /// An application with no follow-up obligations.
    pub fn done() -> Self {
        AppliedEvent::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{MappingPolicy, PoolingBehavior};
    use croupier_simulator::SimDuration;

    #[test]
    fn profiles_expand_to_the_documented_configs() {
        let base = NatGatewayConfig::default().mapping_timeout(SimDuration::from_secs(17));
        let fc = GatewayProfile::FullCone.config(&base);
        assert_eq!(fc.filtering, FilteringPolicy::EndpointIndependent);
        assert_eq!(fc.mapping, MappingPolicy::EndpointIndependent);
        assert!(fc.hairpinning && fc.port_preservation);
        let sym = GatewayProfile::Symmetric.config(&base);
        assert_eq!(sym.filtering, FilteringPolicy::AddressAndPortDependent);
        assert_eq!(sym.mapping, MappingPolicy::AddressAndPortDependent);
        assert!(!sym.hairpinning && !sym.port_preservation && sym.port_parity);
        let cgn = GatewayProfile::CarrierGrade.config(&base);
        assert_eq!(cgn.mapping, MappingPolicy::AddressDependent);
        assert_eq!(cgn.pool_size, 4);
        assert_eq!(cgn.pooling, PoolingBehavior::Paired);
        // All profiles inherit the deployment-wide timeout, nothing else, from the base.
        for cfg in [fc, sym, cgn] {
            assert_eq!(cfg.mapping_timeout, SimDuration::from_secs(17));
        }
    }

    #[test]
    fn applied_event_default_has_no_follow_up() {
        let done = AppliedEvent::done();
        assert!(done.taken_offline.is_empty());
        assert_eq!(done.restore_round, None);
    }
}
