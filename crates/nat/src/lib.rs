//! # croupier-nat
//!
//! NAT and firewall emulation for the Croupier reproduction.
//!
//! The Croupier paper (*Shuffling with a Croupier: NAT-Aware Peer Sampling*, ICDCS 2012)
//! evaluates peer-sampling protocols in networks where a large fraction of nodes sit behind
//! Network Address Translation gateways. This crate provides the substrate that makes such
//! networks observable to the simulated protocols:
//!
//! * [`NatGateway`] — a NAT device with a public IP, a UDP mapping (binding) table with a
//!   configurable expiry timeout, a [`FilteringPolicy`] (endpoint-independent,
//!   address-dependent or address-and-port-dependent, following the NATCracker
//!   classification cited by the paper), and optional UPnP IGD support.
//! * [`NatTopology`] — the assignment of every node to either a public address or a private
//!   address behind a gateway. It implements the simulator's
//!   [`DeliveryFilter`](croupier_simulator::DeliveryFilter) so the engine consults it for
//!   every packet, and [`AddressInfo`] so protocols can observe source addresses the way a
//!   real UDP socket would.
//! * [`traversal`] — feasibility rules and cost helpers for the NAT-traversal techniques the
//!   baseline protocols rely on (relaying for Gozar, hole-punching for Nylon), plus
//!   keep-alive interval calculations.
//!
//! The emulation is deliberately behavioural: protocols can only observe reachability,
//! source addresses and mapping expiry — exactly the observables a deployed protocol has —
//! so substituting it for real NAT devices preserves the phenomena the paper studies
//! (biased views, partition under failure, traversal overhead).
//!
//! ## Example
//!
//! ```
//! use croupier_nat::{FilteringPolicy, NatTopologyBuilder};
//! use croupier_simulator::{DeliveryFilter, DeliveryVerdict, NodeId, SimTime};
//!
//! let topology = NatTopologyBuilder::new(7)
//!     .default_filtering(FilteringPolicy::AddressAndPortDependent)
//!     .build();
//! let public = NodeId::new(0);
//! let private = NodeId::new(1);
//! topology.add_public_node(public);
//! topology.add_private_node(private);
//!
//! let mut filter = topology.clone();
//! // Unsolicited traffic towards the private node is dropped...
//! assert_eq!(
//!     filter.can_deliver(public, private, SimTime::ZERO),
//!     DeliveryVerdict::BlockedByNat,
//! );
//! // ...but once the private node has contacted the public node, the reply passes the NAT.
//! filter.on_send(private, public, SimTime::ZERO);
//! assert_eq!(
//!     filter.can_deliver(public, private, SimTime::from_millis(50)),
//!     DeliveryVerdict::Deliver,
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod address;
pub mod dynamics;
pub mod filtering;
pub mod gateway;
pub mod mapping;
pub mod topology;
pub mod traversal;

pub use address::{Endpoint, Ip};
pub use dynamics::{AppliedEvent, GatewayProfile, NatDynamicsEvent};
pub use filtering::FilteringPolicy;
pub use gateway::{Binding, NatGateway, NatGatewayConfig};
pub use mapping::{ExternalMapping, MappingPolicy, PoolingBehavior};
pub use topology::{AddressInfo, NatProfile, NatTopology, NatTopologyBuilder, TopologyStats};
pub use traversal::{hole_punch_feasible, keepalive_interval, relay_feasible, TraversalCost};
