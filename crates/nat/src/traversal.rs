//! NAT-traversal feasibility rules and cost helpers.
//!
//! Croupier itself needs no traversal machinery — that is the paper's point — but the two
//! baseline protocols do: Nylon hole-punches connections to private nodes through chains of
//! rendezvous nodes, and Gozar relays shuffle messages through public relay nodes. The
//! helpers below encode which traversal technique works against which gateway configuration
//! (following the NATCracker combinations cited by the paper) and how much keep-alive
//! traffic a private node must spend to keep its traversal infrastructure alive.

use croupier_simulator::{NodeId, SimDuration};
use serde::{Deserialize, Serialize};

use crate::filtering::FilteringPolicy;
use crate::topology::{AddressInfo, NatTopology};

/// Cost model of a traversal technique, in extra one-way message transmissions per shuffle
/// exchange with a private node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraversalCost {
    /// Extra messages on the initiator's path (e.g. relay hops).
    pub extra_messages: u32,
    /// Extra round-trips of latency before the exchange completes.
    pub extra_round_trips: u32,
}

impl TraversalCost {
    /// Cost of a direct exchange (no traversal needed).
    pub const DIRECT: TraversalCost = TraversalCost {
        extra_messages: 0,
        extra_round_trips: 0,
    };

    /// Cost of a one-hop relayed exchange (Gozar): the request takes one extra hop.
    pub const ONE_HOP_RELAY: TraversalCost = TraversalCost {
        extra_messages: 1,
        extra_round_trips: 0,
    };

    /// Cost of hole-punching through a rendezvous chain of length `chain_len` (Nylon): the
    /// punch request traverses the chain, then the private node opens the hole, then the
    /// exchange proceeds directly.
    pub fn hole_punch(chain_len: u32) -> TraversalCost {
        TraversalCost {
            extra_messages: chain_len + 1,
            extra_round_trips: 1,
        }
    }
}

/// Returns `true` if `initiator` can establish a *direct* (hole-punched) connection to the
/// private node `target` once a rendezvous node has coordinated the punch.
///
/// Hole punching works whenever the target's gateway filters on the remote endpoint: the
/// punch packet the target sends towards the initiator installs exactly the binding that
/// lets the initiator's next packet in. Firewalled nodes that cannot send punches (not
/// modelled here) and gateways that rewrite ports unpredictably would fail; the emulation's
/// gateways all allocate stable per-destination bindings, so punching succeeds whenever the
/// target is actually behind a NAT that accepts reply traffic — which is every gateway in
/// the topology.
pub fn hole_punch_feasible(topology: &NatTopology, initiator: NodeId, target: NodeId) -> bool {
    // Both endpoints need to exist; the target must be reachable *after* it sends the punch
    // packet, which our gateway model guarantees for every filtering policy because the
    // punch installs a binding keyed on the initiator.
    topology.profile(initiator).is_some() && topology.profile(target).is_some()
}

/// Returns `true` if `relay` can forward traffic to the private node `target`: the target
/// must have an open (keep-alive-refreshed) binding towards the relay. This is the
/// precondition Gozar maintains by having private nodes register with relay nodes and ping
/// them periodically.
pub fn relay_feasible(topology: &NatTopology, relay: NodeId, target: NodeId) -> bool {
    // The relay must be publicly reachable and the target registered.
    matches!(
        topology.class_of(relay),
        Some(croupier_simulator::NatClass::Public)
    ) && topology.profile(target).is_some()
}

/// The keep-alive interval a private node must use to keep a NAT binding alive, given its
/// gateway's mapping timeout. A safety factor of 2 matches common practice (ping at half the
/// timeout).
///
/// # Examples
///
/// ```
/// use croupier_nat::keepalive_interval;
/// use croupier_simulator::SimDuration;
///
/// assert_eq!(
///     keepalive_interval(SimDuration::from_secs(60)),
///     SimDuration::from_secs(30),
/// );
/// ```
pub fn keepalive_interval(mapping_timeout: SimDuration) -> SimDuration {
    let half = mapping_timeout.as_millis() / 2;
    SimDuration::from_millis(half.max(1))
}

/// Returns `true` if an unsolicited `ForwardTest` packet (from a node the target never
/// contacted) would traverse a gateway with the given filtering policy — the property the
/// paper's NAT-type identification protocol probes.
pub fn forward_test_passes(filtering: FilteringPolicy, has_any_binding: bool) -> bool {
    has_any_binding && filtering.accepts_unsolicited()
}

/// Convenience: returns the local/observed address mismatch used by the identification
/// protocol's `MatchingIpTest` (true means the addresses differ, i.e. the node is NATed).
pub fn addresses_mismatch(info: &dyn AddressInfo, node: NodeId) -> Option<bool> {
    Some(info.local_ip(node)? != info.observed_ip(node)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NatTopologyBuilder;
    use croupier_simulator::NodeId;

    fn topo() -> NatTopology {
        let t = NatTopologyBuilder::new(1).build();
        t.add_public_node(NodeId::new(0));
        t.add_private_node(NodeId::new(1));
        t.add_private_node(NodeId::new(2));
        t
    }

    #[test]
    fn hole_punch_requires_registered_endpoints() {
        let t = topo();
        assert!(hole_punch_feasible(&t, NodeId::new(0), NodeId::new(1)));
        assert!(hole_punch_feasible(&t, NodeId::new(1), NodeId::new(2)));
        assert!(!hole_punch_feasible(&t, NodeId::new(0), NodeId::new(9)));
    }

    #[test]
    fn relay_must_be_public() {
        let t = topo();
        assert!(relay_feasible(&t, NodeId::new(0), NodeId::new(1)));
        assert!(!relay_feasible(&t, NodeId::new(2), NodeId::new(1)));
        assert!(!relay_feasible(&t, NodeId::new(0), NodeId::new(9)));
    }

    #[test]
    fn keepalive_is_half_the_timeout_with_floor() {
        assert_eq!(
            keepalive_interval(SimDuration::from_secs(30)),
            SimDuration::from_secs(15)
        );
        assert_eq!(
            keepalive_interval(SimDuration::from_millis(1)),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn forward_test_only_passes_endpoint_independent_gateways() {
        assert!(forward_test_passes(
            FilteringPolicy::EndpointIndependent,
            true
        ));
        assert!(!forward_test_passes(
            FilteringPolicy::EndpointIndependent,
            false
        ));
        assert!(!forward_test_passes(
            FilteringPolicy::AddressDependent,
            true
        ));
        assert!(!forward_test_passes(
            FilteringPolicy::AddressAndPortDependent,
            true
        ));
    }

    #[test]
    fn address_mismatch_distinguishes_public_from_private() {
        let t = topo();
        assert_eq!(addresses_mismatch(&t, NodeId::new(0)), Some(false));
        assert_eq!(addresses_mismatch(&t, NodeId::new(1)), Some(true));
        assert_eq!(addresses_mismatch(&t, NodeId::new(9)), None);
    }

    #[test]
    fn traversal_costs_reflect_chain_length() {
        assert_eq!(TraversalCost::DIRECT.extra_messages, 0);
        assert_eq!(TraversalCost::ONE_HOP_RELAY.extra_messages, 1);
        let punched = TraversalCost::hole_punch(3);
        assert_eq!(punched.extra_messages, 4);
        assert_eq!(punched.extra_round_trips, 1);
    }
}
