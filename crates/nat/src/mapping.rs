//! NAT mapping behaviours (RFC 4787 §4.1) and the external-endpoint mapping table.
//!
//! Filtering ([`FilteringPolicy`](crate::FilteringPolicy)) decides which inbound packets
//! pass an existing mapping; *mapping* behaviour decides how many external endpoints the
//! NAT allocates in the first place — whether two flows from the same internal socket to
//! different destinations reuse one external `(IP, port)` or get distinct ones. The two
//! axes are independent in RFC 4787 and both are needed to reproduce the NAT zoo the
//! paper's protocols must survive: a "symmetric" NAT is address-and-port-dependent on
//! *both* axes, a "full-cone" NAT endpoint-independent on both.
//!
//! This module provides the policy enums plus the compact mapping-table entry; the table
//! itself lives on [`NatGateway`](crate::NatGateway), next to the filtering state.

use std::fmt;

use croupier_simulator::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How a NAT reuses external endpoints across destinations (RFC 4787 §4.1).
///
/// * [`EndpointIndependent`](MappingPolicy::EndpointIndependent): one external endpoint
///   per internal source, reused for every destination. Required by RFC 4787 (REQ-1);
///   the only behaviour under which a peer can hand the observed endpoint to a third
///   party for hole-punching.
/// * [`AddressDependent`](MappingPolicy::AddressDependent): a fresh external endpoint per
///   remote *IP address*.
/// * [`AddressAndPortDependent`](MappingPolicy::AddressAndPortDependent): a fresh
///   external endpoint per remote *endpoint* — the classic "symmetric" NAT, under which
///   the endpoint observed by a rendezvous server is useless to anyone else.
#[non_exhaustive]
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub enum MappingPolicy {
    /// One external endpoint per internal source, regardless of destination.
    #[default]
    EndpointIndependent,
    /// A distinct external endpoint per remote IP address.
    AddressDependent,
    /// A distinct external endpoint per remote (IP, port) endpoint ("symmetric").
    AddressAndPortDependent,
}

impl MappingPolicy {
    /// All policies, from most permissive to most restrictive.
    pub const ALL: [MappingPolicy; 3] = [
        MappingPolicy::EndpointIndependent,
        MappingPolicy::AddressDependent,
        MappingPolicy::AddressAndPortDependent,
    ];

    /// Returns `true` if `self` allocates at least as many distinct external endpoints as
    /// `other` for any traffic pattern.
    pub fn is_stricter_than(self, other: MappingPolicy) -> bool {
        self.rank() > other.rank()
    }

    fn rank(self) -> u8 {
        match self {
            MappingPolicy::EndpointIndependent => 0,
            MappingPolicy::AddressDependent => 1,
            MappingPolicy::AddressAndPortDependent => 2,
        }
    }

    /// Returns `true` if the external endpoint a remote peer observes can be reused by a
    /// *different* remote to reach the internal host (the precondition of
    /// rendezvous-assisted hole-punching).
    pub fn endpoint_is_transferable(self) -> bool {
        matches!(self, MappingPolicy::EndpointIndependent)
    }
}

impl fmt::Display for MappingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MappingPolicy::EndpointIndependent => "endpoint-independent",
            MappingPolicy::AddressDependent => "address-dependent",
            MappingPolicy::AddressAndPortDependent => "address-and-port-dependent",
        };
        f.write_str(name)
    }
}

/// How a NAT with a pool of external addresses pairs internal hosts to pool members
/// (RFC 4787 §4.1, "IP address pooling").
#[non_exhaustive]
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub enum PoolingBehavior {
    /// All mappings of one internal host use the same pool address (RFC 4787 REQ-2).
    #[default]
    Paired,
    /// Pool addresses are assigned per mapping, round-robin; one internal host's flows
    /// can surface from different external addresses.
    Arbitrary,
}

impl fmt::Display for PoolingBehavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PoolingBehavior::Paired => "paired",
            PoolingBehavior::Arbitrary => "arbitrary",
        })
    }
}

/// One entry of a gateway's external mapping table: internal host `internal` holds the
/// external endpoint `(pool address #ip_index, port)`, last refreshed by *outbound*
/// traffic at `last_refreshed`.
///
/// Refresh is asymmetric on purpose (RFC 4787 REQ-6): outbound packets extend the
/// mapping's lifetime, inbound packets never do — a peer cannot keep a mapping alive by
/// talking *at* it, which is exactly why the paper's private nodes must keep-alive their
/// own partners. The entry is 16 bytes; the pool address is stored as an index into the
/// gateway's pool so the entry stays compact at any pool size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExternalMapping {
    pub(crate) internal: u32,
    pub(crate) ip_index: u8,
    pub(crate) port: u16,
    pub(crate) last_refreshed: SimTime,
}

impl ExternalMapping {
    /// Index of the external pool address this mapping uses.
    pub fn ip_index(&self) -> u8 {
        self.ip_index
    }

    /// External port of the mapping.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Last time *outbound* traffic refreshed the mapping.
    pub fn last_refreshed(&self) -> SimTime {
        self.last_refreshed
    }

    /// Returns `true` if the mapping has expired at `now` under `timeout`.
    pub fn is_expired(&self, now: SimTime, timeout: SimDuration) -> bool {
        now.saturating_since(self.last_refreshed) > timeout
    }
}

/// First port a NAT allocates; everything below is reserved in the synthetic port space.
pub const FIRST_NAT_PORT: u16 = 1024;

/// The internal source port a node uses for its gossip socket, derived deterministically
/// from its id. Port preservation ([`NatGatewayConfig::port_preservation`]) tries to keep
/// this port on the external side; parity preservation keeps its low bit.
///
/// [`NatGatewayConfig::port_preservation`]: crate::NatGatewayConfig
pub fn internal_source_port(internal: u32) -> u16 {
    FIRST_NAT_PORT + (internal % (u16::MAX as u32 + 1 - FIRST_NAT_PORT as u32)) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strictness_is_a_total_order() {
        use MappingPolicy::*;
        assert!(AddressDependent.is_stricter_than(EndpointIndependent));
        assert!(AddressAndPortDependent.is_stricter_than(AddressDependent));
        assert!(!EndpointIndependent.is_stricter_than(AddressDependent));
    }

    #[test]
    fn only_endpoint_independent_mappings_transfer() {
        assert!(MappingPolicy::EndpointIndependent.endpoint_is_transferable());
        assert!(!MappingPolicy::AddressDependent.endpoint_is_transferable());
        assert!(!MappingPolicy::AddressAndPortDependent.endpoint_is_transferable());
    }

    #[test]
    fn defaults_preserve_the_pre_rfc4787_model() {
        // The pre-upgrade emulation behaved endpoint-independently on the mapping axis
        // (one observed address per node) with RFC-recommended paired pooling; the
        // defaults pin that so existing seeded runs stay bit-identical.
        assert_eq!(MappingPolicy::default(), MappingPolicy::EndpointIndependent);
        assert_eq!(PoolingBehavior::default(), PoolingBehavior::Paired);
    }

    #[test]
    fn internal_source_ports_avoid_the_reserved_range() {
        assert_eq!(internal_source_port(0), 1024);
        assert_eq!(internal_source_port(1), 1025);
        // Wraps within the dynamic range, never into the reserved one.
        let span = u16::MAX as u32 + 1 - 1024;
        assert_eq!(internal_source_port(span), 1024);
        assert!(internal_source_port(u32::MAX) >= 1024);
    }

    #[test]
    fn mapping_entries_are_compact_and_expire_like_bindings() {
        assert!(std::mem::size_of::<ExternalMapping>() <= 16);
        let m = ExternalMapping {
            internal: 1,
            ip_index: 2,
            port: 5000,
            last_refreshed: SimTime::from_secs(10),
        };
        assert_eq!(m.ip_index(), 2);
        assert_eq!(m.port(), 5000);
        assert_eq!(m.last_refreshed(), SimTime::from_secs(10));
        assert!(!m.is_expired(SimTime::from_secs(40), SimDuration::from_secs(30)));
        assert!(m.is_expired(SimTime::from_millis(40_001), SimDuration::from_secs(30)));
    }

    #[test]
    fn display_names() {
        assert_eq!(
            MappingPolicy::AddressAndPortDependent.to_string(),
            "address-and-port-dependent"
        );
        assert_eq!(PoolingBehavior::Arbitrary.to_string(), "arbitrary");
    }
}
