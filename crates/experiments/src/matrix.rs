//! The scenario-matrix runner: canned NAT-dynamics scripts × the four protocols.
//!
//! Each cell of the matrix runs one [`ScenarioScript`] against one [`ProtocolKind`] and
//! distils the run into a [`CellReport`]: the in-degree distribution of the final
//! overlay, the rounds at which the overlay partitioned and recovered (if it ever
//! dipped), stale-binding send failures caused by scripted gateway reboots, and the
//! final estimation error. Graph metrics come from the per-sample CSR pipeline
//! (`croupier-metrics`), so a matrix run reuses the same parallel BFS machinery as the
//! paper figures.
//!
//! One [`ScenarioReport`] per scenario (all protocol cells inside) serialises to the
//! `SCENARIO_<name>.json` artifacts the CI `scenario-matrix` job uploads; the gate is
//! [`ScenarioReport::all_recovered`] — every protocol must end the run with its overlay
//! connected again.

use std::fmt::Write as _;

use croupier_metrics::{indegree_gini, indegree_histogram, indegree_stats, IndegreeStats};

use crate::output::{json_number, json_string, Scale};
use crate::protocols::{run_kind, ProtocolConfigs, ProtocolKind};
use crate::runner::{ExperimentParams, RoundSample};
use crate::scenario::ScenarioScript;
use crate::workload::{WorkloadReport, WorkloadSlo, WorkloadSpec};

/// A run counts as recovered when the largest connected component again holds at least
/// this fraction of the sampled nodes.
pub const RECOVERY_THRESHOLD: f64 = 0.95;

/// The recovery bar for fault-tier scenarios (scripts that drive the fault plane):
/// datagram loss, bursts and reordering keep injecting until the scripted clear, so the
/// overlay is given a slightly looser floor than the clean-network tier.
pub const FAULT_RECOVERY_THRESHOLD: f64 = 0.90;

/// How much more croupier's in-degree Gini may *degrade* under injected faults than the
/// best NAT-aware baseline's before the gate fails. Degradation is measured per protocol
/// against a no-fault control run of the same scenario and seed
/// ([`CellReport::gini_degradation`]), so the gate compares how much each protocol's
/// balance suffers from the faults — not the protocols' absolute Gini values, which
/// differ by design even on a clean network.
pub const FAULT_GINI_MARGIN: f64 = 0.05;

/// The recovery threshold a script is judged against: fault-tier scripts get
/// [`FAULT_RECOVERY_THRESHOLD`], everything else [`RECOVERY_THRESHOLD`].
pub fn recovery_threshold_for(script: &ScenarioScript) -> f64 {
    if script.has_fault_actions() {
        FAULT_RECOVERY_THRESHOLD
    } else {
        RECOVERY_THRESHOLD
    }
}

/// The paper-scale population anchoring the matrix (scaled down by [`Scale::nodes`]; the
/// CI job runs `quick`, i.e. 100 nodes — well under its 1k-node budget).
const MATRIX_PAPER_NODES: usize = 1_000;

/// The paper-scale round count anchoring the matrix.
const MATRIX_PAPER_ROUNDS: u64 = 120;

/// The distilled outcome of one scenario × protocol cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellReport {
    /// Protocol name (figure-legend spelling).
    pub protocol: String,
    /// `true` when the final sample's largest component reaches
    /// [`RECOVERY_THRESHOLD`] — the CI gate.
    pub recovered: bool,
    /// Largest-component fraction at the final sample.
    pub final_largest_component: f64,
    /// Smallest largest-component fraction observed at or after the first disruption.
    pub min_largest_component: f64,
    /// First sampled round (at or after the disruption) where the component fraction
    /// dropped below the threshold, if it ever did.
    pub partition_round: Option<u64>,
    /// First sampled round after `partition_round` where the fraction was back at or
    /// above the threshold, if the overlay partitioned and recovered.
    pub recovery_round: Option<u64>,
    /// Average estimation error at the final sample.
    pub final_estimation_error: f64,
    /// Summary statistics of the final overlay's in-degree distribution.
    pub indegree: IndegreeStats,
    /// Full in-degree histogram of the final overlay: `(in-degree, node count)`.
    pub indegree_histogram: Vec<(usize, usize)>,
    /// Messages blocked by NAT filtering over the whole run.
    pub blocked_messages: u64,
    /// Blocked messages attributable to a scripted gateway reboot.
    pub stale_binding_failures: u64,
    /// Live nodes at the end of the run.
    pub node_count: usize,
    /// Gini coefficient of the final overlay's in-degree distribution (0 = perfectly
    /// balanced); the fault-tier gate compares croupier's against the baselines'.
    pub final_indegree_gini: f64,
    /// The same Gini from this cell's no-fault control run (the script with its fault
    /// actions stripped, same seed). Equal to `final_indegree_gini` in clean-network
    /// cells, where the cell is its own control.
    pub clean_indegree_gini: f64,
    /// Total fault-plane injections over the run (drops + duplicates + reorders +
    /// corruptions); zero in clean-network cells.
    pub fault_injected: u64,
    /// Fault-plane drops alone (independent + burst).
    pub fault_drops: u64,
    /// Timeout retries the protocol fired.
    pub retries_fired: u64,
    /// Exchanges the protocol gave up on (expiry or retry exhaustion).
    pub exchanges_abandoned: u64,
}

impl CellReport {
    /// How much the faults unbalanced this protocol's in-degree distribution: final Gini
    /// minus the no-fault control's Gini. Negative when the fault run happened to end
    /// more balanced; zero in clean-network cells.
    pub fn gini_degradation(&self) -> f64 {
        self.final_indegree_gini - self.clean_indegree_gini
    }
}

/// All protocol cells of one scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (also the report's file-name stem).
    pub scenario: String,
    /// Master seed of every cell in this report.
    pub seed: u64,
    /// Rounds each cell simulated.
    pub rounds: u64,
    /// Initial population of each cell.
    pub initial_nodes: usize,
    /// Round of the first disruptive scripted action, if any.
    pub disruption_round: Option<u64>,
    /// The recovery threshold every cell in this report was judged against
    /// ([`FAULT_RECOVERY_THRESHOLD`] for fault-tier scripts, [`RECOVERY_THRESHOLD`]
    /// otherwise).
    pub recovery_threshold: f64,
    /// `true` when the scenario drives the fault plane — selects the Gini gate.
    pub fault_tier: bool,
    /// The per-protocol cells, in [`ProtocolKind::ALL`] order.
    pub cells: Vec<CellReport>,
}

impl ScenarioReport {
    /// Returns `true` when every protocol ends the run with a connected overlay.
    pub fn all_recovered(&self) -> bool {
        self.cells.iter().all(|c| c.recovered)
    }

    /// The fault-tier in-degree gate: croupier's Gini *degradation* (fault run vs its
    /// own no-fault control, [`CellReport::gini_degradation`]) must be no more than
    /// [`FAULT_GINI_MARGIN`] worse than the best NAT-aware baseline's degradation (gozar
    /// or nylon). Vacuously `true` for clean-network scenarios or when either side is
    /// absent from the protocol selection.
    pub fn croupier_gini_ok(&self) -> bool {
        if !self.fault_tier {
            return true;
        }
        let degradation = |name: &str| {
            self.cells
                .iter()
                .find(|c| c.protocol == name)
                .map(CellReport::gini_degradation)
        };
        let Some(croupier) = degradation("croupier") else {
            return true;
        };
        let best_baseline = [degradation("gozar"), degradation("nylon")]
            .into_iter()
            .flatten()
            .fold(f64::INFINITY, f64::min);
        if !best_baseline.is_finite() {
            return true;
        }
        croupier <= best_baseline + FAULT_GINI_MARGIN
    }

    /// The full CI gate for this scenario: recovery for every protocol, plus the
    /// croupier in-degree Gini bound on fault-tier cells.
    pub fn gates_pass(&self) -> bool {
        self.all_recovered() && self.croupier_gini_ok()
    }

    /// Serialises the report as pretty-printed JSON (hand-emitted, like
    /// [`FigureData::to_json`](crate::output::FigureData::to_json), because the offline
    /// build has no `serde_json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"scenario\": {},", json_string(&self.scenario));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"rounds\": {},", self.rounds);
        let _ = writeln!(out, "  \"initial_nodes\": {},", self.initial_nodes);
        let _ = writeln!(
            out,
            "  \"disruption_round\": {},",
            match self.disruption_round {
                Some(round) => round.to_string(),
                None => String::from("null"),
            }
        );
        let _ = writeln!(
            out,
            "  \"recovery_threshold\": {},",
            json_number(self.recovery_threshold)
        );
        let _ = writeln!(out, "  \"fault_tier\": {},", self.fault_tier);
        let _ = writeln!(out, "  \"all_recovered\": {},", self.all_recovered());
        let _ = writeln!(out, "  \"croupier_gini_ok\": {},", self.croupier_gini_ok());
        if self.cells.is_empty() {
            out.push_str("  \"cells\": []\n");
        } else {
            out.push_str("  \"cells\": [\n");
            for (i, cell) in self.cells.iter().enumerate() {
                out.push_str("    {\n");
                let _ = writeln!(out, "      \"protocol\": {},", json_string(&cell.protocol));
                let _ = writeln!(out, "      \"recovered\": {},", cell.recovered);
                let _ = writeln!(
                    out,
                    "      \"final_largest_component\": {},",
                    json_number(cell.final_largest_component)
                );
                let _ = writeln!(
                    out,
                    "      \"min_largest_component\": {},",
                    json_number(cell.min_largest_component)
                );
                let _ = writeln!(
                    out,
                    "      \"partition_round\": {},",
                    match cell.partition_round {
                        Some(round) => round.to_string(),
                        None => String::from("null"),
                    }
                );
                let _ = writeln!(
                    out,
                    "      \"recovery_round\": {},",
                    match cell.recovery_round {
                        Some(round) => round.to_string(),
                        None => String::from("null"),
                    }
                );
                let _ = writeln!(
                    out,
                    "      \"final_estimation_error\": {},",
                    json_number(cell.final_estimation_error)
                );
                let _ = writeln!(
                    out,
                    "      \"indegree\": {{\"min\": {}, \"max\": {}, \"mean\": {}, \"std_dev\": {}}},",
                    cell.indegree.min,
                    cell.indegree.max,
                    json_number(cell.indegree.mean),
                    json_number(cell.indegree.std_dev)
                );
                out.push_str("      \"indegree_histogram\": [");
                for (j, (degree, count)) in cell.indegree_histogram.iter().enumerate() {
                    let comma = if j + 1 < cell.indegree_histogram.len() {
                        ", "
                    } else {
                        ""
                    };
                    let _ = write!(out, "[{degree}, {count}]{comma}");
                }
                out.push_str("],\n");
                let _ = writeln!(
                    out,
                    "      \"blocked_messages\": {},",
                    cell.blocked_messages
                );
                let _ = writeln!(
                    out,
                    "      \"stale_binding_failures\": {},",
                    cell.stale_binding_failures
                );
                let _ = writeln!(
                    out,
                    "      \"final_indegree_gini\": {},",
                    json_number(cell.final_indegree_gini)
                );
                let _ = writeln!(
                    out,
                    "      \"clean_indegree_gini\": {},",
                    json_number(cell.clean_indegree_gini)
                );
                let _ = writeln!(
                    out,
                    "      \"gini_degradation\": {},",
                    json_number(cell.gini_degradation())
                );
                let _ = writeln!(out, "      \"fault_injected\": {},", cell.fault_injected);
                let _ = writeln!(out, "      \"fault_drops\": {},", cell.fault_drops);
                let _ = writeln!(out, "      \"retries_fired\": {},", cell.retries_fired);
                let _ = writeln!(
                    out,
                    "      \"exchanges_abandoned\": {},",
                    cell.exchanges_abandoned
                );
                let _ = writeln!(out, "      \"node_count\": {}", cell.node_count);
                let comma = if i + 1 < self.cells.len() { "," } else { "" };
                let _ = writeln!(out, "    }}{comma}");
            }
            out.push_str("  ]\n");
        }
        out.push('}');
        out
    }

    /// Renders a one-line-per-cell summary table for the terminal.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== scenario {} (disruption at round {:?}) ==",
            self.scenario, self.disruption_round
        );
        for cell in &self.cells {
            let _ = writeln!(
                out,
                "  {:<10} {} component={:.3} (min {:.3}) partition={:<6} recovery={:<6} \
                 stale_fails={} err={:.4}",
                cell.protocol,
                if cell.recovered {
                    "ok       "
                } else {
                    "PARTITIONED"
                },
                cell.final_largest_component,
                cell.min_largest_component,
                cell.partition_round
                    .map_or(String::from("-"), |r| r.to_string()),
                cell.recovery_round
                    .map_or(String::from("-"), |r| r.to_string()),
                cell.stale_binding_failures,
                cell.final_estimation_error,
            );
            if self.fault_tier {
                let _ = writeln!(
                    out,
                    "             faults: injected={} drops={} retries={} abandoned={} \
                     gini={:.3} (clean {:.3}, degradation {:+.3})",
                    cell.fault_injected,
                    cell.fault_drops,
                    cell.retries_fired,
                    cell.exchanges_abandoned,
                    cell.final_indegree_gini,
                    cell.clean_indegree_gini,
                    cell.gini_degradation(),
                );
            }
        }
        out
    }
}

/// Scans a run's samples for the partition/recovery pattern: starting from
/// `disruption_round`, the first sample whose largest-component fraction drops below
/// `threshold` and the first later sample back at or above it. Also returns the smallest
/// fraction observed from the disruption onwards (1.0 when no sample qualifies).
pub fn detect_partition_recovery(
    samples: &[RoundSample],
    disruption_round: u64,
    threshold: f64,
) -> (Option<u64>, Option<u64>, f64) {
    let mut partition = None;
    let mut recovery = None;
    let mut min_component = 1.0f64;
    for sample in samples {
        if sample.round < disruption_round {
            continue;
        }
        let Some(fraction) = sample.largest_component else {
            continue;
        };
        min_component = min_component.min(fraction);
        if partition.is_none() && fraction < threshold {
            partition = Some(sample.round);
        } else if partition.is_some() && recovery.is_none() && fraction >= threshold {
            recovery = Some(sample.round);
        }
    }
    (partition, recovery, min_component)
}

/// The experiment parameters for one matrix cell. Cyclon is NAT-oblivious, so — as in
/// the paper's evaluation — it runs on an all-public population of the same size; the
/// NAT-aware protocols get the paper's 1:4 public/private split.
pub fn cell_params(kind: ProtocolKind, scale: Scale, seed: u64, rounds: u64) -> ExperimentParams {
    let total = scale.nodes(MATRIX_PAPER_NODES);
    let (n_public, n_private) = if kind.is_nat_aware() {
        (total / 5, total - total / 5)
    } else {
        (total, 0)
    };
    ExperimentParams::default()
        .with_seed(seed)
        .with_population(n_public, n_private)
        .with_rounds(rounds)
        .with_sample_every(2)
        .with_graph_metrics(16.min(total))
        .with_engine_threads(scale.engine_threads())
}

/// Runs one scenario × protocol cell.
pub fn run_cell(
    script: &ScenarioScript,
    kind: ProtocolKind,
    scale: Scale,
    seed: u64,
    rounds: u64,
) -> CellReport {
    // NAT-oblivious cells run all-public (see cell_params); their flash crowds must
    // join all-public too, or the burst would smuggle in exactly the NATed nodes the
    // cell excludes.
    let cell_script = if kind.is_nat_aware() {
        script.clone()
    } else {
        script.with_public_flash_crowds()
    };
    let params = cell_params(kind, scale, seed, rounds).with_scenario(cell_script.clone());
    let out = run_kind(kind, &params, &ProtocolConfigs::default());
    let final_indegree_gini = indegree_gini(&out.final_snapshot);
    // Fault-tier cells also run a no-fault control (same script minus the fault actions,
    // same seed) so the Gini gate can measure what the faults *changed* rather than
    // comparing protocols' naturally different absolute Gini values.
    let clean_indegree_gini = if cell_script.has_fault_actions() {
        let control_params =
            cell_params(kind, scale, seed, rounds).with_scenario(cell_script.without_faults());
        let control = run_kind(kind, &control_params, &ProtocolConfigs::default());
        indegree_gini(&control.final_snapshot)
    } else {
        final_indegree_gini
    };
    let disruption = script.first_disruption_round().unwrap_or(0);
    let threshold = recovery_threshold_for(script);
    let (partition_round, recovery_round, min_largest_component) =
        detect_partition_recovery(&out.samples, disruption, threshold);
    let last = out.samples.last();
    let final_largest_component = last.and_then(|s| s.largest_component).unwrap_or(0.0);
    CellReport {
        protocol: kind.name().to_string(),
        recovered: final_largest_component >= threshold,
        final_largest_component,
        min_largest_component,
        partition_round,
        recovery_round,
        final_estimation_error: last.map(|s| s.estimation.average).unwrap_or(f64::NAN),
        indegree: indegree_stats(&out.final_snapshot),
        indegree_histogram: indegree_histogram(&out.final_snapshot),
        blocked_messages: out.nat_stats.blocked_messages,
        stale_binding_failures: out.nat_stats.stale_binding_failures,
        node_count: last.map(|s| s.node_count).unwrap_or(0),
        final_indegree_gini,
        clean_indegree_gini,
        fault_injected: out.fault_report.total_injected(),
        fault_drops: out.fault_report.total_drops(),
        retries_fired: out.fault_report.retries_fired,
        exchanges_abandoned: out.fault_report.exchanges_abandoned,
    }
}

/// Runs the full matrix: every script in `scenarios` × every protocol in `protocols`.
pub fn run_matrix(
    scenarios: &[ScenarioScript],
    protocols: &[ProtocolKind],
    scale: Scale,
    seed: u64,
) -> Vec<ScenarioReport> {
    let rounds = matrix_rounds(scale);
    scenarios
        .iter()
        .map(|script| ScenarioReport {
            scenario: script.name().to_string(),
            seed,
            rounds,
            initial_nodes: scale.nodes(MATRIX_PAPER_NODES),
            disruption_round: script.first_disruption_round(),
            recovery_threshold: recovery_threshold_for(script),
            fault_tier: script.has_fault_actions(),
            cells: protocols
                .iter()
                .map(|&kind| run_cell(script, kind, scale, seed, rounds))
                .collect(),
        })
        .collect()
}

/// The round count a matrix run uses at `scale` — also the value to hand
/// [`ScenarioScript::by_name`] so canned disruptions land mid-run.
pub fn matrix_rounds(scale: Scale) -> u64 {
    scale.rounds(MATRIX_PAPER_ROUNDS)
}

// ---------------------------------------------------------------------------
// The workload tier: streaming dissemination under NAT dynamics and faults.
// ---------------------------------------------------------------------------

/// The scenarios of the workload tier: a dissemination stream rides each of these
/// scripts for every protocol, and croupier's delivery is gated against the declared
/// SLOs (the `workload-matrix` CI job).
pub const WORKLOAD_TIER_NAMES: [&str; 3] = ["reboot_storm", "mobility_wave", "lossy_10"];

/// The dissemination workload a matrix run drives at `scale`: one chunk per round,
/// published from an eighth of the run before the scripted disruption so chunks are in
/// flight when it hits, with a seal window of two fifths of the run.
///
/// The SLO encodes the CI gate: ≥ 99 % chunk coverage within the seal window and a
/// bounded p95 latency regression against the no-dynamics control. The tiny tier runs
/// the same machinery at 25 nodes — too few for a 99 % floor to be meaningful (a single
/// unreachable subscriber costs 4 % of a chunk), so it gets a looser floor; CI gates at
/// `quick` and above.
pub fn matrix_workload_spec(scale: Scale) -> WorkloadSpec {
    let rounds = matrix_rounds(scale);
    let mid = (rounds / 2).max(1);
    let eighth = (rounds / 8).max(1);
    let seal_window = (rounds * 2 / 5).max(6);
    let slo = WorkloadSlo {
        min_coverage: if matches!(scale, Scale::Tiny) {
            0.85
        } else {
            0.99
        },
        max_p95_latency_rounds: seal_window as f64 * 0.75,
        max_p95_regression_rounds: 5.0,
    };
    WorkloadSpec::default()
        .with_window(mid.saturating_sub(eighth).max(1), (rounds / 5).max(4))
        .with_rate(1.0)
        .with_fanout(6)
        .with_coverage_rounds(seal_window)
        .with_slo(slo)
}

/// One workload-tier cell: the same scenario × protocol run as the connectivity matrix,
/// plus the dissemination stream's delivery report and its no-dynamics control.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadCellReport {
    /// Protocol name (figure-legend spelling).
    pub protocol: String,
    /// Delivery report of the run under the scenario's dynamics.
    pub report: WorkloadReport,
    /// Delivery report of the no-dynamics control: same population, seed, workload and
    /// rounds, no scenario script — what the stream achieves on a calm network.
    pub control: WorkloadReport,
}

impl WorkloadCellReport {
    /// How many rounds of p95 delivery latency the scenario's dynamics cost this
    /// protocol, against its own no-dynamics control. Negative when the disrupted run
    /// happened to deliver faster.
    pub fn p95_regression(&self) -> f64 {
        self.report.latency_p95 - self.control.latency_p95
    }

    /// The full SLO check for this cell: coverage and absolute p95 latency
    /// ([`WorkloadReport::meets_slo`]) plus the bounded p95 regression vs the control.
    pub fn meets_slo(&self, slo: &WorkloadSlo) -> bool {
        self.report.meets_slo(slo) && self.p95_regression() <= slo.max_p95_regression_rounds
    }
}

/// All protocol cells of one workload-tier scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadScenarioReport {
    /// Scenario name (also the report's file-name stem).
    pub scenario: String,
    /// Master seed of every cell in this report.
    pub seed: u64,
    /// Rounds each cell simulated.
    pub rounds: u64,
    /// Initial population of each cell.
    pub initial_nodes: usize,
    /// The workload every cell ran (including the SLOs cells are judged against).
    pub spec: WorkloadSpec,
    /// The per-protocol cells, in [`ProtocolKind::ALL`] order.
    pub cells: Vec<WorkloadCellReport>,
}

impl WorkloadScenarioReport {
    /// The workload-tier CI gate: croupier's cell must meet every declared SLO —
    /// coverage, absolute p95 latency, and bounded p95 regression vs its control.
    /// Baseline cells are reported but not gated (their delivery profiles differ by
    /// design: cyclon runs all-public, nylon relays aggressively). Vacuously `true`
    /// when croupier is not in the protocol selection.
    pub fn croupier_slo_ok(&self) -> bool {
        self.cells
            .iter()
            .filter(|c| c.protocol == "croupier")
            .all(|c| c.meets_slo(&self.spec.slo))
    }

    /// The full CI gate for this scenario (currently just
    /// [`croupier_slo_ok`](Self::croupier_slo_ok)).
    pub fn gates_pass(&self) -> bool {
        self.croupier_slo_ok()
    }

    /// Serialises the report as pretty-printed JSON (hand-emitted, like
    /// [`ScenarioReport::to_json`], because the offline build has no `serde_json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"scenario\": {},", json_string(&self.scenario));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"rounds\": {},", self.rounds);
        let _ = writeln!(out, "  \"initial_nodes\": {},", self.initial_nodes);
        let _ = writeln!(out, "  \"workload\": {{");
        let _ = writeln!(out, "    \"publishers\": {},", self.spec.publishers);
        let _ = writeln!(
            out,
            "    \"chunks_per_round\": {},",
            json_number(self.spec.chunks_per_round)
        );
        let _ = writeln!(out, "    \"start_round\": {},", self.spec.start_round);
        let _ = writeln!(out, "    \"publish_rounds\": {},", self.spec.publish_rounds);
        let _ = writeln!(out, "    \"fanout\": {},", self.spec.fanout);
        let _ = writeln!(
            out,
            "    \"coverage_rounds\": {},",
            self.spec.coverage_rounds
        );
        let _ = writeln!(out, "    \"chunk_bytes\": {},", self.spec.chunk_bytes);
        let _ = writeln!(
            out,
            "    \"slo\": {{\"min_coverage\": {}, \"max_p95_latency_rounds\": {}, \"max_p95_regression_rounds\": {}}}",
            json_number(self.spec.slo.min_coverage),
            json_number(self.spec.slo.max_p95_latency_rounds),
            json_number(self.spec.slo.max_p95_regression_rounds)
        );
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"croupier_slo_ok\": {},", self.croupier_slo_ok());
        if self.cells.is_empty() {
            out.push_str("  \"cells\": []\n");
        } else {
            out.push_str("  \"cells\": [\n");
            for (i, cell) in self.cells.iter().enumerate() {
                out.push_str("    {\n");
                let _ = writeln!(out, "      \"protocol\": {},", json_string(&cell.protocol));
                let _ = writeln!(
                    out,
                    "      \"slo_pass\": {},",
                    cell.meets_slo(&self.spec.slo)
                );
                for (label, report) in [("report", &cell.report), ("control", &cell.control)] {
                    let _ = writeln!(out, "      \"{label}\": {{");
                    let _ = writeln!(
                        out,
                        "        \"chunks_published\": {},",
                        report.chunks_published
                    );
                    let _ = writeln!(out, "        \"chunks_sealed\": {},", report.chunks_sealed);
                    let _ = writeln!(
                        out,
                        "        \"coverage\": {},",
                        json_number(report.coverage)
                    );
                    let _ = writeln!(
                        out,
                        "        \"min_chunk_coverage\": {},",
                        json_number(report.min_chunk_coverage)
                    );
                    let _ = writeln!(
                        out,
                        "        \"latency_p50\": {},",
                        json_number(report.latency_p50)
                    );
                    let _ = writeln!(
                        out,
                        "        \"latency_p95\": {},",
                        json_number(report.latency_p95)
                    );
                    let _ = writeln!(
                        out,
                        "        \"latency_p99\": {},",
                        json_number(report.latency_p99)
                    );
                    let _ = writeln!(
                        out,
                        "        \"duplicate_factor\": {},",
                        json_number(report.duplicate_factor)
                    );
                    let _ = writeln!(
                        out,
                        "        \"unique_deliveries\": {},",
                        report.unique_deliveries
                    );
                    let _ = writeln!(
                        out,
                        "        \"total_deliveries\": {},",
                        report.total_deliveries
                    );
                    let _ = writeln!(out, "        \"nat_blocked\": {},", report.nat_blocked);
                    let _ = writeln!(out, "        \"fault_dropped\": {},", report.fault_dropped);
                    let _ = writeln!(
                        out,
                        "        \"public_serve_share\": {}",
                        json_number(report.public_serve_share)
                    );
                    let _ = writeln!(out, "      }},");
                }
                let _ = writeln!(
                    out,
                    "      \"p95_regression\": {}",
                    json_number(cell.p95_regression())
                );
                let comma = if i + 1 < self.cells.len() { "," } else { "" };
                let _ = writeln!(out, "    }}{comma}");
            }
            out.push_str("  ]\n");
        }
        out.push('}');
        out
    }

    /// Renders a one-line-per-cell summary table for the terminal.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== workload {} (coverage SLO {:.2} within {} rounds) ==",
            self.scenario, self.spec.slo.min_coverage, self.spec.coverage_rounds
        );
        for cell in &self.cells {
            let _ = writeln!(
                out,
                "  {:<10} {} coverage={:.4} (min {:.4}) p50={} p95={} (control {}, regression {:+.1}) \
                 p99={} dup={:.2} pub_share={:.2} nat_blocked={} fault_dropped={}",
                cell.protocol,
                if cell.meets_slo(&self.spec.slo) {
                    "ok      "
                } else {
                    "SLO MISS"
                },
                cell.report.coverage,
                cell.report.min_chunk_coverage,
                cell.report.latency_p50,
                cell.report.latency_p95,
                cell.control.latency_p95,
                cell.p95_regression(),
                cell.report.latency_p99,
                cell.report.duplicate_factor,
                cell.report.public_serve_share,
                cell.report.nat_blocked,
                cell.report.fault_dropped,
            );
        }
        out
    }
}

/// Runs one workload-tier cell: the scenario run with the stream riding it, plus the
/// no-dynamics control (same seed and workload, no script) the regression SLO compares
/// against.
pub fn run_workload_cell(
    script: &ScenarioScript,
    kind: ProtocolKind,
    scale: Scale,
    seed: u64,
    rounds: u64,
    spec: WorkloadSpec,
) -> WorkloadCellReport {
    // Same all-public rule for NAT-oblivious cells as the connectivity matrix.
    let cell_script = if kind.is_nat_aware() {
        script.clone()
    } else {
        script.with_public_flash_crowds()
    };
    let params = cell_params(kind, scale, seed, rounds)
        .with_scenario(cell_script)
        .with_workload(spec);
    let out = run_kind(kind, &params, &ProtocolConfigs::default());
    let control_params = cell_params(kind, scale, seed, rounds).with_workload(spec);
    let control_out = run_kind(kind, &control_params, &ProtocolConfigs::default());
    WorkloadCellReport {
        protocol: kind.name().to_string(),
        report: out.workload.expect("workload was configured"),
        control: control_out.workload.expect("workload was configured"),
    }
}

/// Runs the workload tier: every script in `scenarios` × every protocol in `protocols`,
/// each cell carrying the scale's canned dissemination stream
/// ([`matrix_workload_spec`]).
pub fn run_workload_matrix(
    scenarios: &[ScenarioScript],
    protocols: &[ProtocolKind],
    scale: Scale,
    seed: u64,
) -> Vec<WorkloadScenarioReport> {
    let rounds = matrix_rounds(scale);
    let spec = matrix_workload_spec(scale);
    scenarios
        .iter()
        .map(|script| WorkloadScenarioReport {
            scenario: script.name().to_string(),
            seed,
            rounds,
            initial_nodes: scale.nodes(MATRIX_PAPER_NODES),
            spec,
            cells: protocols
                .iter()
                .map(|&kind| run_workload_cell(script, kind, scale, seed, rounds, spec))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use croupier_metrics::EstimationErrors;

    fn sample(round: u64, component: f64) -> RoundSample {
        RoundSample {
            round,
            node_count: 10,
            true_ratio: 0.2,
            estimation: EstimationErrors::default(),
            avg_path_length: Some(2.0),
            clustering: Some(0.1),
            largest_component: Some(component),
            indegree_gini: None,
        }
    }

    #[test]
    fn partition_and_recovery_are_detected_in_order() {
        let samples = vec![
            sample(2, 1.0),
            sample(4, 1.0),
            sample(6, 0.6),
            sample(8, 0.7),
            sample(10, 0.98),
            sample(12, 1.0),
        ];
        let (partition, recovery, min) = detect_partition_recovery(&samples, 5, 0.95);
        assert_eq!(partition, Some(6));
        assert_eq!(recovery, Some(10));
        assert!((min - 0.6).abs() < 1e-9);
    }

    #[test]
    fn samples_before_the_disruption_are_ignored() {
        let samples = vec![sample(2, 0.1), sample(6, 1.0), sample(8, 1.0)];
        let (partition, recovery, min) = detect_partition_recovery(&samples, 4, 0.95);
        assert_eq!(partition, None);
        assert_eq!(recovery, None);
        assert!((min - 1.0).abs() < 1e-9);
    }

    #[test]
    fn an_unrecovered_partition_has_no_recovery_round() {
        let samples = vec![sample(6, 0.5), sample(8, 0.5)];
        let (partition, recovery, _) = detect_partition_recovery(&samples, 5, 0.95);
        assert_eq!(partition, Some(6));
        assert_eq!(recovery, None);
    }

    #[test]
    fn cell_params_give_cyclon_an_all_public_population() {
        let nat_aware = cell_params(ProtocolKind::Croupier, Scale::Tiny, 1, 24);
        let oblivious = cell_params(ProtocolKind::Cyclon, Scale::Tiny, 1, 24);
        assert_eq!(nat_aware.total_nodes(), oblivious.total_nodes());
        assert_eq!(oblivious.n_private, 0);
        assert!(nat_aware.n_private > nat_aware.n_public);
    }

    #[test]
    fn report_json_is_well_formed_and_carries_the_gate() {
        let report = ScenarioReport {
            scenario: String::from("reboot_storm"),
            seed: 42,
            rounds: 24,
            initial_nodes: 25,
            disruption_round: Some(12),
            recovery_threshold: RECOVERY_THRESHOLD,
            fault_tier: false,
            cells: vec![CellReport {
                protocol: String::from("croupier"),
                recovered: true,
                final_largest_component: 1.0,
                min_largest_component: 0.8,
                partition_round: Some(14),
                recovery_round: Some(18),
                final_estimation_error: 0.05,
                indegree: IndegreeStats {
                    min: 1,
                    max: 9,
                    mean: 4.5,
                    std_dev: 1.2,
                },
                indegree_histogram: vec![(1, 2), (4, 10)],
                blocked_messages: 123,
                stale_binding_failures: 45,
                node_count: 25,
                final_indegree_gini: 0.12,
                clean_indegree_gini: 0.12,
                fault_injected: 0,
                fault_drops: 0,
                retries_fired: 0,
                exchanges_abandoned: 0,
            }],
        };
        assert!(report.all_recovered());
        assert!(report.gates_pass());
        let json = report.to_json();
        assert!(json.contains("\"scenario\": \"reboot_storm\""));
        assert!(json.contains("\"all_recovered\": true"));
        assert!(json.contains("\"croupier_gini_ok\": true"));
        assert!(json.contains("\"fault_tier\": false"));
        assert!(json.contains("\"final_indegree_gini\": 0.12"));
        assert!(json.contains("\"clean_indegree_gini\": 0.12"));
        assert!(json.contains("\"gini_degradation\": 0"));
        assert!(json.contains("\"stale_binding_failures\": 45"));
        assert!(json.contains("\"indegree_histogram\": [[1, 2], [4, 10]]"));
        assert!(json.contains("\"partition_round\": 14"));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in {json}"
            );
        }
        let table = report.render_table();
        assert!(table.contains("croupier"));
        assert!(table.contains("ok"));
    }

    #[test]
    fn a_matrix_cell_runs_end_to_end_at_tiny_scale() {
        let rounds = matrix_rounds(Scale::Tiny);
        let script = ScenarioScript::reboot_storm(rounds);
        let cell = run_cell(&script, ProtocolKind::Croupier, Scale::Tiny, 7, rounds);
        assert_eq!(cell.protocol, "croupier");
        assert!(cell.node_count > 0);
        assert!(cell.recovered, "croupier should ride out a reboot storm");
        assert!(cell.indegree.mean > 0.0);
        assert!(!cell.indegree_histogram.is_empty());
        assert_eq!(cell.fault_injected, 0, "clean-network cell injects nothing");
    }

    #[test]
    fn a_fault_cell_injects_and_recovers_at_tiny_scale() {
        let rounds = matrix_rounds(Scale::Tiny);
        let script = ScenarioScript::lossy_10(rounds);
        assert!((recovery_threshold_for(&script) - FAULT_RECOVERY_THRESHOLD).abs() < 1e-12);
        let cell = run_cell(&script, ProtocolKind::Croupier, Scale::Tiny, 7, rounds);
        assert!(cell.fault_injected > 0, "the lossy window must inject");
        assert!(cell.fault_drops > 0);
        assert!(cell.recovered, "croupier should recover after the clear");
        assert!(
            cell.clean_indegree_gini > 0.0,
            "the no-fault control run must produce a real overlay"
        );
    }

    #[test]
    fn the_gini_gate_compares_degradation_against_the_best_baseline() {
        let cell = |protocol: &str, fault_gini: f64, clean_gini: f64| CellReport {
            protocol: protocol.to_string(),
            recovered: true,
            final_largest_component: 1.0,
            min_largest_component: 1.0,
            partition_round: None,
            recovery_round: None,
            final_estimation_error: 0.0,
            indegree: IndegreeStats::default(),
            indegree_histogram: Vec::new(),
            blocked_messages: 0,
            stale_binding_failures: 0,
            node_count: 10,
            final_indegree_gini: fault_gini,
            clean_indegree_gini: clean_gini,
            fault_injected: 100,
            fault_drops: 50,
            retries_fired: 10,
            exchanges_abandoned: 2,
        };
        // Gozar degrades by +0.02, nylon by +0.06: the best baseline degradation is 0.02,
        // so the bar for croupier is 0.02 + FAULT_GINI_MARGIN = 0.07.
        let report = |croupier_fault_gini: f64, fault_tier: bool| ScenarioReport {
            scenario: String::from("lossy_10"),
            seed: 1,
            rounds: 24,
            initial_nodes: 25,
            disruption_round: Some(12),
            recovery_threshold: FAULT_RECOVERY_THRESHOLD,
            fault_tier,
            cells: vec![
                // Croupier's clean Gini (0.35) is far above the baselines' — only the
                // delta matters.
                cell("croupier", croupier_fault_gini, 0.35),
                cell("gozar", 0.17, 0.15),
                cell("nylon", 0.26, 0.20),
            ],
        };
        assert!(
            report(0.35, true).croupier_gini_ok(),
            "no degradation is fine"
        );
        assert!(
            report(0.41, true).croupier_gini_ok(),
            "+0.06 is within margin of the best baseline's +0.02"
        );
        assert!(
            !report(0.43, true).croupier_gini_ok(),
            "+0.08 exceeds best baseline degradation + margin"
        );
        assert!(
            report(0.9, false).croupier_gini_ok(),
            "clean-network scenarios skip the Gini gate"
        );
        assert!(!report(0.43, true).gates_pass());
        let improved = report(0.30, true);
        assert!(
            improved.croupier_gini_ok(),
            "a fault run that ends more balanced passes trivially"
        );
        assert!(improved.cells[0].gini_degradation() < 0.0);
    }

    #[test]
    fn workload_report_json_is_well_formed_and_carries_the_gate() {
        let delivery = |p95: f64| WorkloadReport {
            chunks_published: 6,
            chunks_sealed: 6,
            expected_deliveries: 120,
            unique_deliveries: 119,
            total_deliveries: 180,
            coverage: 119.0 / 120.0,
            min_chunk_coverage: 0.95,
            latency_p50: 2.0,
            latency_p95: p95,
            latency_p99: p95 + 1.0,
            duplicate_factor: 180.0 / 119.0,
            pushes_attempted: 200,
            pulls_served: 40,
            nat_blocked: 17,
            fault_dropped: 3,
            public_serve_share: 0.88,
        };
        let report = WorkloadScenarioReport {
            scenario: String::from("reboot_storm"),
            seed: 42,
            rounds: 24,
            initial_nodes: 25,
            spec: matrix_workload_spec(Scale::Tiny),
            cells: vec![WorkloadCellReport {
                protocol: String::from("croupier"),
                report: delivery(5.0),
                control: delivery(4.0),
            }],
        };
        assert!(report.croupier_slo_ok(), "the literal cell meets its SLOs");
        assert!(report.gates_pass());
        let json = report.to_json();
        assert!(json.contains("\"scenario\": \"reboot_storm\""));
        assert!(json.contains("\"croupier_slo_ok\": true"));
        assert!(json.contains("\"slo_pass\": true"));
        assert!(json.contains("\"public_serve_share\": 0.88"));
        assert!(json.contains("\"p95_regression\": 1"));
        assert!(json.contains("\"min_coverage\": 0.85"));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in {json}"
            );
        }
        let table = report.render_table();
        assert!(table.contains("croupier"));
        assert!(table.contains("pub_share=0.88"));
        assert!(table.contains("ok"));
    }

    #[test]
    fn a_workload_cell_runs_end_to_end_at_tiny_scale() {
        let rounds = matrix_rounds(Scale::Tiny);
        let script = ScenarioScript::reboot_storm(rounds);
        let spec = matrix_workload_spec(Scale::Tiny);
        let cell = run_workload_cell(
            &script,
            ProtocolKind::Croupier,
            Scale::Tiny,
            7,
            rounds,
            spec,
        );
        assert_eq!(cell.protocol, "croupier");
        assert!(cell.report.chunks_published > 0, "the stream must publish");
        assert!(cell.report.unique_deliveries > 0, "chunks must land");
        assert!(
            cell.control.coverage > 0.0,
            "the no-dynamics control must deliver"
        );
        assert!(
            cell.meets_slo(&spec.slo),
            "tiny croupier cell misses its SLO: {cell:?}"
        );
    }
}
