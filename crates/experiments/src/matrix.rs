//! The scenario-matrix runner: canned NAT-dynamics scripts × the four protocols.
//!
//! Each cell of the matrix runs one [`ScenarioScript`] against one [`ProtocolKind`] and
//! distils the run into a [`CellReport`]: the in-degree distribution of the final
//! overlay, the rounds at which the overlay partitioned and recovered (if it ever
//! dipped), stale-binding send failures caused by scripted gateway reboots, and the
//! final estimation error. Graph metrics come from the per-sample CSR pipeline
//! (`croupier-metrics`), so a matrix run reuses the same parallel BFS machinery as the
//! paper figures.
//!
//! One [`ScenarioReport`] per scenario (all protocol cells inside) serialises to the
//! `SCENARIO_<name>.json` artifacts the CI `scenario-matrix` job uploads; the gate is
//! [`ScenarioReport::all_recovered`] — every protocol must end the run with its overlay
//! connected again.

use std::fmt::Write as _;

use croupier_metrics::{indegree_histogram, indegree_stats, IndegreeStats};

use crate::output::{json_number, json_string, Scale};
use crate::protocols::{run_kind, ProtocolConfigs, ProtocolKind};
use crate::runner::{ExperimentParams, RoundSample};
use crate::scenario::ScenarioScript;

/// A run counts as recovered when the largest connected component again holds at least
/// this fraction of the sampled nodes.
pub const RECOVERY_THRESHOLD: f64 = 0.95;

/// The paper-scale population anchoring the matrix (scaled down by [`Scale::nodes`]; the
/// CI job runs `quick`, i.e. 100 nodes — well under its 1k-node budget).
const MATRIX_PAPER_NODES: usize = 1_000;

/// The paper-scale round count anchoring the matrix.
const MATRIX_PAPER_ROUNDS: u64 = 120;

/// The distilled outcome of one scenario × protocol cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellReport {
    /// Protocol name (figure-legend spelling).
    pub protocol: String,
    /// `true` when the final sample's largest component reaches
    /// [`RECOVERY_THRESHOLD`] — the CI gate.
    pub recovered: bool,
    /// Largest-component fraction at the final sample.
    pub final_largest_component: f64,
    /// Smallest largest-component fraction observed at or after the first disruption.
    pub min_largest_component: f64,
    /// First sampled round (at or after the disruption) where the component fraction
    /// dropped below the threshold, if it ever did.
    pub partition_round: Option<u64>,
    /// First sampled round after `partition_round` where the fraction was back at or
    /// above the threshold, if the overlay partitioned and recovered.
    pub recovery_round: Option<u64>,
    /// Average estimation error at the final sample.
    pub final_estimation_error: f64,
    /// Summary statistics of the final overlay's in-degree distribution.
    pub indegree: IndegreeStats,
    /// Full in-degree histogram of the final overlay: `(in-degree, node count)`.
    pub indegree_histogram: Vec<(usize, usize)>,
    /// Messages blocked by NAT filtering over the whole run.
    pub blocked_messages: u64,
    /// Blocked messages attributable to a scripted gateway reboot.
    pub stale_binding_failures: u64,
    /// Live nodes at the end of the run.
    pub node_count: usize,
}

/// All protocol cells of one scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (also the report's file-name stem).
    pub scenario: String,
    /// Master seed of every cell in this report.
    pub seed: u64,
    /// Rounds each cell simulated.
    pub rounds: u64,
    /// Initial population of each cell.
    pub initial_nodes: usize,
    /// Round of the first disruptive scripted action, if any.
    pub disruption_round: Option<u64>,
    /// The per-protocol cells, in [`ProtocolKind::ALL`] order.
    pub cells: Vec<CellReport>,
}

impl ScenarioReport {
    /// Returns `true` when every protocol ends the run with a connected overlay.
    pub fn all_recovered(&self) -> bool {
        self.cells.iter().all(|c| c.recovered)
    }

    /// Serialises the report as pretty-printed JSON (hand-emitted, like
    /// [`FigureData::to_json`](crate::output::FigureData::to_json), because the offline
    /// build has no `serde_json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"scenario\": {},", json_string(&self.scenario));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"rounds\": {},", self.rounds);
        let _ = writeln!(out, "  \"initial_nodes\": {},", self.initial_nodes);
        let _ = writeln!(
            out,
            "  \"disruption_round\": {},",
            match self.disruption_round {
                Some(round) => round.to_string(),
                None => String::from("null"),
            }
        );
        let _ = writeln!(
            out,
            "  \"recovery_threshold\": {},",
            json_number(RECOVERY_THRESHOLD)
        );
        let _ = writeln!(out, "  \"all_recovered\": {},", self.all_recovered());
        if self.cells.is_empty() {
            out.push_str("  \"cells\": []\n");
        } else {
            out.push_str("  \"cells\": [\n");
            for (i, cell) in self.cells.iter().enumerate() {
                out.push_str("    {\n");
                let _ = writeln!(out, "      \"protocol\": {},", json_string(&cell.protocol));
                let _ = writeln!(out, "      \"recovered\": {},", cell.recovered);
                let _ = writeln!(
                    out,
                    "      \"final_largest_component\": {},",
                    json_number(cell.final_largest_component)
                );
                let _ = writeln!(
                    out,
                    "      \"min_largest_component\": {},",
                    json_number(cell.min_largest_component)
                );
                let _ = writeln!(
                    out,
                    "      \"partition_round\": {},",
                    match cell.partition_round {
                        Some(round) => round.to_string(),
                        None => String::from("null"),
                    }
                );
                let _ = writeln!(
                    out,
                    "      \"recovery_round\": {},",
                    match cell.recovery_round {
                        Some(round) => round.to_string(),
                        None => String::from("null"),
                    }
                );
                let _ = writeln!(
                    out,
                    "      \"final_estimation_error\": {},",
                    json_number(cell.final_estimation_error)
                );
                let _ = writeln!(
                    out,
                    "      \"indegree\": {{\"min\": {}, \"max\": {}, \"mean\": {}, \"std_dev\": {}}},",
                    cell.indegree.min,
                    cell.indegree.max,
                    json_number(cell.indegree.mean),
                    json_number(cell.indegree.std_dev)
                );
                out.push_str("      \"indegree_histogram\": [");
                for (j, (degree, count)) in cell.indegree_histogram.iter().enumerate() {
                    let comma = if j + 1 < cell.indegree_histogram.len() {
                        ", "
                    } else {
                        ""
                    };
                    let _ = write!(out, "[{degree}, {count}]{comma}");
                }
                out.push_str("],\n");
                let _ = writeln!(
                    out,
                    "      \"blocked_messages\": {},",
                    cell.blocked_messages
                );
                let _ = writeln!(
                    out,
                    "      \"stale_binding_failures\": {},",
                    cell.stale_binding_failures
                );
                let _ = writeln!(out, "      \"node_count\": {}", cell.node_count);
                let comma = if i + 1 < self.cells.len() { "," } else { "" };
                let _ = writeln!(out, "    }}{comma}");
            }
            out.push_str("  ]\n");
        }
        out.push('}');
        out
    }

    /// Renders a one-line-per-cell summary table for the terminal.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== scenario {} (disruption at round {:?}) ==",
            self.scenario, self.disruption_round
        );
        for cell in &self.cells {
            let _ = writeln!(
                out,
                "  {:<10} {} component={:.3} (min {:.3}) partition={:<6} recovery={:<6} \
                 stale_fails={} err={:.4}",
                cell.protocol,
                if cell.recovered {
                    "ok       "
                } else {
                    "PARTITIONED"
                },
                cell.final_largest_component,
                cell.min_largest_component,
                cell.partition_round
                    .map_or(String::from("-"), |r| r.to_string()),
                cell.recovery_round
                    .map_or(String::from("-"), |r| r.to_string()),
                cell.stale_binding_failures,
                cell.final_estimation_error,
            );
        }
        out
    }
}

/// Scans a run's samples for the partition/recovery pattern: starting from
/// `disruption_round`, the first sample whose largest-component fraction drops below
/// `threshold` and the first later sample back at or above it. Also returns the smallest
/// fraction observed from the disruption onwards (1.0 when no sample qualifies).
pub fn detect_partition_recovery(
    samples: &[RoundSample],
    disruption_round: u64,
    threshold: f64,
) -> (Option<u64>, Option<u64>, f64) {
    let mut partition = None;
    let mut recovery = None;
    let mut min_component = 1.0f64;
    for sample in samples {
        if sample.round < disruption_round {
            continue;
        }
        let Some(fraction) = sample.largest_component else {
            continue;
        };
        min_component = min_component.min(fraction);
        if partition.is_none() && fraction < threshold {
            partition = Some(sample.round);
        } else if partition.is_some() && recovery.is_none() && fraction >= threshold {
            recovery = Some(sample.round);
        }
    }
    (partition, recovery, min_component)
}

/// The experiment parameters for one matrix cell. Cyclon is NAT-oblivious, so — as in
/// the paper's evaluation — it runs on an all-public population of the same size; the
/// NAT-aware protocols get the paper's 1:4 public/private split.
pub fn cell_params(kind: ProtocolKind, scale: Scale, seed: u64, rounds: u64) -> ExperimentParams {
    let total = scale.nodes(MATRIX_PAPER_NODES);
    let (n_public, n_private) = if kind.is_nat_aware() {
        (total / 5, total - total / 5)
    } else {
        (total, 0)
    };
    ExperimentParams::default()
        .with_seed(seed)
        .with_population(n_public, n_private)
        .with_rounds(rounds)
        .with_sample_every(2)
        .with_graph_metrics(16.min(total))
        .with_engine_threads(scale.engine_threads())
}

/// Runs one scenario × protocol cell.
pub fn run_cell(
    script: &ScenarioScript,
    kind: ProtocolKind,
    scale: Scale,
    seed: u64,
    rounds: u64,
) -> CellReport {
    // NAT-oblivious cells run all-public (see cell_params); their flash crowds must
    // join all-public too, or the burst would smuggle in exactly the NATed nodes the
    // cell excludes.
    let cell_script = if kind.is_nat_aware() {
        script.clone()
    } else {
        script.with_public_flash_crowds()
    };
    let params = cell_params(kind, scale, seed, rounds).with_scenario(cell_script);
    let out = run_kind(kind, &params, &ProtocolConfigs::default());
    let disruption = script.first_disruption_round().unwrap_or(0);
    let (partition_round, recovery_round, min_largest_component) =
        detect_partition_recovery(&out.samples, disruption, RECOVERY_THRESHOLD);
    let last = out.samples.last();
    let final_largest_component = last.and_then(|s| s.largest_component).unwrap_or(0.0);
    CellReport {
        protocol: kind.name().to_string(),
        recovered: final_largest_component >= RECOVERY_THRESHOLD,
        final_largest_component,
        min_largest_component,
        partition_round,
        recovery_round,
        final_estimation_error: last.map(|s| s.estimation.average).unwrap_or(f64::NAN),
        indegree: indegree_stats(&out.final_snapshot),
        indegree_histogram: indegree_histogram(&out.final_snapshot),
        blocked_messages: out.nat_stats.blocked_messages,
        stale_binding_failures: out.nat_stats.stale_binding_failures,
        node_count: last.map(|s| s.node_count).unwrap_or(0),
    }
}

/// Runs the full matrix: every script in `scenarios` × every protocol in `protocols`.
pub fn run_matrix(
    scenarios: &[ScenarioScript],
    protocols: &[ProtocolKind],
    scale: Scale,
    seed: u64,
) -> Vec<ScenarioReport> {
    let rounds = matrix_rounds(scale);
    scenarios
        .iter()
        .map(|script| ScenarioReport {
            scenario: script.name().to_string(),
            seed,
            rounds,
            initial_nodes: scale.nodes(MATRIX_PAPER_NODES),
            disruption_round: script.first_disruption_round(),
            cells: protocols
                .iter()
                .map(|&kind| run_cell(script, kind, scale, seed, rounds))
                .collect(),
        })
        .collect()
}

/// The round count a matrix run uses at `scale` — also the value to hand
/// [`ScenarioScript::by_name`] so canned disruptions land mid-run.
pub fn matrix_rounds(scale: Scale) -> u64 {
    scale.rounds(MATRIX_PAPER_ROUNDS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use croupier_metrics::EstimationErrors;

    fn sample(round: u64, component: f64) -> RoundSample {
        RoundSample {
            round,
            node_count: 10,
            true_ratio: 0.2,
            estimation: EstimationErrors::default(),
            avg_path_length: Some(2.0),
            clustering: Some(0.1),
            largest_component: Some(component),
            indegree_gini: None,
        }
    }

    #[test]
    fn partition_and_recovery_are_detected_in_order() {
        let samples = vec![
            sample(2, 1.0),
            sample(4, 1.0),
            sample(6, 0.6),
            sample(8, 0.7),
            sample(10, 0.98),
            sample(12, 1.0),
        ];
        let (partition, recovery, min) = detect_partition_recovery(&samples, 5, 0.95);
        assert_eq!(partition, Some(6));
        assert_eq!(recovery, Some(10));
        assert!((min - 0.6).abs() < 1e-9);
    }

    #[test]
    fn samples_before_the_disruption_are_ignored() {
        let samples = vec![sample(2, 0.1), sample(6, 1.0), sample(8, 1.0)];
        let (partition, recovery, min) = detect_partition_recovery(&samples, 4, 0.95);
        assert_eq!(partition, None);
        assert_eq!(recovery, None);
        assert!((min - 1.0).abs() < 1e-9);
    }

    #[test]
    fn an_unrecovered_partition_has_no_recovery_round() {
        let samples = vec![sample(6, 0.5), sample(8, 0.5)];
        let (partition, recovery, _) = detect_partition_recovery(&samples, 5, 0.95);
        assert_eq!(partition, Some(6));
        assert_eq!(recovery, None);
    }

    #[test]
    fn cell_params_give_cyclon_an_all_public_population() {
        let nat_aware = cell_params(ProtocolKind::Croupier, Scale::Tiny, 1, 24);
        let oblivious = cell_params(ProtocolKind::Cyclon, Scale::Tiny, 1, 24);
        assert_eq!(nat_aware.total_nodes(), oblivious.total_nodes());
        assert_eq!(oblivious.n_private, 0);
        assert!(nat_aware.n_private > nat_aware.n_public);
    }

    #[test]
    fn report_json_is_well_formed_and_carries_the_gate() {
        let report = ScenarioReport {
            scenario: String::from("reboot_storm"),
            seed: 42,
            rounds: 24,
            initial_nodes: 25,
            disruption_round: Some(12),
            cells: vec![CellReport {
                protocol: String::from("croupier"),
                recovered: true,
                final_largest_component: 1.0,
                min_largest_component: 0.8,
                partition_round: Some(14),
                recovery_round: Some(18),
                final_estimation_error: 0.05,
                indegree: IndegreeStats {
                    min: 1,
                    max: 9,
                    mean: 4.5,
                    std_dev: 1.2,
                },
                indegree_histogram: vec![(1, 2), (4, 10)],
                blocked_messages: 123,
                stale_binding_failures: 45,
                node_count: 25,
            }],
        };
        assert!(report.all_recovered());
        let json = report.to_json();
        assert!(json.contains("\"scenario\": \"reboot_storm\""));
        assert!(json.contains("\"all_recovered\": true"));
        assert!(json.contains("\"stale_binding_failures\": 45"));
        assert!(json.contains("\"indegree_histogram\": [[1, 2], [4, 10]]"));
        assert!(json.contains("\"partition_round\": 14"));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in {json}"
            );
        }
        let table = report.render_table();
        assert!(table.contains("croupier"));
        assert!(table.contains("ok"));
    }

    #[test]
    fn a_matrix_cell_runs_end_to_end_at_tiny_scale() {
        let rounds = matrix_rounds(Scale::Tiny);
        let script = ScenarioScript::reboot_storm(rounds);
        let cell = run_cell(&script, ProtocolKind::Croupier, Scale::Tiny, 7, rounds);
        assert_eq!(cell.protocol, "croupier");
        assert!(cell.node_count > 0);
        assert!(cell.recovered, "croupier should ride out a reboot storm");
        assert!(cell.indegree.mean > 0.0);
        assert!(!cell.indegree_histogram.is_empty());
    }
}
