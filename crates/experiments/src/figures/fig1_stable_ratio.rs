//! Figure 1: estimation accuracy for a **stable** public/private ratio under different
//! history-window sizes.
//!
//! Paper setup: 1000 public and 4000 private nodes join following Poisson processes with
//! 50 ms / 12.5 ms inter-arrival times; the average and maximum estimation errors are
//! tracked over 250 rounds for (α, γ) ∈ {(10, 25), (25, 50), (100, 250)}. Expected shape:
//! larger windows converge more slowly but to lower steady-state error.

use croupier::CroupierConfig;

use crate::figures::{
    estimation_error_figures, run_labelled, window_label, LabelledRun, HISTORY_WINDOWS,
};
use crate::output::{FigureData, Scale};
use crate::runner::ExperimentParams;

/// Paper-scale populations for this experiment.
const PAPER_PUBLIC: usize = 1_000;
const PAPER_PRIVATE: usize = 4_000;
const PAPER_ROUNDS: u64 = 250;

/// Builds the experiment parameters for one history-window configuration.
pub fn params(scale: Scale, seed: u64) -> ExperimentParams {
    ExperimentParams::default()
        .with_seed(seed)
        .with_population(scale.nodes(PAPER_PUBLIC), scale.nodes(PAPER_PRIVATE))
        .with_rounds(scale.rounds(PAPER_ROUNDS))
        .with_sample_every(scale.sample_every())
}

/// The first round at which a series' value drops below `threshold` and never rises above
/// it again — the convergence criterion used in §VII-B of the paper to compare history
/// windows ("it takes roughly 100 rounds longer for the largest history windows to converge
/// on good estimates compared to the smallest").
///
/// Returns `None` if the series never converges under that definition.
pub fn convergence_round(points: &[(f64, f64)], threshold: f64) -> Option<u64> {
    let last_bad = points
        .iter()
        .rposition(|(_, y)| *y > threshold)
        .map(|i| i + 1)
        .unwrap_or(0);
    points.get(last_bad).map(|(x, _)| *x as u64)
}

/// Runs the experiment and returns Fig. 1(a) (average error) and Fig. 1(b) (maximum error).
pub fn run(scale: Scale) -> Vec<FigureData> {
    let runs: Vec<LabelledRun> = HISTORY_WINDOWS
        .iter()
        .map(|(alpha, gamma)| LabelledRun {
            label: window_label(*alpha, *gamma),
            params: params(scale, 0xF161),
            config: CroupierConfig::default()
                .with_local_history(*alpha)
                .with_neighbour_history(*gamma),
        })
        .collect();
    let outputs = run_labelled(runs);
    estimation_error_figures("fig1", "Stable ratio, varying history windows", &outputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_two_figures_with_all_window_configs() {
        let figures = run(Scale::Tiny);
        assert_eq!(figures.len(), 2);
        assert_eq!(figures[0].id, "fig1a");
        assert_eq!(figures[1].id, "fig1b");
        for figure in &figures {
            assert_eq!(figure.series.len(), HISTORY_WINDOWS.len());
            for series in &figure.series {
                assert!(!series.points.is_empty());
            }
        }
    }

    #[test]
    fn convergence_round_finds_the_first_stable_point() {
        let points = vec![
            (1.0, 0.5),
            (2.0, 0.05),
            (3.0, 0.2),
            (4.0, 0.03),
            (5.0, 0.02),
        ];
        assert_eq!(convergence_round(&points, 0.1), Some(4));
        assert_eq!(convergence_round(&points, 0.01), None);
        assert_eq!(convergence_round(&points, 1.0), Some(1));
        assert_eq!(convergence_round(&[], 0.1), None);
    }

    #[test]
    fn smaller_windows_converge_no_later_than_larger_ones() {
        let figures = run(Scale::Tiny);
        let threshold = 0.05;
        let small = convergence_round(
            &figures[0].series(&window_label(10, 25)).unwrap().points,
            threshold,
        );
        let large = convergence_round(
            &figures[0].series(&window_label(100, 250)).unwrap().points,
            threshold,
        );
        if let (Some(small), Some(large)) = (small, large) {
            assert!(
                small <= large,
                "the small window should converge no later than the large one ({small} vs {large})"
            );
        }
    }

    #[test]
    fn estimation_error_converges_for_every_window() {
        let figures = run(Scale::Tiny);
        for series in &figures[0].series {
            let tail = series.tail_mean(5).unwrap();
            assert!(
                tail < 0.12,
                "steady-state average error too high for {}: {tail}",
                series.label
            );
        }
        // Maximum error is always at least the average error.
        for (avg_series, max_series) in figures[0].series.iter().zip(&figures[1].series) {
            assert!(max_series.tail_mean(5).unwrap() >= avg_series.tail_mean(5).unwrap());
        }
    }
}
