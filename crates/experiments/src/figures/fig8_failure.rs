//! Figure 7(b): connectivity after **catastrophic failure**.
//!
//! Paper setup: the overlay is brought to steady state (1000 nodes, 80 % private), then a
//! large fraction of the nodes (40 % to 90 %) crashes at a single instant; the metric is the
//! fraction of surviving nodes contained in the biggest connected cluster. Expected shape:
//! Croupier remains the most connected (≥ ~85 % at 90 % failures), clearly above Gozar and
//! Nylon, whose relay/rendezvous infrastructure dies with the failed nodes.

use crate::output::{FigureData, Scale, Series};
use crate::protocols::{run_failure_kind, ProtocolConfigs, ProtocolKind};
use crate::runner::ExperimentParams;

/// Failure fractions evaluated by the paper (40 % … 90 %).
pub const PAPER_FAILURE_FRACTIONS: [f64; 6] = [0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
const PAPER_NODES: usize = 1_000;
const PAPER_WARMUP_ROUNDS: u64 = 100;

/// Failure fractions evaluated at a given scale.
pub fn failure_fractions(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Tiny => vec![0.5, 0.9],
        Scale::Quick | Scale::Paper | Scale::Large | Scale::Huge => {
            PAPER_FAILURE_FRACTIONS.to_vec()
        }
    }
}

/// Builds the warm-up parameters for one protocol.
pub fn params(scale: Scale, kind: ProtocolKind, seed: u64) -> ExperimentParams {
    let total = scale.nodes(PAPER_NODES);
    let (n_public, n_private) = if kind == ProtocolKind::Cyclon {
        (total, 0)
    } else {
        let public = (total as f64 * 0.2).round() as usize;
        (public, total - public)
    };
    ExperimentParams::default()
        .with_seed(seed)
        .with_population(n_public, n_private)
        .with_rounds(scale.rounds(PAPER_WARMUP_ROUNDS))
        .with_sample_every(scale.rounds(PAPER_WARMUP_ROUNDS))
}

/// Runs the experiment and returns Fig. 7(b): biggest-cluster size (% of survivors) as a
/// function of the failure percentage, one series per protocol.
pub fn run(scale: Scale) -> Vec<FigureData> {
    let fractions = failure_fractions(scale);
    let mut figure = FigureData::new(
        "fig7b",
        "Connectivity after catastrophic failure (80% private nodes)",
        "percentage of failed nodes (%)",
        "biggest cluster size (% of survivors)",
    );

    let results: Vec<(ProtocolKind, Vec<(f64, f64)>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ProtocolKind::ALL
            .into_iter()
            .map(|kind| {
                let fractions = fractions.clone();
                scope.spawn(move || {
                    let configs = ProtocolConfigs::default();
                    let points: Vec<(f64, f64)> = fractions
                        .iter()
                        .map(|fraction| {
                            let connected = run_failure_kind(
                                kind,
                                &params(scale, kind, 0xF168),
                                &configs,
                                *fraction,
                            );
                            (fraction * 100.0, connected * 100.0)
                        })
                        .collect();
                    (kind, points)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    });

    for (kind, points) in results {
        let mut series = Series::new(kind.name());
        for (x, y) in points {
            series.push(x, y);
        }
        figure.series.push(series);
    }
    vec![figure]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_series_per_protocol() {
        let figures = run(Scale::Tiny);
        assert_eq!(figures.len(), 1);
        assert_eq!(figures[0].series.len(), ProtocolKind::ALL.len());
        for series in &figures[0].series {
            assert_eq!(series.points.len(), failure_fractions(Scale::Tiny).len());
            for (_, y) in &series.points {
                assert!((0.0..=100.0).contains(y));
            }
        }
    }

    #[test]
    fn croupier_stays_connected_after_moderate_failures() {
        let figures = run(Scale::Tiny);
        let croupier = figures[0].series("croupier").unwrap();
        let at_50 = croupier
            .points
            .iter()
            .find(|(x, _)| (*x - 50.0).abs() < 1e-9)
            .unwrap()
            .1;
        assert!(
            at_50 > 70.0,
            "croupier should keep most survivors connected at 50% failures, got {at_50}%"
        );
    }

    #[test]
    fn croupier_is_at_least_as_robust_as_nylon_at_massive_failures() {
        let figures = run(Scale::Tiny);
        let value_at = |name: &str, x: f64| {
            figures[0]
                .series(name)
                .unwrap()
                .points
                .iter()
                .find(|(px, _)| (*px - x).abs() < 1e-9)
                .unwrap()
                .1
        };
        let croupier = value_at("croupier", 90.0);
        let nylon = value_at("nylon", 90.0);
        assert!(
            croupier + 10.0 >= nylon,
            "croupier ({croupier}%) should not be clearly less robust than nylon ({nylon}%)"
        );
    }
}
