//! Figure 3: effect of the **system size** on estimation accuracy.
//!
//! Paper setup: systems of 50, 100, 500, 1000 and 5000 nodes with a stable ratio of 0.2 and
//! the medium history windows (α = 25, γ = 50). Expected shape: accuracy improves quickly up
//! to a few hundred nodes and only marginally beyond.

use croupier::CroupierConfig;

use crate::figures::{estimation_error_figures, run_labelled, LabelledRun};
use crate::output::{FigureData, Scale};
use crate::runner::ExperimentParams;

/// System sizes evaluated by the paper.
pub const PAPER_SIZES: [usize; 5] = [50, 100, 500, 1_000, 5_000];
const PAPER_ROUNDS: u64 = 200;
/// Fraction of public nodes (the paper's default ratio).
const PUBLIC_RATIO: f64 = 0.2;

/// System sizes evaluated beyond the paper by [`Scale::Large`] on the sharded engine.
pub const LARGE_SIZES: [usize; 3] = [10_000, 50_000, 100_000];

/// System sizes evaluated at the million-node [`Scale::Huge`] tier.
pub const HUGE_SIZES: [usize; 2] = [500_000, 1_000_000];

/// System sizes evaluated at a given scale.
pub fn sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Tiny => vec![50, 100],
        Scale::Quick => vec![50, 100, 500],
        Scale::Paper => PAPER_SIZES.to_vec(),
        Scale::Large => LARGE_SIZES.to_vec(),
        Scale::Huge => HUGE_SIZES.to_vec(),
    }
}

/// Builds the experiment parameters for one system size.
pub fn params(scale: Scale, total_nodes: usize, seed: u64) -> ExperimentParams {
    let n_public = ((total_nodes as f64) * PUBLIC_RATIO).round() as usize;
    let n_private = total_nodes - n_public;
    // The paper uses a 10 ms inter-arrival time for the 1000-node experiments; keep the join
    // phase proportionally short for every size. At the 100k-node Large scale the Poisson
    // join phase would outlast the run, so joins are compressed to sub-millisecond spacing
    // and the sharded engine is enabled.
    let mut params = ExperimentParams::default()
        .with_seed(seed)
        .with_population(n_public, n_private)
        .with_rounds(scale.rounds(PAPER_ROUNDS))
        .with_sample_every(scale.sample_every())
        .with_engine_threads(scale.engine_threads());
    if scale == Scale::Large {
        params.public_interarrival_ms = 0.05;
        params.private_interarrival_ms = 0.0125;
    }
    if scale == Scale::Huge {
        // Ten times tighter again than Large: a million joins must still fit inside the
        // first round or two of a heavily shortened run.
        params.public_interarrival_ms = 0.005;
        params.private_interarrival_ms = 0.00125;
    }
    if scale.incremental_components() {
        params = params.with_incremental_components();
    }
    if scale.incremental_indegree() {
        params = params.with_incremental_indegree();
    }
    params = params.with_metrics_workers(scale.metrics_workers());
    params
}

/// Runs the experiment and returns Fig. 3(a) (average error) and Fig. 3(b) (maximum error),
/// one series per system size.
pub fn run(scale: Scale) -> Vec<FigureData> {
    let runs: Vec<LabelledRun> = sizes(scale)
        .into_iter()
        .map(|size| LabelledRun {
            label: format!("{size} nodes"),
            params: params(scale, size, 0xF163),
            config: CroupierConfig::default(),
        })
        .collect();
    let outputs = run_labelled(runs);
    estimation_error_figures("fig3", "Estimation error vs system size", &outputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_series_per_size() {
        let figures = run(Scale::Tiny);
        assert_eq!(figures.len(), 2);
        assert_eq!(figures[0].series.len(), sizes(Scale::Tiny).len());
        assert_eq!(figures[0].id, "fig3a");
        assert_eq!(figures[1].id, "fig3b");
    }

    #[test]
    fn larger_systems_estimate_at_least_as_well() {
        let figures = run(Scale::Tiny);
        let small = figures[0].series("50 nodes").unwrap().tail_mean(5).unwrap();
        let large = figures[0]
            .series("100 nodes")
            .unwrap()
            .tail_mean(5)
            .unwrap();
        // The paper reports a clear accuracy improvement with size; allow generous slack for
        // the tiny test scale, but the large system must not be dramatically worse.
        assert!(
            large <= small * 1.5 + 0.01,
            "estimation should not degrade with size (50 nodes: {small}, 100 nodes: {large})"
        );
    }

    #[test]
    fn paper_scale_lists_all_sizes() {
        assert_eq!(sizes(Scale::Paper), PAPER_SIZES.to_vec());
        let p = params(Scale::Paper, 1_000, 1);
        assert_eq!(p.n_public, 200);
        assert_eq!(p.n_private, 800);
        assert_eq!(p.engine_threads, 0);
    }

    #[test]
    fn huge_scale_reaches_a_million_nodes_with_incremental_metrics() {
        assert_eq!(sizes(Scale::Huge), HUGE_SIZES.to_vec());
        let p = params(Scale::Huge, 1_000_000, 1);
        assert_eq!(p.n_public + p.n_private, 1_000_000);
        assert_eq!(p.engine_threads, 8, "Huge runs on eight sharded workers");
        assert!(p.incremental_components, "Huge samples incrementally");
        assert!(
            p.incremental_indegree,
            "Huge tracks in-degree incrementally"
        );
        assert_eq!(
            p.metrics_workers, 2,
            "Huge overlaps analysis on two workers"
        );
        assert!(p.public_interarrival_ms < 1.0);
    }

    #[test]
    fn large_scale_reaches_100k_nodes_on_the_sharded_engine() {
        assert_eq!(sizes(Scale::Large), LARGE_SIZES.to_vec());
        let p = params(Scale::Large, 100_000, 1);
        assert_eq!(p.n_public + p.n_private, 100_000);
        assert_eq!(p.engine_threads, 4, "Large runs on the sharded engine");
        assert!(
            p.public_interarrival_ms < 1.0,
            "joins must be compressed so the join phase fits the run"
        );
    }
}
