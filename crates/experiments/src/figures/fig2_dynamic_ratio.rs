//! Figure 2: estimation accuracy for a **dynamic** public/private ratio under different
//! history-window sizes.
//!
//! Paper setup: the same joining workload as Figure 1; once the system is stable, new
//! public nodes join every 42 ms until the ratio has grown, then the system runs on.
//! Expected shape: small windows track the moving ratio fastest, large windows lag but end
//! up more accurate once the ratio is stable again.

use croupier::CroupierConfig;
use croupier_simulator::NatClass;

use crate::figures::{
    estimation_error_figures, run_labelled, window_label, LabelledRun, HISTORY_WINDOWS,
};
use crate::output::{FigureData, Scale, Series};
use crate::runner::{ExperimentParams, GrowthSpec};

const PAPER_PUBLIC: usize = 1_000;
const PAPER_PRIVATE: usize = 4_000;
const PAPER_ROUNDS: u64 = 300;
/// Round at which the growth phase starts (the paper starts it at t = 58, once all initial
/// nodes have joined and estimates have stabilised).
const PAPER_GROWTH_START: u64 = 58;
/// Public nodes added during the growth phase: enough to move ω from 0.20 to roughly 0.30.
const PAPER_GROWTH_COUNT: usize = 700;
const PAPER_GROWTH_INTERARRIVAL_MS: f64 = 42.0;

/// Builds the experiment parameters for one history-window configuration.
pub fn params(scale: Scale, seed: u64) -> ExperimentParams {
    let growth_count = scale.nodes(PAPER_GROWTH_COUNT);
    let rounds = scale.rounds(PAPER_ROUNDS);
    let growth_start = (scale.rounds(PAPER_GROWTH_START)).min(rounds / 2).max(5);
    // Spread the growth over roughly the same number of rounds as the paper (≈ 30 s) by
    // scaling the inter-arrival time inversely with the node count reduction.
    let interarrival =
        PAPER_GROWTH_INTERARRIVAL_MS * PAPER_GROWTH_COUNT as f64 / growth_count as f64;
    ExperimentParams::default()
        .with_seed(seed)
        .with_population(scale.nodes(PAPER_PUBLIC), scale.nodes(PAPER_PRIVATE))
        .with_rounds(rounds)
        .with_sample_every(scale.sample_every())
        .with_growth(GrowthSpec {
            start_round: growth_start,
            count: growth_count,
            interarrival_ms: interarrival,
            class: NatClass::Public,
        })
}

/// Runs the experiment and returns Fig. 2(a) (average error) and Fig. 2(b) (maximum error),
/// each including a reference series with the true public/private ratio over time.
pub fn run(scale: Scale) -> Vec<FigureData> {
    let runs: Vec<LabelledRun> = HISTORY_WINDOWS
        .iter()
        .map(|(alpha, gamma)| LabelledRun {
            label: window_label(*alpha, *gamma),
            params: params(scale, 0xF162),
            config: CroupierConfig::default()
                .with_local_history(*alpha)
                .with_neighbour_history(*gamma),
        })
        .collect();
    let outputs = run_labelled(runs);
    let mut figures =
        estimation_error_figures("fig2", "Dynamic ratio, varying history windows", &outputs);

    // Add the true-ratio reference series the paper plots alongside the errors.
    let mut ratio = Series::new("public/private ratio");
    if let Some((_, output)) = outputs.first() {
        for sample in &output.samples {
            ratio.push(sample.round as f64, sample.true_ratio);
        }
    }
    for figure in &mut figures {
        figure.series.push(ratio.clone());
    }
    figures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_grows_during_the_run() {
        let figures = run(Scale::Tiny);
        assert_eq!(figures.len(), 2);
        let ratio = figures[0]
            .series("public/private ratio")
            .expect("reference series present");
        let first = ratio.points.first().unwrap().1;
        let last = ratio.last_y().unwrap();
        assert!(
            last > first + 0.03,
            "the true ratio should grow during the run: {first} -> {last}"
        );
    }

    #[test]
    fn errors_stay_bounded_while_tracking_the_moving_ratio() {
        let figures = run(Scale::Tiny);
        for series in figures[0]
            .series
            .iter()
            .filter(|s| s.label.starts_with("alpha"))
        {
            let tail = series.tail_mean(5).unwrap();
            assert!(
                tail < 0.2,
                "error should stay bounded for {}: {tail}",
                series.label
            );
        }
    }
}
