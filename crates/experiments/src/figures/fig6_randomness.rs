//! Figure 6: randomness properties of the overlay — in-degree distribution, average path
//! length and clustering coefficient — for Croupier, Gozar, Nylon and Cyclon.
//!
//! Paper setup: 1000 nodes (20 % public for the NAT-aware protocols; Cyclon runs on an
//! all-public population), view size 10, shuffle size 5, 250 rounds. Expected shape: all
//! four systems have nearly identical, narrow in-degree distributions and path lengths;
//! Croupier's clustering coefficient is slightly *below* Cyclon's because two private nodes
//! never exchange views directly.

use croupier_metrics::indegree_histogram;

use crate::output::{FigureData, Scale, Series};
use crate::protocols::{run_kind, ProtocolConfigs, ProtocolKind};
use crate::runner::{ExperimentParams, RunOutput};

const PAPER_NODES: usize = 1_000;
const PAPER_ROUNDS: u64 = 250;

/// Builds the experiment parameters for one protocol. Cyclon runs on an all-public
/// population, as in the paper.
pub fn params(scale: Scale, kind: ProtocolKind, seed: u64) -> ExperimentParams {
    let total = scale.nodes(PAPER_NODES);
    let (n_public, n_private) = if kind == ProtocolKind::Cyclon {
        (total, 0)
    } else {
        let public = (total as f64 * 0.2).round() as usize;
        (public, total - public)
    };
    ExperimentParams::default()
        .with_seed(seed)
        .with_population(n_public, n_private)
        .with_rounds(scale.rounds(PAPER_ROUNDS))
        .with_sample_every(scale.sample_every())
        .with_graph_metrics(32)
}

/// Runs all four protocols (in parallel threads) and returns their outputs keyed by
/// protocol.
pub fn run_protocols(scale: Scale) -> Vec<(ProtocolKind, RunOutput)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = ProtocolKind::ALL
            .into_iter()
            .map(|kind| {
                scope.spawn(move || {
                    let configs = ProtocolConfigs::default();
                    let output = run_kind(kind, &params(scale, kind, 0xF166), &configs);
                    (kind, output)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    })
}

/// Runs the experiment and returns Fig. 6(a) (in-degree distribution after the final
/// round), Fig. 6(b) (average path length over time) and Fig. 6(c) (clustering coefficient
/// over time).
pub fn run(scale: Scale) -> Vec<FigureData> {
    let outputs = run_protocols(scale);

    let mut indegree_figure = FigureData::new(
        "fig6a",
        "In-degree distribution",
        "in-degree",
        "number of nodes",
    );
    let mut path_figure = FigureData::new(
        "fig6b",
        "Average path length",
        "time (rounds)",
        "avg path length",
    );
    let mut clustering_figure = FigureData::new(
        "fig6c",
        "Clustering coefficient",
        "time (rounds)",
        "clustering coefficient",
    );

    for (kind, output) in &outputs {
        let mut indegree_series = Series::new(kind.name());
        for (degree, count) in indegree_histogram(&output.final_snapshot) {
            indegree_series.push(degree as f64, count as f64);
        }
        indegree_figure.series.push(indegree_series);

        let mut path_series = Series::new(kind.name());
        let mut clustering_series = Series::new(kind.name());
        for sample in &output.samples {
            if let Some(apl) = sample.avg_path_length {
                path_series.push(sample.round as f64, apl);
            }
            if let Some(cc) = sample.clustering {
                clustering_series.push(sample.round as f64, cc);
            }
        }
        path_figure.series.push(path_series);
        clustering_figure.series.push(clustering_series);
    }

    vec![indegree_figure, path_figure, clustering_figure]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_three_figures_with_all_protocols() {
        let figures = run(Scale::Tiny);
        assert_eq!(figures.len(), 3);
        for figure in &figures {
            assert_eq!(figure.series.len(), ProtocolKind::ALL.len());
        }
        assert_eq!(figures[0].id, "fig6a");
        assert_eq!(figures[1].id, "fig6b");
        assert_eq!(figures[2].id, "fig6c");
    }

    #[test]
    fn croupier_randomness_tracks_cyclon() {
        let figures = run(Scale::Tiny);
        let paths = &figures[1];
        let croupier = paths.series("croupier").unwrap().tail_mean(3).unwrap();
        let cyclon = paths.series("cyclon").unwrap().tail_mean(3).unwrap();
        assert!(
            (croupier - cyclon).abs() < 1.0,
            "croupier path length ({croupier}) should track cyclon ({cyclon})"
        );

        // The paper's "Croupier clusters less than Cyclon" effect only appears once the
        // number of public nodes is much larger than the view size (Cyclon's views then
        // spread over the whole population while Croupier's public views concentrate on a
        // still-large public set). At the tiny test scale both views cover a large fraction
        // of the population, so here we only check that the metric is well-formed; the
        // ordering itself is asserted by the quick/paper-scale runs in EXPERIMENTS.md.
        let clustering = &figures[2];
        for name in ["croupier", "cyclon", "gozar", "nylon"] {
            let cc = clustering.series(name).unwrap().tail_mean(3).unwrap();
            assert!(
                (0.0..=1.0).contains(&cc),
                "{name} clustering out of range: {cc}"
            );
        }
    }

    #[test]
    fn cyclon_population_is_all_public() {
        let p = params(Scale::Paper, ProtocolKind::Cyclon, 1);
        assert_eq!(p.n_private, 0);
        let p = params(Scale::Paper, ProtocolKind::Croupier, 1);
        assert_eq!(p.n_public, 200);
        assert_eq!(p.n_private, 800);
    }
}
