//! Figure 5: estimation accuracy under **churn**.
//!
//! Paper setup: 1000 nodes, ratio 0.2, medium history windows; from round 61 onwards a
//! fixed fraction of the population (0.1 %, 1 %, 2.5 % or 5 % per round) is replaced by
//! fresh nodes every round. Expected shape: churn up to 5 % per round (50× the rate
//! measured in deployed P2P systems) has no significant effect on the estimation error.

use croupier::CroupierConfig;

use crate::figures::{estimation_error_figures, run_labelled, LabelledRun};
use crate::output::{FigureData, Scale};
use crate::runner::ExperimentParams;
use crate::scenario::ChurnSpec;

/// Churn rates (fraction of nodes replaced per round) evaluated by the paper.
pub const PAPER_CHURN_RATES: [f64; 4] = [0.001, 0.01, 0.025, 0.05];
const PAPER_NODES: usize = 1_000;
const PAPER_ROUNDS: u64 = 250;
const PAPER_CHURN_START: u64 = 61;

/// Builds the experiment parameters for one churn rate.
pub fn params(scale: Scale, churn_rate: f64, seed: u64) -> ExperimentParams {
    let total = scale.nodes(PAPER_NODES);
    let n_public = (total as f64 * 0.2).round() as usize;
    let rounds = scale.rounds(PAPER_ROUNDS);
    let start = PAPER_CHURN_START.min(rounds / 3).max(5);
    ExperimentParams::default()
        .with_seed(seed)
        .with_population(n_public, total - n_public)
        .with_rounds(rounds)
        .with_sample_every(scale.sample_every())
        .with_churn(ChurnSpec::new(start, churn_rate))
}

/// Runs the experiment and returns Fig. 5(a) (average error) and Fig. 5(b) (maximum error),
/// one series per churn rate.
pub fn run(scale: Scale) -> Vec<FigureData> {
    let runs: Vec<LabelledRun> = PAPER_CHURN_RATES
        .iter()
        .map(|rate| LabelledRun {
            label: format!("{:.1}%/round", rate * 100.0),
            params: params(scale, *rate, 0xF165),
            config: CroupierConfig::default(),
        })
        .collect();
    let outputs = run_labelled(runs);
    estimation_error_figures("fig5", "Estimation error under churn", &outputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_series_per_churn_rate() {
        let figures = run(Scale::Tiny);
        assert_eq!(figures.len(), 2);
        assert_eq!(figures[0].series.len(), PAPER_CHURN_RATES.len());
    }

    #[test]
    fn churn_does_not_blow_up_the_estimation_error() {
        let figures = run(Scale::Tiny);
        for series in &figures[0].series {
            let tail = series.tail_mean(5).unwrap();
            assert!(
                tail < 0.15,
                "estimation should survive churn ({}): {tail}",
                series.label
            );
        }
    }

    #[test]
    fn churn_starts_after_the_join_phase() {
        let p = params(Scale::Paper, 0.01, 1);
        assert_eq!(p.churn.unwrap().start_round, 61);
        let tiny = params(Scale::Tiny, 0.01, 1);
        assert!(tiny.churn.unwrap().start_round >= 5);
    }
}
