//! Figure 7(a): protocol overhead per connectivity class, relative to Cyclon.
//!
//! Paper setup: 1000 nodes, ratio 0.2, α = 25, γ = 100, at most 10 piggy-backed estimates
//! per message; the average per-node load (bytes per second) is measured at steady state
//! for public and private nodes separately, and reported relative to Cyclon's plain gossip
//! load. Expected shape: Croupier < Gozar < Nylon for private nodes (roughly 1 : 2 : 4) and
//! Croupier lowest for public nodes as well.

use croupier::CroupierConfig;
use croupier_metrics::OverheadReport;

use crate::output::{FigureData, Scale, Series};
use crate::protocols::{run_kind, ProtocolConfigs, ProtocolKind};
use crate::runner::ExperimentParams;

const PAPER_NODES: usize = 1_000;
const PAPER_ROUNDS: u64 = 150;

/// X coordinate used for the public-node bar.
pub const PUBLIC_X: f64 = 0.0;
/// X coordinate used for the private-node bar.
pub const PRIVATE_X: f64 = 1.0;

/// Builds the experiment parameters for one protocol.
pub fn params(scale: Scale, kind: ProtocolKind, seed: u64) -> ExperimentParams {
    let total = scale.nodes(PAPER_NODES);
    let (n_public, n_private) = if kind == ProtocolKind::Cyclon {
        (total, 0)
    } else {
        let public = (total as f64 * 0.2).round() as usize;
        (public, total - public)
    };
    let rounds = scale.rounds(PAPER_ROUNDS);
    let window_start = rounds / 2;
    ExperimentParams::default()
        .with_seed(seed)
        .with_population(n_public, n_private)
        .with_rounds(rounds)
        .with_sample_every(rounds) // only the final sample matters here
        .with_overhead_window(window_start, rounds)
}

/// The Croupier configuration used by the overhead experiment (the paper uses γ = 100
/// here).
pub fn croupier_config() -> CroupierConfig {
    CroupierConfig::default().with_neighbour_history(100)
}

/// Measures the per-class overhead of every protocol.
pub fn measure(scale: Scale) -> Vec<(ProtocolKind, OverheadReport)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = ProtocolKind::ALL
            .into_iter()
            .map(|kind| {
                scope.spawn(move || {
                    let configs = ProtocolConfigs {
                        croupier: croupier_config(),
                        ..ProtocolConfigs::default()
                    };
                    let output = run_kind(kind, &params(scale, kind, 0xF167), &configs);
                    (kind, output.overhead.expect("overhead window configured"))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    })
}

/// Runs the experiment and returns two figures: the per-class load of every protocol
/// (the comparison of the paper's Fig. 7(a)), and the extra load relative to the Cyclon
/// baseline.
pub fn run(scale: Scale) -> Vec<FigureData> {
    let reports = measure(scale);
    let cyclon = reports
        .iter()
        .find(|(kind, _)| *kind == ProtocolKind::Cyclon)
        .map(|(_, report)| *report)
        .unwrap_or_default();

    let mut absolute = FigureData::new(
        "fig7a",
        "Average load per node",
        "class (0=public, 1=private)",
        "avg load per node (B/s)",
    );
    let mut relative = FigureData::new(
        "fig7a-relative-cyclon",
        "Average load per node relative to Cyclon",
        "class (0=public, 1=private)",
        "avg extra load per node (B/s)",
    );

    for (kind, report) in &reports {
        if *kind == ProtocolKind::Cyclon {
            let mut series = Series::new(kind.name());
            series.push(PUBLIC_X, report.public.avg_load_bytes_per_sec);
            series.push(PRIVATE_X, report.private.avg_load_bytes_per_sec);
            absolute.series.push(series);
            continue;
        }
        let mut abs_series = Series::new(kind.name());
        abs_series.push(PUBLIC_X, report.public.avg_load_bytes_per_sec);
        abs_series.push(PRIVATE_X, report.private.avg_load_bytes_per_sec);
        absolute.series.push(abs_series);

        // Cyclon's experiment is all-public, so its public-node load is the baseline gossip
        // cost for both classes.
        let baseline = OverheadReport {
            public: cyclon.public,
            private: cyclon.public,
        };
        let rel = report.relative_to(&baseline);
        let mut rel_series = Series::new(kind.name());
        rel_series.push(PUBLIC_X, rel.public.avg_load_bytes_per_sec);
        rel_series.push(PRIVATE_X, rel.private.avg_load_bytes_per_sec);
        relative.series.push(rel_series);
    }

    vec![absolute, relative]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn croupier_private_nodes_pay_the_least_overhead() {
        let figures = run(Scale::Tiny);
        let absolute = &figures[0];
        let private_load = |name: &str| {
            absolute
                .series(name)
                .unwrap()
                .points
                .iter()
                .find(|(x, _)| (*x - PRIVATE_X).abs() < 1e-9)
                .unwrap()
                .1
        };
        let croupier = private_load("croupier");
        let gozar = private_load("gozar");
        let nylon = private_load("nylon");
        assert!(
            croupier < gozar,
            "croupier private overhead ({croupier}) should be below gozar ({gozar})"
        );
        assert!(
            croupier < nylon,
            "croupier private overhead ({croupier}) should be below nylon ({nylon})"
        );
    }

    #[test]
    fn absolute_figure_includes_all_protocols() {
        let figures = run(Scale::Tiny);
        assert_eq!(figures.len(), 2);
        assert_eq!(figures[0].series.len(), ProtocolKind::ALL.len());
        assert_eq!(figures[1].series.len(), ProtocolKind::NAT_AWARE.len());
    }

    #[test]
    fn params_configure_the_overhead_window() {
        let p = params(Scale::Paper, ProtocolKind::Croupier, 1);
        let (start, end) = p.overhead_window.unwrap();
        assert!(end > start);
        assert_eq!(croupier_config().neighbour_history, 100);
    }
}
