//! One module per figure of the paper's evaluation (§VII).
//!
//! Every module exposes `run(scale) -> Vec<FigureData>`; the returned figures carry the same
//! series the paper plots. `Scale::Paper` reproduces the paper's populations and durations,
//! the smaller scales keep tests and benchmarks fast.

pub mod fig1_stable_ratio;
pub mod fig2_dynamic_ratio;
pub mod fig3_system_size;
pub mod fig4_ratio_sweep;
pub mod fig5_churn;
pub mod fig6_randomness;
pub mod fig7_overhead;
pub mod fig8_failure;

use croupier::CroupierConfig;

use crate::output::{FigureData, Series};
use crate::runner::{run_pss, ExperimentParams, RunOutput};

/// A labelled Croupier run: the label appears in figure legends.
pub(crate) struct LabelledRun {
    pub label: String,
    pub params: ExperimentParams,
    pub config: CroupierConfig,
}

/// Runs a set of labelled Croupier experiments in parallel threads and returns the outputs
/// in input order.
pub(crate) fn run_labelled(runs: Vec<LabelledRun>) -> Vec<(String, RunOutput)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = runs
            .into_iter()
            .map(|run| {
                scope.spawn(move || {
                    let config = run.config.clone();
                    let output = run_pss(&run.params, move |id, class, _| {
                        croupier::CroupierNode::new(id, class, config.clone())
                    });
                    (run.label, output)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    })
}

/// Builds the paper's paired (average-error, maximum-error) time-series figures from a set
/// of labelled runs — the layout shared by Figures 1 through 5.
pub(crate) fn estimation_error_figures(
    id_prefix: &str,
    title: &str,
    outputs: &[(String, RunOutput)],
) -> Vec<FigureData> {
    let mut avg_figure = FigureData::new(
        format!("{id_prefix}a"),
        format!("{title} — average estimation error"),
        "time (rounds)",
        "avg estimation error",
    );
    let mut max_figure = FigureData::new(
        format!("{id_prefix}b"),
        format!("{title} — maximum estimation error"),
        "time (rounds)",
        "max estimation error",
    );
    for (label, output) in outputs {
        let mut avg_series = Series::new(label.clone());
        let mut max_series = Series::new(label.clone());
        for sample in &output.samples {
            avg_series.push(sample.round as f64, sample.estimation.average);
            max_series.push(sample.round as f64, sample.estimation.maximum);
        }
        avg_figure.series.push(avg_series);
        max_figure.series.push(max_series);
    }
    vec![avg_figure, max_figure]
}

/// The three (α, γ) history-window pairs evaluated in Figures 1 and 2.
pub(crate) const HISTORY_WINDOWS: [(usize, u32); 3] = [(10, 25), (25, 50), (100, 250)];

/// Builds the label used for a history-window configuration.
pub(crate) fn window_label(alpha: usize, gamma: u32) -> String {
    format!("alpha={alpha}, gamma={gamma}")
}
