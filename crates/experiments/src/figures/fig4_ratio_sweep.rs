//! Figure 4: estimation accuracy for different **public/private ratios**.
//!
//! Paper setup: 1000 nodes, stable ratios of 5 %, 10 %, 20 %, 33 %, 50 % and 90 % public
//! nodes, medium history windows. Expected shape: the average error is largely
//! ratio-independent; only very small ratios (5 %) show noticeably higher maximum error
//! because a few private nodes receive too few distinct estimates.

use croupier::CroupierConfig;

use crate::figures::{estimation_error_figures, run_labelled, LabelledRun};
use crate::output::{FigureData, Scale};
use crate::runner::ExperimentParams;

/// Ratios evaluated by the paper.
pub const PAPER_RATIOS: [f64; 6] = [0.05, 0.10, 0.20, 0.33, 0.50, 0.90];
const PAPER_NODES: usize = 1_000;
const PAPER_ROUNDS: u64 = 200;

/// Ratios evaluated at a given scale.
pub fn ratios(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Tiny => vec![0.10, 0.20, 0.50],
        Scale::Quick | Scale::Paper | Scale::Large | Scale::Huge => PAPER_RATIOS.to_vec(),
    }
}

/// Builds the experiment parameters for one target ratio.
pub fn params(scale: Scale, ratio: f64, seed: u64) -> ExperimentParams {
    let total = scale.nodes(PAPER_NODES);
    let n_public = ((total as f64) * ratio).round().max(1.0) as usize;
    let n_private = total.saturating_sub(n_public);
    ExperimentParams::default()
        .with_seed(seed)
        .with_population(n_public, n_private)
        .with_rounds(scale.rounds(PAPER_ROUNDS))
        .with_sample_every(scale.sample_every())
}

/// Runs the experiment and returns Fig. 4(a) (average error) and Fig. 4(b) (maximum error),
/// one series per ratio.
pub fn run(scale: Scale) -> Vec<FigureData> {
    let runs: Vec<LabelledRun> = ratios(scale)
        .into_iter()
        .map(|ratio| LabelledRun {
            label: format!("ratio {ratio:.2}"),
            params: params(scale, ratio, 0xF164),
            config: CroupierConfig::default(),
        })
        .collect();
    let outputs = run_labelled(runs);
    estimation_error_figures("fig4", "Estimation error vs public/private ratio", &outputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_series_per_ratio() {
        let figures = run(Scale::Tiny);
        assert_eq!(figures.len(), 2);
        assert_eq!(figures[0].series.len(), ratios(Scale::Tiny).len());
    }

    #[test]
    fn average_error_is_small_for_all_ratios() {
        // The paper's ratio-independence claim holds at its 1000-node scale; at the tiny
        // test scale (a few dozen nodes) the estimator is inherently noisier (the paper
        // itself reports ~5 % average error for 50-node systems), so the bound is loose.
        let figures = run(Scale::Tiny);
        for series in &figures[0].series {
            let tail = series.tail_mean(5).unwrap();
            assert!(
                tail < 0.25,
                "average error too high for {}: {tail}",
                series.label
            );
        }
    }

    #[test]
    fn params_split_the_population_by_ratio() {
        let p = params(Scale::Paper, 0.33, 1);
        assert_eq!(p.n_public, 330);
        assert_eq!(p.n_private, 670);
        let tiny = params(Scale::Tiny, 0.05, 1);
        assert!(tiny.n_public >= 1, "at least one public node is required");
    }
}
