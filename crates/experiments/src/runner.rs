//! The generic experiment driver.
//!
//! The driver is generic over the execution engine: [`ExperimentParams::engine_threads`]
//! selects between the event-driven [`Simulation`] (`0`, the default — exact event
//! interleaving, one thread) and the phase-parallel [`ShardedSimulation`] (`n >= 1` —
//! round-barrier semantics, `n` worker threads). Sharded runs are bit-identical across
//! thread counts for
//! a fixed seed, so `engine_threads = 1` is the reference a parallel run can be checked
//! against.

use std::collections::HashMap;
use std::marker::PhantomData;

use croupier_metrics::{
    class_overhead, estimation_errors, EstimationErrors, IncrementalComponents, MetricsContext,
    OverheadReport, OverlaySnapshot,
};
use croupier_nat::{NatTopology, NatTopologyBuilder, TopologyStats};
use croupier_simulator::{
    NatClass, NodeId, Protocol, PssNode, Seed, ShardedSimulation, SimDuration, Simulation,
    SimulationConfig, SimulationEngine, TrafficLedger,
};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::scenario::{ChurnSpec, JoinSchedule, ScenarioExecutor, ScenarioScript};

/// Late growth of one class of nodes, used by the dynamic-ratio experiment (Fig. 2).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GrowthSpec {
    /// Round at which the growth starts.
    pub start_round: u64,
    /// Number of nodes added.
    pub count: usize,
    /// Inter-arrival time between the added nodes, in milliseconds.
    pub interarrival_ms: f64,
    /// Class of the added nodes.
    pub class: NatClass,
}

/// Parameters of one experiment run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentParams {
    /// Master seed (drives the topology, the engine and the workload).
    pub seed: u64,
    /// Number of public nodes joining initially.
    pub n_public: usize,
    /// Number of private nodes joining initially.
    pub n_private: usize,
    /// Mean inter-arrival time of public joins in milliseconds (paper: 50 ms).
    pub public_interarrival_ms: f64,
    /// Mean inter-arrival time of private joins in milliseconds (paper: 12.5 ms).
    pub private_interarrival_ms: f64,
    /// Number of one-second gossip rounds to simulate.
    pub rounds: u64,
    /// Sample metrics every this many rounds.
    pub sample_every: u64,
    /// Nodes younger than this many rounds are excluded from metrics (paper: 2).
    pub min_rounds_for_metrics: u64,
    /// If `Some(k)`, graph metrics (path length, clustering, components) are computed each
    /// sample using `k` BFS sources; if `None` they are skipped (estimation-only runs).
    pub graph_metric_sources: Option<usize>,
    /// Track the largest connected component incrementally (union-find over snapshot
    /// edge deltas) instead of — or, when combined with
    /// [`graph_metric_sources`](Self::graph_metric_sources), alongside — the per-sample
    /// CSR + BFS pipeline. The incremental value is bit-identical to the CSR one; at the
    /// million-node tier it is what keeps per-sample metrics cost proportional to the
    /// overlay's churn rather than its size.
    pub incremental_components: bool,
    /// Continuous churn, if any.
    pub churn: Option<ChurnSpec>,
    /// Late growth of one node class, if any.
    pub growth: Option<GrowthSpec>,
    /// Scripted NAT-dynamics scenario, if any: executed at round barriers through the
    /// engine's [`RoundHook`](croupier_simulator::RoundHook); its flash-crowd actions are
    /// expanded into the join schedule.
    ///
    /// Caveat when combined with [`churn`](Self::churn) or an overhead window: the
    /// driver's class bookkeeping (which pool a churned node is drawn from, which class
    /// its replacement joins as, how `class_overhead` buckets traffic) uses *join-time*
    /// classes. Scripted profile upgrades/downgrades change the topology underneath
    /// without updating that bookkeeping — deliberately mirroring the protocols' own
    /// stale self-classification, but it means a churn spec no longer preserves the
    /// *effective* ratio once a scenario rewrites classes mid-run
    /// ([`RoundSample::true_ratio`] stays correct: scripted runs read it from the
    /// topology).
    pub scenario: Option<ScenarioScript>,
    /// Measurement window `(start_round, end_round)` for protocol overhead, if overhead is
    /// to be reported.
    pub overhead_window: Option<(u64, u64)>,
    /// Execution engine selector: `0` runs the event-driven engine (exact event
    /// interleaving, single-threaded); `n >= 1` runs the sharded phase-parallel engine
    /// with `n` worker threads.
    pub engine_threads: usize,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            seed: 42,
            n_public: 200,
            n_private: 800,
            public_interarrival_ms: 50.0,
            private_interarrival_ms: 12.5,
            rounds: 120,
            sample_every: 2,
            min_rounds_for_metrics: 2,
            graph_metric_sources: None,
            incremental_components: false,
            churn: None,
            growth: None,
            scenario: None,
            overhead_window: None,
            engine_threads: 0,
        }
    }
}

impl ExperimentParams {
    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the initial population.
    pub fn with_population(mut self, n_public: usize, n_private: usize) -> Self {
        self.n_public = n_public;
        self.n_private = n_private;
        self
    }

    /// Sets the number of rounds.
    pub fn with_rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the metric sampling period.
    pub fn with_sample_every(mut self, sample_every: u64) -> Self {
        self.sample_every = sample_every.max(1);
        self
    }

    /// Enables graph metrics with the given number of BFS sources per sample.
    pub fn with_graph_metrics(mut self, sources: usize) -> Self {
        self.graph_metric_sources = Some(sources);
        self
    }

    /// Enables incremental largest-component tracking (union-find over snapshot edge
    /// deltas). Populates [`RoundSample::largest_component`] on every sample without
    /// requiring a full CSR + BFS pass, so it composes with — but does not require —
    /// [`with_graph_metrics`](Self::with_graph_metrics).
    pub fn with_incremental_components(mut self) -> Self {
        self.incremental_components = true;
        self
    }

    /// Enables continuous churn.
    pub fn with_churn(mut self, churn: ChurnSpec) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Enables late growth (dynamic ratio).
    pub fn with_growth(mut self, growth: GrowthSpec) -> Self {
        self.growth = Some(growth);
        self
    }

    /// Installs a scripted NAT-dynamics scenario.
    pub fn with_scenario(mut self, scenario: ScenarioScript) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Enables overhead measurement over the given round window.
    pub fn with_overhead_window(mut self, start_round: u64, end_round: u64) -> Self {
        assert!(end_round > start_round, "overhead window must not be empty");
        self.overhead_window = Some((start_round, end_round));
        self
    }

    /// Selects the execution engine: `0` for the event-driven engine, `n >= 1` for the
    /// sharded phase-parallel engine with `n` worker threads.
    pub fn with_engine_threads(mut self, threads: usize) -> Self {
        self.engine_threads = threads;
        self
    }

    /// Total initial population.
    pub fn total_nodes(&self) -> usize {
        self.n_public + self.n_private
    }
}

/// The metrics captured at one sampling instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundSample {
    /// Gossip round at which the sample was taken.
    pub round: u64,
    /// Number of live nodes.
    pub node_count: usize,
    /// True public/private ratio among live nodes at sampling time.
    pub true_ratio: f64,
    /// Estimation errors across all nodes with an estimate.
    pub estimation: EstimationErrors,
    /// Average shortest path length (if graph metrics are enabled and defined).
    pub avg_path_length: Option<f64>,
    /// Average clustering coefficient (if graph metrics are enabled).
    pub clustering: Option<f64>,
    /// Fraction of live nodes in the largest connected component (if graph metrics are
    /// enabled).
    pub largest_component: Option<f64>,
}

/// Everything a run produces.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Per-round samples, in time order.
    pub samples: Vec<RoundSample>,
    /// Overhead report over the configured window, if requested.
    pub overhead: Option<OverheadReport>,
    /// Snapshot of the overlay at the end of the run.
    pub final_snapshot: OverlaySnapshot,
    /// True ratio at the end of the run.
    pub final_true_ratio: f64,
    /// Merged per-node traffic ledger at the end of the run; lets callers compare byte
    /// counts across engines and thread counts.
    pub traffic: TrafficLedger,
    /// Final NAT-topology statistics: blocked messages, stale-binding send failures
    /// (blocks attributable to a scripted gateway reboot), and class counts as the NAT
    /// environment — not the join schedule — sees them.
    pub nat_stats: TopologyStats,
    /// `(full rebuilds, sublinear updates)` of the incremental connectivity structure,
    /// when [`ExperimentParams::incremental_components`] was enabled. Sublinear updates
    /// (delta-only unions plus certified forest repairs) cost O(nodes + delta) instead
    /// of O(edges); scale tests use this to assert the per-sample metrics path stayed
    /// sublinear: in a healthy overlay almost every sample repairs, not rebuilds.
    pub incremental_component_updates: Option<(u64, u64)>,
}

impl RunOutput {
    /// The last sample, if any.
    pub fn last_sample(&self) -> Option<&RoundSample> {
        self.samples.last()
    }

    /// Mean of the average estimation error over the last `n` samples.
    pub fn tail_avg_error(&self, n: usize) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let start = self.samples.len().saturating_sub(n);
        let tail = &self.samples[start..];
        Some(tail.iter().map(|s| s.estimation.average).sum::<f64>() / tail.len() as f64)
    }
}

/// Per-protocol experiment state shared between [`run_pss`] and [`run_failure`], generic
/// over the execution engine.
struct Driver<P: Protocol + PssNode, E: SimulationEngine<P>> {
    params: ExperimentParams,
    sim: E,
    topology: NatTopology,
    alive_public: Vec<NodeId>,
    alive_private: Vec<NodeId>,
    all_classes: HashMap<NodeId, NatClass>,
    next_id: u64,
    churn_carry: f64,
    workload_rng: SmallRng,
    metric_rng: SmallRng,
    /// Reusable snapshot buffer: refilled in place on every sample, so the sampling loop
    /// allocates nothing in steady state.
    sample_snapshot: OverlaySnapshot,
    /// Reusable metrics pipeline: one CSR overlay graph per sample shared by all graph
    /// metrics, with BFS fanned out over the engine's worker-thread count.
    metrics: MetricsContext,
    /// Incremental largest-component tracker, fed by the snapshot's edge deltas when
    /// [`ExperimentParams::incremental_components`] is set.
    components: IncrementalComponents,
    /// Reusable traffic ledger refilled in place by the overhead-window sampling, instead
    /// of cloning the engine's whole per-node map per sample.
    traffic_scratch: croupier_simulator::TrafficLedger,
    _protocol: PhantomData<fn() -> P>,
}

impl<P: Protocol + PssNode, E: SimulationEngine<P>> Driver<P, E> {
    fn new(params: &ExperimentParams) -> Self {
        let topology = NatTopologyBuilder::new(params.seed ^ 0x004e_4154).build();
        let mut sim = E::from_config(
            SimulationConfig::default()
                .with_seed(params.seed)
                .with_round_period(SimDuration::from_secs(1))
                .with_engine_threads(params.engine_threads),
        );
        sim.set_delivery_filter(topology.clone());
        let seed = Seed::new(params.seed);
        if let Some(script) = &params.scenario {
            // The executor shares the topology with the delivery filter and runs at the
            // engines' round barriers on the coordinating thread; its RNG is a dedicated
            // stream of the master seed, so scripted runs are deterministic and (on the
            // sharded engine) bit-identical across worker-thread counts.
            let scenario_rng = seed.stream_rng(croupier_simulator::rng::Stream::Custom(0x5C3A));
            sim.set_round_hook(Box::new(ScenarioExecutor::new(
                script,
                topology.clone(),
                scenario_rng,
            )));
        }
        let mut sample_snapshot = OverlaySnapshot::default();
        if params.incremental_components {
            sample_snapshot.enable_delta_tracking();
        }
        Driver {
            params: params.clone(),
            sim,
            topology,
            alive_public: Vec::new(),
            alive_private: Vec::new(),
            all_classes: HashMap::new(),
            next_id: 0,
            churn_carry: 0.0,
            workload_rng: seed.stream_rng(croupier_simulator::rng::Stream::Workload),
            metric_rng: seed.stream_rng(croupier_simulator::rng::Stream::Custom(0xE7)),
            sample_snapshot,
            metrics: MetricsContext::new(params.engine_threads.max(1)),
            components: IncrementalComponents::new(),
            traffic_scratch: croupier_simulator::TrafficLedger::new(),
            _protocol: PhantomData,
        }
    }

    fn add_node<F>(&mut self, class: NatClass, make_node: &mut F)
    where
        F: FnMut(NodeId, NatClass, &NatTopology) -> P,
    {
        let id = NodeId::new(self.next_id);
        self.next_id += 1;
        self.topology.add_node(id, class);
        if class.is_public() {
            self.sim.register_public(id);
            self.alive_public.push(id);
        } else {
            self.alive_private.push(id);
        }
        self.all_classes.insert(id, class);
        let node = make_node(id, class, &self.topology);
        self.sim.add_node(id, node);
    }

    fn remove_random_node(&mut self, class: NatClass) -> Option<NodeId> {
        let pool = match class {
            NatClass::Public => &mut self.alive_public,
            NatClass::Private => &mut self.alive_private,
        };
        if pool.is_empty() {
            return None;
        }
        let index = self.workload_rng.gen_range(0..pool.len());
        let id = pool.swap_remove(index);
        self.sim.remove_node(id);
        Some(id)
    }

    fn apply_churn<F>(&mut self, make_node: &mut F)
    where
        F: FnMut(NodeId, NatClass, &NatTopology) -> P,
    {
        let Some(churn) = self.params.churn else {
            return;
        };
        let alive = self.alive_public.len() + self.alive_private.len();
        self.churn_carry += churn.fraction_per_round * alive as f64;
        let replacements = self.churn_carry.floor() as usize;
        self.churn_carry -= replacements as f64;
        for _ in 0..replacements {
            // Keep the public/private ratio stable by replacing a node with a new node of
            // the same class, chosen proportionally to the class sizes.
            let public_fraction = self.alive_public.len() as f64
                / (self.alive_public.len() + self.alive_private.len()).max(1) as f64;
            let class = if self.workload_rng.gen_range(0.0..1.0) < public_fraction {
                NatClass::Public
            } else {
                NatClass::Private
            };
            if self.remove_random_node(class).is_some() {
                self.add_node(class, make_node);
            }
        }
    }

    fn true_ratio(&self) -> f64 {
        if self.params.scenario.is_some() {
            // Scripted upgrades/downgrades change classes behind the driver's back; the
            // topology is the authority on the effective ratio.
            return self.topology.stats().public_private_ratio();
        }
        let total = self.alive_public.len() + self.alive_private.len();
        if total == 0 {
            0.0
        } else {
            self.alive_public.len() as f64 / total as f64
        }
    }

    fn sample(&mut self, round: u64) -> RoundSample {
        self.sample_snapshot
            .capture_into(&self.sim, self.params.min_rounds_for_metrics);
        let true_ratio = self.true_ratio();
        let estimation = estimation_errors(&self.sample_snapshot, true_ratio);
        // The incremental tracker produces a value bit-identical to the CSR + BFS sweep,
        // so when both paths are enabled either answer is valid; the incremental one is
        // preferred because its cost scales with the churn since the previous sample.
        let incremental_component = if self.params.incremental_components {
            self.components.update(&self.sample_snapshot);
            Some(self.components.largest_component_fraction())
        } else {
            None
        };
        let (avg_path_length, clustering, largest_component) =
            if let Some(sources) = self.params.graph_metric_sources {
                // One CSR build feeds all three metrics; dangling edges are filtered
                // during the build, so no separate retain_live_edges pass is needed.
                self.metrics.build(&self.sample_snapshot);
                (
                    self.metrics
                        .average_path_length(sources, &mut self.metric_rng),
                    Some(self.metrics.average_clustering_coefficient()),
                    Some(
                        incremental_component
                            .unwrap_or_else(|| self.metrics.largest_component_fraction()),
                    ),
                )
            } else {
                (None, None, incremental_component)
            };
        RoundSample {
            round,
            node_count: self.sim.len(),
            true_ratio,
            estimation,
            avg_path_length,
            clustering,
            largest_component,
        }
    }

    /// Runs the main phase: joins, rounds, churn, sampling.
    fn run<F>(&mut self, make_node: &mut F) -> RunOutput
    where
        F: FnMut(NodeId, NatClass, &NatTopology) -> P,
    {
        // One source of truth for the round period: the engine config set in new().
        let round_ms = self.sim.config().round_period.as_millis().max(1);
        let mut schedule = JoinSchedule::poisson(
            self.params.n_public,
            self.params.public_interarrival_ms,
            self.params.n_private,
            self.params.private_interarrival_ms,
            &mut self.workload_rng,
        );
        if let Some(growth) = self.params.growth {
            schedule.append_growth(
                croupier_simulator::SimTime::from_secs(growth.start_round),
                growth.count,
                growth.interarrival_ms,
                growth.class,
            );
        }
        if let Some(script) = &self.params.scenario {
            // Flash crowds are the one scripted event with engine-side effects (new
            // protocol instances), so they join through the ordinary schedule instead of
            // the NAT-mutation hook.
            schedule.extend(script.flash_crowd_joins(self.params.total_nodes(), round_ms));
        }
        let events = schedule.events().to_vec();
        let mut next_event = 0usize;

        let mut samples = Vec::new();
        let mut overhead = None;

        for round in 1..=self.params.rounds {
            let boundary = croupier_simulator::SimTime::from_millis(round * round_ms);
            while next_event < events.len() && events[next_event].at <= boundary {
                let event = events[next_event];
                next_event += 1;
                self.sim.run_until(event.at);
                self.add_node(event.class, make_node);
            }
            self.sim.run_until(boundary);

            if let Some(churn) = self.params.churn {
                if round >= churn.start_round {
                    self.apply_churn(make_node);
                }
            }

            if let Some((start, end)) = self.params.overhead_window {
                if round == start {
                    self.sim.reset_traffic_window();
                } else if round == end {
                    let window_secs = (end - start) as f64;
                    let classes = self.all_classes.clone();
                    self.sim.traffic_snapshot_into(&mut self.traffic_scratch);
                    overhead = Some(class_overhead(
                        &self.traffic_scratch,
                        |id| classes.get(&id).copied(),
                        window_secs,
                    ));
                }
            }

            if round % self.params.sample_every == 0 {
                samples.push(self.sample(round));
            }
        }

        let mut final_snapshot =
            OverlaySnapshot::capture(&self.sim, self.params.min_rounds_for_metrics);
        final_snapshot.retain_live_edges();
        RunOutput {
            samples,
            overhead,
            final_true_ratio: self.true_ratio(),
            final_snapshot,
            traffic: self.sim.traffic_snapshot(),
            nat_stats: self.topology.stats(),
            incremental_component_updates: self.params.incremental_components.then(|| {
                (
                    self.components.rebuild_count(),
                    self.components.sublinear_update_count(),
                )
            }),
        }
    }

    /// Fails `fraction` of the live nodes at a single instant and returns the fraction of
    /// survivors still connected in the largest cluster (Fig. 7(b)).
    fn catastrophic_failure(&mut self, fraction: f64) -> f64 {
        let alive: usize = self.alive_public.len() + self.alive_private.len();
        let to_fail = ((alive as f64) * fraction).round() as usize;
        for _ in 0..to_fail {
            let public_fraction = self.alive_public.len() as f64
                / (self.alive_public.len() + self.alive_private.len()).max(1) as f64;
            let class = if self.workload_rng.gen_range(0.0..1.0) < public_fraction {
                NatClass::Public
            } else {
                NatClass::Private
            };
            if self.remove_random_node(class).is_none() {
                // The chosen class ran out of nodes; fail one of the other class instead.
                let _ = self.remove_random_node(class.opposite());
            }
        }
        // Reuse the driver's snapshot and metrics buffers; the CSR build drops the
        // dangling edges left behind by the failed nodes.
        self.sample_snapshot.capture_into(&self.sim, 0);
        self.metrics.build(&self.sample_snapshot);
        self.metrics.largest_component_fraction()
    }
}

/// Runs a peer-sampling experiment for any protocol implementing [`PssNode`].
///
/// `make_node` constructs the protocol instance for each joining node; it receives the
/// node's identity, its connectivity class and a handle to the NAT topology (needed by
/// protocols that consult the address oracle). The engine is chosen by
/// [`ExperimentParams::engine_threads`].
pub fn run_pss<P, F>(params: &ExperimentParams, mut make_node: F) -> RunOutput
where
    P: Protocol + PssNode + Send,
    P::Message: Send,
    F: FnMut(NodeId, NatClass, &NatTopology) -> P,
{
    if params.engine_threads == 0 {
        Driver::<P, Simulation<P>>::new(params).run(&mut make_node)
    } else {
        Driver::<P, ShardedSimulation<P>>::new(params).run(&mut make_node)
    }
}

/// Runs a catastrophic-failure experiment: the system is built and run for `params.rounds`
/// rounds, then `failure_fraction` of the nodes crash simultaneously; the return value is
/// the fraction of surviving nodes that remain in the largest connected cluster.
pub fn run_failure<P, F>(params: &ExperimentParams, mut make_node: F, failure_fraction: f64) -> f64
where
    P: Protocol + PssNode + Send,
    P::Message: Send,
    F: FnMut(NodeId, NatClass, &NatTopology) -> P,
{
    assert!(
        (0.0..1.0).contains(&failure_fraction),
        "failure fraction must be within [0, 1)"
    );
    if params.engine_threads == 0 {
        let mut driver = Driver::<P, Simulation<P>>::new(params);
        driver.run(&mut make_node);
        driver.catastrophic_failure(failure_fraction)
    } else {
        let mut driver = Driver::<P, ShardedSimulation<P>>::new(params);
        driver.run(&mut make_node);
        driver.catastrophic_failure(failure_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croupier::{CroupierConfig, CroupierNode};
    use croupier_baselines::{BaselineConfig, CyclonNode};

    fn tiny_params() -> ExperimentParams {
        ExperimentParams::default()
            .with_population(8, 32)
            .with_rounds(50)
            .with_sample_every(5)
    }

    #[test]
    fn croupier_run_produces_converging_estimates() {
        let params = tiny_params().with_seed(1);
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        assert!(!out.samples.is_empty());
        let last = out.last_sample().unwrap();
        assert_eq!(last.node_count, 40);
        assert!((out.final_true_ratio - 0.2).abs() < 1e-9);
        assert!(
            last.estimation.average < 0.1,
            "average estimation error should be small, got {}",
            last.estimation.average
        );
    }

    #[test]
    fn graph_metrics_are_produced_when_enabled() {
        let params = tiny_params().with_seed(2).with_graph_metrics(10);
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        let last = out.last_sample().unwrap();
        assert!(last.avg_path_length.is_some());
        assert!(last.clustering.is_some());
        assert!(
            (last.largest_component.unwrap() - 1.0).abs() < 1e-9,
            "overlay should be connected"
        );
        assert!(out.final_snapshot.edge_count() > 0);
    }

    #[test]
    fn incremental_components_match_the_csr_pipeline_sample_for_sample() {
        let base = tiny_params()
            .with_seed(11)
            .with_churn(ChurnSpec::new(10, 0.02))
            .with_graph_metrics(10);
        let csr = run_pss(&base, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        let incremental = run_pss(
            &base.clone().with_incremental_components(),
            |id, class, _| CroupierNode::new(id, class, CroupierConfig::default()),
        );
        assert_eq!(csr.samples.len(), incremental.samples.len());
        for (a, b) in csr.samples.iter().zip(&incremental.samples) {
            assert_eq!(
                a.largest_component.map(f64::to_bits),
                b.largest_component.map(f64::to_bits),
                "round {}: incremental largest component must be bit-identical to CSR",
                a.round
            );
            // The rest of the sample must be untouched by the incremental tracker.
            assert_eq!(a, b);
        }
        let (rebuilds, fast) = incremental.incremental_component_updates.unwrap();
        assert_eq!(rebuilds + fast, incremental.samples.len() as u64);
    }

    #[test]
    fn incremental_components_work_without_graph_metrics() {
        let params = tiny_params().with_seed(12).with_incremental_components();
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        let last = out.last_sample().unwrap();
        assert!(last.avg_path_length.is_none());
        assert!(last.clustering.is_none());
        assert!(
            (last.largest_component.unwrap() - 1.0).abs() < 1e-9,
            "a converged tiny overlay is connected"
        );
        let (rebuilds, fast) = out.incremental_component_updates.unwrap();
        assert!(rebuilds >= 1, "the first sample always rebuilds");
        assert!(
            fast > 0,
            "a stable overlay must take the delta fast path ({rebuilds} rebuilds, {fast} fast)"
        );
    }

    #[test]
    fn churn_keeps_population_and_ratio_stable() {
        let params = tiny_params()
            .with_seed(3)
            .with_rounds(60)
            .with_churn(ChurnSpec::new(20, 0.05));
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        let last = out.last_sample().unwrap();
        assert_eq!(last.node_count, 40, "churn replaces nodes one for one");
        assert!((out.final_true_ratio - 0.2).abs() < 0.08);
    }

    #[test]
    fn growth_raises_the_true_ratio() {
        let params = tiny_params()
            .with_seed(4)
            .with_rounds(60)
            .with_growth(GrowthSpec {
                start_round: 20,
                count: 10,
                interarrival_ms: 500.0,
                class: NatClass::Public,
            });
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        assert!(
            out.final_true_ratio > 0.3,
            "ratio should grow, got {}",
            out.final_true_ratio
        );
        assert_eq!(out.last_sample().unwrap().node_count, 50);
    }

    #[test]
    fn overhead_window_produces_a_report() {
        let params = tiny_params().with_seed(5).with_overhead_window(20, 40);
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        let overhead = out.overhead.expect("overhead report requested");
        assert!(overhead.public.avg_load_bytes_per_sec > 0.0);
        assert!(overhead.private.avg_load_bytes_per_sec > 0.0);
        // Croupiers serve the shuffle requests of everyone, so they carry more load.
        assert!(overhead.public.avg_load_bytes_per_sec > overhead.private.avg_load_bytes_per_sec);
    }

    #[test]
    fn cyclon_runs_on_all_public_populations() {
        let params = ExperimentParams::default()
            .with_seed(6)
            .with_population(30, 0)
            .with_rounds(40)
            .with_sample_every(5)
            .with_graph_metrics(10);
        let out = run_pss(&params, |id, _, _| {
            CyclonNode::new(id, BaselineConfig::default())
        });
        let last = out.last_sample().unwrap();
        assert_eq!(last.node_count, 30);
        assert!((last.largest_component.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn failure_run_reports_surviving_cluster_fraction() {
        let params = tiny_params().with_seed(7).with_rounds(40);
        let connected = run_failure(
            &params,
            |id, class, _| CroupierNode::new(id, class, CroupierConfig::default()),
            0.5,
        );
        assert!(
            connected > 0.5,
            "half the nodes failing should not shatter the overlay: {connected}"
        );
        assert!(connected <= 1.0);
    }

    #[test]
    fn runs_are_deterministic_for_a_fixed_seed() {
        let params = tiny_params().with_seed(8);
        let run = || {
            run_pss(&params, |id, class, _| {
                CroupierNode::new(id, class, CroupierConfig::default())
            })
            .samples
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sharded_engine_produces_converging_estimates() {
        let params = tiny_params().with_seed(9).with_engine_threads(2);
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        let last = out.last_sample().unwrap();
        assert_eq!(last.node_count, 40);
        assert!((out.final_true_ratio - 0.2).abs() < 1e-9);
        assert!(
            last.estimation.average < 0.1,
            "sharded run should converge like the event engine, got {}",
            last.estimation.average
        );
        assert!(out.traffic.total_bytes_sent() > 0);
    }

    #[test]
    fn sharded_runs_are_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            let params = tiny_params().with_seed(10).with_engine_threads(threads);
            run_pss(&params, |id, class, _| {
                CroupierNode::new(id, class, CroupierConfig::default())
            })
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.samples, four.samples, "samples diverged");
        assert_eq!(
            one.final_snapshot, four.final_snapshot,
            "snapshots diverged"
        );
        assert_eq!(one.traffic, four.traffic, "traffic ledgers diverged");
    }

    #[test]
    fn sharded_graph_metrics_are_bit_identical_across_thread_counts() {
        // Drives the whole pipeline with graph metrics on: the sharded engine AND the
        // metrics context fan out over `threads` workers, and every sampled metric —
        // including the float outputs of the parallel multi-source BFS — must match the
        // single-worker run bit for bit.
        let run = |threads: usize| {
            let params = tiny_params()
                .with_seed(13)
                .with_engine_threads(threads)
                .with_graph_metrics(10);
            run_pss(&params, |id, class, _| {
                CroupierNode::new(id, class, CroupierConfig::default())
            })
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.samples, four.samples, "graph-metric samples diverged");
        let last = one.last_sample().unwrap();
        assert!(last.avg_path_length.is_some());
        assert!(last.clustering.is_some());
        assert!((last.largest_component.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sharded_engine_supports_churn_growth_and_overhead() {
        let params = tiny_params()
            .with_seed(11)
            .with_rounds(60)
            .with_engine_threads(3)
            .with_churn(ChurnSpec::new(20, 0.05))
            .with_overhead_window(30, 50);
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        assert_eq!(out.last_sample().unwrap().node_count, 40);
        let overhead = out.overhead.expect("overhead report requested");
        assert!(overhead.public.avg_load_bytes_per_sec > 0.0);
        assert!(overhead.public.avg_load_bytes_per_sec > overhead.private.avg_load_bytes_per_sec);
    }

    #[test]
    fn sharded_failure_runs_keep_the_overlay_connected() {
        let params = tiny_params()
            .with_seed(12)
            .with_rounds(40)
            .with_engine_threads(2);
        let connected = run_failure(
            &params,
            |id, class, _| CroupierNode::new(id, class, CroupierConfig::default()),
            0.5,
        );
        assert!(
            connected > 0.5,
            "sharded overlay should survive 50% failures: {connected}"
        );
    }

    use crate::scenario::{NatDynamicsEvent, ScenarioScript};

    #[test]
    fn scripted_scenario_runs_on_the_event_engine() {
        let params = tiny_params()
            .with_seed(20)
            .with_rounds(60)
            .with_graph_metrics(10)
            .with_scenario(ScenarioScript::croupier_stress(60));
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        let last = out.last_sample().unwrap();
        assert_eq!(last.node_count, 40);
        assert!(
            out.nat_stats.stale_binding_failures > 0,
            "the reboot storm should produce stale-binding send failures"
        );
        assert_eq!(out.nat_stats.offline_nodes, 0, "outage must be restored");
        assert!(
            (last.largest_component.unwrap() - 1.0).abs() < 1e-9,
            "croupier should recover connectivity after the stress script"
        );
    }

    #[test]
    fn scripted_flash_crowd_grows_the_population() {
        let params = tiny_params()
            .with_seed(21)
            .with_rounds(60)
            .with_scenario(ScenarioScript::flash_crowd(60));
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        assert_eq!(
            out.last_sample().unwrap().node_count,
            60,
            "half the initial 40 nodes join mid-run"
        );
    }

    #[test]
    fn scripted_profile_changes_move_the_true_ratio() {
        let script = ScenarioScript::new("upgrade_everyone")
            .at(20, NatDynamicsEvent::ProfileUpgrade { fraction: 1.0 });
        let params = tiny_params()
            .with_seed(22)
            .with_rounds(40)
            .with_scenario(script);
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        assert!(
            (out.final_true_ratio - 1.0).abs() < 1e-9,
            "after a full upgrade every node is effectively public, got {}",
            out.final_true_ratio
        );
        assert_eq!(out.nat_stats.public_nodes, 40);
    }

    #[test]
    fn scripted_scenario_runs_identically_on_repeat() {
        let params = tiny_params()
            .with_seed(23)
            .with_rounds(50)
            .with_engine_threads(2)
            .with_scenario(ScenarioScript::croupier_stress(50));
        let run = || {
            run_pss(&params, |id, class, _| {
                CroupierNode::new(id, class, CroupierConfig::default())
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.nat_stats, b.nat_stats);
        assert_eq!(a.traffic, b.traffic);
    }

    #[test]
    #[should_panic(expected = "failure fraction")]
    fn failure_fraction_must_be_less_than_one() {
        let params = tiny_params();
        run_failure(
            &params,
            |id, class, _| CroupierNode::new(id, class, CroupierConfig::default()),
            1.0,
        );
    }
}
