//! The generic experiment driver.
//!
//! The driver is generic over the execution engine: [`ExperimentParams::engine_threads`]
//! selects between the event-driven [`Simulation`] (`0`, the default — exact event
//! interleaving, one thread) and the phase-parallel [`ShardedSimulation`] (`n >= 1` —
//! round-barrier semantics, `n` worker threads). Sharded runs are bit-identical across
//! thread counts for
//! a fixed seed, so `engine_threads = 1` is the reference a parallel run can be checked
//! against.

use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use croupier_metrics::{
    class_overhead, draw_path_sources, estimation_errors, indegree_gini, EstimationErrors,
    IncrementalComponents, IncrementalIndegree, MetricsContext, OverheadReport, OverlaySnapshot,
};
use croupier_nat::{NatTopology, NatTopologyBuilder, TopologyStats};
use croupier_simulator::{
    NatClass, NodeId, Protocol, PssNode, Seed, ShardedSimulation, SimDuration, Simulation,
    SimulationConfig, SimulationEngine, TrafficLedger,
};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::scenario::{ChurnSpec, JoinEvent, JoinSchedule, ScenarioExecutor, ScenarioScript};
use crate::workload::{WorkloadExecutor, WorkloadReport, WorkloadSpec, WorkloadState};

/// Late growth of one class of nodes, used by the dynamic-ratio experiment (Fig. 2).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GrowthSpec {
    /// Round at which the growth starts.
    pub start_round: u64,
    /// Number of nodes added.
    pub count: usize,
    /// Inter-arrival time between the added nodes, in milliseconds.
    pub interarrival_ms: f64,
    /// Class of the added nodes.
    pub class: NatClass,
}

/// Parameters of one experiment run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentParams {
    /// Master seed (drives the topology, the engine and the workload).
    pub seed: u64,
    /// Number of public nodes joining initially.
    pub n_public: usize,
    /// Number of private nodes joining initially.
    pub n_private: usize,
    /// Mean inter-arrival time of public joins in milliseconds (paper: 50 ms).
    pub public_interarrival_ms: f64,
    /// Mean inter-arrival time of private joins in milliseconds (paper: 12.5 ms).
    pub private_interarrival_ms: f64,
    /// Number of one-second gossip rounds to simulate.
    pub rounds: u64,
    /// Sample metrics every this many rounds.
    pub sample_every: u64,
    /// Nodes younger than this many rounds are excluded from metrics (paper: 2).
    pub min_rounds_for_metrics: u64,
    /// If `Some(k)`, graph metrics (path length, clustering, components) are computed each
    /// sample using `k` BFS sources; if `None` they are skipped (estimation-only runs).
    pub graph_metric_sources: Option<usize>,
    /// Track the largest connected component incrementally (union-find over snapshot
    /// edge deltas) instead of — or, when combined with
    /// [`graph_metric_sources`](Self::graph_metric_sources), alongside — the per-sample
    /// CSR + BFS pipeline. The incremental value is bit-identical to the CSR one; at the
    /// million-node tier it is what keeps per-sample metrics cost proportional to the
    /// overlay's churn rather than its size.
    pub incremental_components: bool,
    /// Track the in-degree distribution incrementally (dense rank-indexed counts patched
    /// from snapshot edge deltas) and report its Gini coefficient on every sample in
    /// [`RoundSample::indegree_gini`]. Like
    /// [`incremental_components`](Self::incremental_components), the fast path costs
    /// O(delta) per sample instead of O(edges) and is bit-identical to the full recount.
    pub incremental_indegree: bool,
    /// Number of metrics worker threads the driver overlaps full-graph analysis with the
    /// simulation on. `0` (the default) analyses every sample synchronously on the driver
    /// thread. With `n >= 1` workers the driver captures a snapshot, runs the incremental
    /// trackers and pre-draws the BFS sources, then hands the (copied) snapshot to a
    /// worker so the CSR build, path-length, clustering and estimation sweeps for sample
    /// `k` compute while the engine already simulates toward sample `k + 1`. Results are
    /// joined in sample order, so the output is bit-identical for every worker count.
    pub metrics_workers: usize,
    /// Continuous churn, if any.
    pub churn: Option<ChurnSpec>,
    /// Late growth of one node class, if any.
    pub growth: Option<GrowthSpec>,
    /// Scripted NAT-dynamics scenario, if any: executed at round barriers through the
    /// engine's [`RoundHook`](croupier_simulator::RoundHook); its flash-crowd actions are
    /// expanded into the join schedule.
    ///
    /// Caveat when combined with [`churn`](Self::churn) or an overhead window: the
    /// driver's class bookkeeping (which pool a churned node is drawn from, which class
    /// its replacement joins as, how `class_overhead` buckets traffic) uses *join-time*
    /// classes. Scripted profile upgrades/downgrades change the topology underneath
    /// without updating that bookkeeping — deliberately mirroring the protocols' own
    /// stale self-classification, but it means a churn spec no longer preserves the
    /// *effective* ratio once a scenario rewrites classes mid-run
    /// ([`RoundSample::true_ratio`] stays correct: scripted runs read it from the
    /// topology).
    pub scenario: Option<ScenarioScript>,
    /// Measurement window `(start_round, end_round)` for protocol overhead, if overhead is
    /// to be reported.
    pub overhead_window: Option<(u64, u64)>,
    /// Dissemination workload riding the run, if any: a [`WorkloadExecutor`] is composed
    /// after the scenario executor at the engines' round barriers, pushing and pulling
    /// chunks over the protocol's own peer samples, and the resulting
    /// [`WorkloadReport`] lands in [`RunOutput::workload`].
    pub workload: Option<WorkloadSpec>,
    /// Execution engine selector: `0` runs the event-driven engine (exact event
    /// interleaving, single-threaded); `n >= 1` runs the sharded phase-parallel engine
    /// with `n` worker threads.
    pub engine_threads: usize,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            seed: 42,
            n_public: 200,
            n_private: 800,
            public_interarrival_ms: 50.0,
            private_interarrival_ms: 12.5,
            rounds: 120,
            sample_every: 2,
            min_rounds_for_metrics: 2,
            graph_metric_sources: None,
            incremental_components: false,
            incremental_indegree: false,
            metrics_workers: 0,
            churn: None,
            growth: None,
            scenario: None,
            overhead_window: None,
            workload: None,
            engine_threads: 0,
        }
    }
}

impl ExperimentParams {
    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the initial population.
    pub fn with_population(mut self, n_public: usize, n_private: usize) -> Self {
        self.n_public = n_public;
        self.n_private = n_private;
        self
    }

    /// Sets the number of rounds.
    pub fn with_rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the metric sampling period.
    pub fn with_sample_every(mut self, sample_every: u64) -> Self {
        self.sample_every = sample_every.max(1);
        self
    }

    /// Enables graph metrics with the given number of BFS sources per sample.
    pub fn with_graph_metrics(mut self, sources: usize) -> Self {
        self.graph_metric_sources = Some(sources);
        self
    }

    /// Enables incremental largest-component tracking (union-find over snapshot edge
    /// deltas). Populates [`RoundSample::largest_component`] on every sample without
    /// requiring a full CSR + BFS pass, so it composes with — but does not require —
    /// [`with_graph_metrics`](Self::with_graph_metrics).
    pub fn with_incremental_components(mut self) -> Self {
        self.incremental_components = true;
        self
    }

    /// Enables incremental in-degree tracking: populates [`RoundSample::indegree_gini`]
    /// on every sample from O(delta) count updates instead of a full O(edges) recount.
    pub fn with_incremental_indegree(mut self) -> Self {
        self.incremental_indegree = true;
        self
    }

    /// Overlaps per-sample graph analysis with the simulation on `workers` metrics
    /// threads (`0` analyses synchronously on the driver thread). Samples are joined in
    /// order, so the run output is bit-identical for every worker count.
    pub fn with_metrics_workers(mut self, workers: usize) -> Self {
        self.metrics_workers = workers;
        self
    }

    /// Enables continuous churn.
    pub fn with_churn(mut self, churn: ChurnSpec) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Enables late growth (dynamic ratio).
    pub fn with_growth(mut self, growth: GrowthSpec) -> Self {
        self.growth = Some(growth);
        self
    }

    /// Installs a scripted NAT-dynamics scenario.
    pub fn with_scenario(mut self, scenario: ScenarioScript) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Installs a dissemination workload on the run.
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Enables overhead measurement over the given round window.
    pub fn with_overhead_window(mut self, start_round: u64, end_round: u64) -> Self {
        assert!(end_round > start_round, "overhead window must not be empty");
        self.overhead_window = Some((start_round, end_round));
        self
    }

    /// Selects the execution engine: `0` for the event-driven engine, `n >= 1` for the
    /// sharded phase-parallel engine with `n` worker threads.
    pub fn with_engine_threads(mut self, threads: usize) -> Self {
        self.engine_threads = threads;
        self
    }

    /// Total initial population.
    pub fn total_nodes(&self) -> usize {
        self.n_public + self.n_private
    }
}

/// The metrics captured at one sampling instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundSample {
    /// Gossip round at which the sample was taken.
    pub round: u64,
    /// Number of live nodes.
    pub node_count: usize,
    /// True public/private ratio among live nodes at sampling time.
    pub true_ratio: f64,
    /// Estimation errors across all nodes with an estimate.
    pub estimation: EstimationErrors,
    /// Average shortest path length (if graph metrics are enabled and defined).
    pub avg_path_length: Option<f64>,
    /// Average clustering coefficient (if graph metrics are enabled).
    pub clustering: Option<f64>,
    /// Fraction of live nodes in the largest connected component (if graph metrics are
    /// enabled).
    pub largest_component: Option<f64>,
    /// Gini coefficient of the in-degree distribution (if graph metrics or
    /// [`ExperimentParams::incremental_indegree`] are enabled): `0` is a perfectly
    /// uniform overlay, values near `1` mean a few hubs hold most of the in-degree.
    pub indegree_gini: Option<f64>,
}

/// Wall-clock cost of one metrics sample, split into the part that must run on the
/// driver thread and the part the overlapped metrics plane can hide.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleMetricsTiming {
    /// Gossip round of the sample.
    pub round: u64,
    /// Driver-thread nanoseconds: snapshot capture, incremental component/in-degree
    /// updates and the BFS source pre-draw.
    pub capture_ns: u64,
    /// Full-graph analysis nanoseconds: estimation sweep, CSR build, multi-source BFS
    /// and clustering.
    pub analysis_ns: u64,
    /// Whether the analysis ran on a metrics worker, overlapped with the simulation.
    pub offloaded: bool,
}

/// How much full-graph analysis the overlapped metrics plane hid behind the simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsOverlapReport {
    /// Number of metrics worker threads.
    pub workers: usize,
    /// Number of samples whose analysis was offloaded.
    pub offloaded_samples: u64,
    /// Total analysis nanoseconds across all offloaded samples.
    pub analysis_ns: u64,
    /// Driver nanoseconds spent blocked waiting for a worker (pool dry or final join).
    pub blocked_ns: u64,
    /// Fraction of [`analysis_ns`](Self::analysis_ns) that did **not** stall the driver:
    /// `1.0` means the analysis was entirely hidden behind the simulation.
    pub overlap_ratio: f64,
}

/// Everything a run produces.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Per-round samples, in time order.
    pub samples: Vec<RoundSample>,
    /// Overhead report over the configured window, if requested.
    pub overhead: Option<OverheadReport>,
    /// Snapshot of the overlay at the end of the run.
    pub final_snapshot: OverlaySnapshot,
    /// True ratio at the end of the run.
    pub final_true_ratio: f64,
    /// Merged per-node traffic ledger at the end of the run; lets callers compare byte
    /// counts across engines and thread counts.
    pub traffic: TrafficLedger,
    /// Final NAT-topology statistics: blocked messages, stale-binding send failures
    /// (blocks attributable to a scripted gateway reboot), and class counts as the NAT
    /// environment — not the join schedule — sees them.
    pub nat_stats: TopologyStats,
    /// `(full rebuilds, sublinear updates)` of the incremental connectivity structure,
    /// when [`ExperimentParams::incremental_components`] was enabled. Sublinear updates
    /// (delta-only unions plus certified forest repairs) cost O(nodes + delta) instead
    /// of O(edges); scale tests use this to assert the per-sample metrics path stayed
    /// sublinear: in a healthy overlay almost every sample repairs, not rebuilds.
    pub incremental_component_updates: Option<(u64, u64)>,
    /// `(full rebuilds, delta fast-path updates)` of the incremental in-degree tracker,
    /// when [`ExperimentParams::incremental_indegree`] was enabled. In a steady overlay
    /// almost every sample should take the O(delta) fast path.
    pub incremental_indegree_updates: Option<(u64, u64)>,
    /// Overlap accounting of the pipelined metrics plane, when
    /// [`ExperimentParams::metrics_workers`] was nonzero.
    pub metrics_overlap: Option<MetricsOverlapReport>,
    /// Per-sample metrics timing, in time order (one entry per [`RoundSample`]).
    pub metrics_timing: Vec<SampleMetricsTiming>,
    /// Message-plane fault accounting: what the fault plane injected (drops, bursts,
    /// duplicates, reorders, corruptions — distinct from NAT-filter drops, which appear
    /// in [`nat_stats`](Self::nat_stats)) plus what the protocols did about it
    /// (`retries_fired`, `exchanges_abandoned`, summed over surviving nodes). All zeros
    /// for runs whose script never activates the plane.
    pub fault_report: croupier_simulator::FaultReport,
    /// Delivery report of the dissemination workload, when
    /// [`ExperimentParams::workload`] was set.
    pub workload: Option<WorkloadReport>,
}

impl RunOutput {
    /// The last sample, if any.
    pub fn last_sample(&self) -> Option<&RoundSample> {
        self.samples.last()
    }

    /// Mean of the average estimation error over the last `n` samples.
    pub fn tail_avg_error(&self, n: usize) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let start = self.samples.len().saturating_sub(n);
        let tail = &self.samples[start..];
        Some(tail.iter().map(|s| s.estimation.average).sum::<f64>() / tail.len() as f64)
    }
}

/// Everything the driver thread must produce for one sample before the remaining
/// analysis can run anywhere: the incremental trackers have consumed the snapshot's edge
/// delta, the true ratio is read from the live bookkeeping, and the BFS sources are
/// pre-drawn from the metric RNG (so the analysis stage consumes no randomness and the
/// overlapped run stays bit-identical to the synchronous one).
#[derive(Clone, Debug, Default)]
struct SamplePrep {
    round: u64,
    node_count: usize,
    true_ratio: f64,
    capture_ns: u64,
    incremental_component: Option<f64>,
    indegree_gini: Option<f64>,
    graph_metrics: bool,
    sources: Vec<u32>,
}

/// One unit of offloaded analysis: a transfer snapshot (recycled through the worker
/// pool) plus the driver-side prep, tagged with the sample's position so results can be
/// joined in sample order.
#[derive(Debug, Default)]
struct MetricsJob {
    index: usize,
    prep: SamplePrep,
    snapshot: OverlaySnapshot,
}

/// The analysis stage of one sample: everything that is a pure function of the captured
/// snapshot (plus the pre-drawn prep). Runs inline on the driver thread when
/// [`ExperimentParams::metrics_workers`] is `0`, or on a metrics worker otherwise.
fn analyze_sample(
    prep: &SamplePrep,
    snapshot: &OverlaySnapshot,
    metrics: &mut MetricsContext,
) -> RoundSample {
    let estimation = estimation_errors(snapshot, prep.true_ratio);
    let (avg_path_length, clustering, largest_component, gini) = if prep.graph_metrics {
        // One CSR build feeds all graph metrics; dangling edges are filtered during the
        // build, so no separate retain_live_edges pass is needed. The incremental
        // trackers produce values bit-identical to the full sweeps, so when both paths
        // are enabled either answer is valid; the incremental one is preferred because
        // its cost scales with the churn since the previous sample.
        metrics.build(snapshot);
        (
            metrics.average_path_length_with_sources(&prep.sources),
            Some(metrics.average_clustering_coefficient()),
            Some(
                prep.incremental_component
                    .unwrap_or_else(|| metrics.largest_component_fraction()),
            ),
            Some(
                prep.indegree_gini
                    .unwrap_or_else(|| indegree_gini(snapshot)),
            ),
        )
    } else {
        (None, None, prep.incremental_component, prep.indegree_gini)
    };
    RoundSample {
        round: prep.round,
        node_count: prep.node_count,
        true_ratio: prep.true_ratio,
        estimation,
        avg_path_length,
        clustering,
        largest_component,
        indegree_gini: gini,
    }
}

/// Per-protocol experiment state shared between [`run_pss`] and [`run_failure`], generic
/// over the execution engine.
struct Driver<P: Protocol + PssNode, E: SimulationEngine<P>> {
    params: ExperimentParams,
    sim: E,
    topology: NatTopology,
    alive_public: Vec<NodeId>,
    alive_private: Vec<NodeId>,
    all_classes: HashMap<NodeId, NatClass>,
    next_id: u64,
    churn_carry: f64,
    workload_rng: SmallRng,
    metric_rng: SmallRng,
    /// Reusable snapshot buffer: refilled in place on every sample, so the sampling loop
    /// allocates nothing in steady state.
    sample_snapshot: OverlaySnapshot,
    /// Reusable metrics pipeline: one CSR overlay graph per sample shared by all graph
    /// metrics, with BFS fanned out over the engine's worker-thread count.
    metrics: MetricsContext,
    /// Incremental largest-component tracker, fed by the snapshot's edge deltas when
    /// [`ExperimentParams::incremental_components`] is set.
    components: IncrementalComponents,
    /// Incremental in-degree tracker, fed by the same edge deltas when
    /// [`ExperimentParams::incremental_indegree`] is set.
    indegree: IncrementalIndegree,
    /// Per-sample metrics timing, accumulated in sample order.
    metrics_timing: Vec<SampleMetricsTiming>,
    /// Reusable BFS source buffer recycled through [`SamplePrep`].
    sources_scratch: Vec<u32>,
    /// Reusable traffic ledger refilled in place by the overhead-window sampling, instead
    /// of cloning the engine's whole per-node map per sample.
    traffic_scratch: croupier_simulator::TrafficLedger,
    /// Delivery tracker shared with the workload hook riding the engine, when
    /// [`ExperimentParams::workload`] is set; the final report is built from it in
    /// [`run`](Self::run).
    workload_state: Option<Arc<Mutex<WorkloadState>>>,
    _protocol: PhantomData<fn() -> P>,
}

impl<P: Protocol + PssNode, E: SimulationEngine<P>> Driver<P, E> {
    fn new(params: &ExperimentParams) -> Self {
        let topology = NatTopologyBuilder::new(params.seed ^ 0x004e_4154).build();
        let mut sim = E::from_config(
            SimulationConfig::default()
                .with_seed(params.seed)
                .with_round_period(SimDuration::from_secs(1))
                .with_engine_threads(params.engine_threads),
        );
        sim.set_delivery_filter(topology.clone());
        let seed = Seed::new(params.seed);
        // Every run carries an (initially inactive) fault plane: scripts activate it
        // through fault actions, and the disabled-path overhead is a single relaxed
        // atomic load per delivery (guarded by the `fault_plane_inactive` bench row).
        let fault_plane = croupier_simulator::FaultPlane::new(seed);
        sim.set_fault_plane(fault_plane.clone());
        let mut workload_state = None;
        {
            // Build the barrier hook: scenario executor, workload executor, or both. When
            // both ride the run, the scenario fires first so the workload always pushes
            // and pulls over the post-dynamics NAT world of the closing round.
            let scenario_hook = params.scenario.as_ref().map(|script| {
                // The executor shares the topology with the delivery filter and runs at
                // the engines' round barriers on the coordinating thread; its RNG is a
                // dedicated stream of the master seed, so scripted runs are deterministic
                // and (on the sharded engine) bit-identical across worker-thread counts.
                let scenario_rng = seed.stream_rng(croupier_simulator::rng::Stream::Custom(0x5C3A));
                Box::new(
                    ScenarioExecutor::new(script, topology.clone(), scenario_rng)
                        .with_fault_plane(fault_plane.clone()),
                )
            });
            let workload_hook = params.workload.map(|spec| {
                let (executor, state) =
                    WorkloadExecutor::new(spec, topology.clone(), fault_plane.clone());
                workload_state = Some(state);
                Box::new(executor)
            });
            match (scenario_hook, workload_hook) {
                (Some(scenario), Some(workload)) => sim.set_sampled_round_hook(Box::new(
                    croupier_simulator::CompositeRoundHook::new()
                        .with(scenario)
                        .with(workload),
                )),
                // The workload draws peer samples, so it needs the sampling-aware
                // installer; a scenario alone keeps the cheaper plain hook.
                (None, Some(workload)) => sim.set_sampled_round_hook(workload),
                (Some(scenario), None) => sim.set_round_hook(scenario),
                (None, None) => {}
            }
        }
        let mut sample_snapshot = OverlaySnapshot::default();
        if params.incremental_components || params.incremental_indegree {
            sample_snapshot.enable_delta_tracking();
        }
        Driver {
            params: params.clone(),
            sim,
            topology,
            alive_public: Vec::new(),
            alive_private: Vec::new(),
            all_classes: HashMap::new(),
            next_id: 0,
            churn_carry: 0.0,
            workload_rng: seed.stream_rng(croupier_simulator::rng::Stream::Workload),
            metric_rng: seed.stream_rng(croupier_simulator::rng::Stream::Custom(0xE7)),
            sample_snapshot,
            metrics: MetricsContext::new(params.engine_threads.max(1)),
            components: IncrementalComponents::new(),
            indegree: IncrementalIndegree::new(),
            metrics_timing: Vec::new(),
            sources_scratch: Vec::new(),
            traffic_scratch: croupier_simulator::TrafficLedger::new(),
            workload_state,
            _protocol: PhantomData,
        }
    }

    fn add_node<F>(&mut self, class: NatClass, make_node: &mut F)
    where
        F: FnMut(NodeId, NatClass, &NatTopology) -> P,
    {
        let id = NodeId::new(self.next_id);
        self.next_id += 1;
        self.topology.add_node(id, class);
        if class.is_public() {
            self.sim.register_public(id);
            self.alive_public.push(id);
        } else {
            self.alive_private.push(id);
        }
        self.all_classes.insert(id, class);
        let node = make_node(id, class, &self.topology);
        self.sim.add_node(id, node);
    }

    fn remove_random_node(&mut self, class: NatClass) -> Option<NodeId> {
        let pool = match class {
            NatClass::Public => &mut self.alive_public,
            NatClass::Private => &mut self.alive_private,
        };
        if pool.is_empty() {
            return None;
        }
        let index = self.workload_rng.gen_range(0..pool.len());
        let id = pool.swap_remove(index);
        self.sim.remove_node(id);
        Some(id)
    }

    fn apply_churn<F>(&mut self, make_node: &mut F)
    where
        F: FnMut(NodeId, NatClass, &NatTopology) -> P,
    {
        let Some(churn) = self.params.churn else {
            return;
        };
        let alive = self.alive_public.len() + self.alive_private.len();
        self.churn_carry += churn.fraction_per_round * alive as f64;
        let replacements = self.churn_carry.floor() as usize;
        self.churn_carry -= replacements as f64;
        for _ in 0..replacements {
            // Keep the public/private ratio stable by replacing a node with a new node of
            // the same class, chosen proportionally to the class sizes.
            let public_fraction = self.alive_public.len() as f64
                / (self.alive_public.len() + self.alive_private.len()).max(1) as f64;
            let class = if self.workload_rng.gen_range(0.0..1.0) < public_fraction {
                NatClass::Public
            } else {
                NatClass::Private
            };
            if self.remove_random_node(class).is_some() {
                self.add_node(class, make_node);
            }
        }
    }

    fn true_ratio(&self) -> f64 {
        if self.params.scenario.is_some() {
            // Scripted upgrades/downgrades change classes behind the driver's back; the
            // topology is the authority on the effective ratio.
            return self.topology.stats().public_private_ratio();
        }
        let total = self.alive_public.len() + self.alive_private.len();
        if total == 0 {
            0.0
        } else {
            self.alive_public.len() as f64 / total as f64
        }
    }

    /// The driver-thread half of one sample: captures the snapshot, feeds the
    /// incremental trackers their edge delta (which must happen before the *next*
    /// capture invalidates it) and pre-draws the BFS sources, consuming the metric RNG
    /// in exactly the order the synchronous path would.
    fn prepare_sample(&mut self, round: u64, mut sources: Vec<u32>) -> SamplePrep {
        let capture_start = Instant::now();
        self.sample_snapshot
            .capture_into(&self.sim, self.params.min_rounds_for_metrics);
        let incremental_component = if self.params.incremental_components {
            self.components.update(&self.sample_snapshot);
            Some(self.components.largest_component_fraction())
        } else {
            None
        };
        let indegree_gini = if self.params.incremental_indegree {
            self.indegree.update(&self.sample_snapshot);
            Some(self.indegree.gini())
        } else {
            None
        };
        let graph_metrics = self.params.graph_metric_sources.is_some();
        if let Some(count) = self.params.graph_metric_sources {
            // The CSR vertex set is exactly the captured node set, so drawing against
            // the snapshot count is bit-identical to the inline draw against the built
            // graph that the synchronous pipeline used to perform.
            draw_path_sources(
                self.sample_snapshot.node_count(),
                count,
                &mut self.metric_rng,
                &mut sources,
            );
        } else {
            sources.clear();
        }
        SamplePrep {
            round,
            node_count: self.sim.len(),
            true_ratio: self.true_ratio(),
            capture_ns: capture_start.elapsed().as_nanos() as u64,
            incremental_component,
            indegree_gini,
            graph_metrics,
            sources,
        }
    }

    /// Synchronous sampling: prepare and analyse back to back on the driver thread.
    fn sample(&mut self, round: u64) -> RoundSample {
        let sources = std::mem::take(&mut self.sources_scratch);
        let prep = self.prepare_sample(round, sources);
        let analysis_start = Instant::now();
        let sample = analyze_sample(&prep, &self.sample_snapshot, &mut self.metrics);
        self.metrics_timing.push(SampleMetricsTiming {
            round,
            capture_ns: prep.capture_ns,
            analysis_ns: analysis_start.elapsed().as_nanos() as u64,
            offloaded: false,
        });
        self.sources_scratch = prep.sources;
        sample
    }

    /// Runs the main phase: joins, rounds, churn, sampling.
    fn run<F>(&mut self, make_node: &mut F) -> RunOutput
    where
        F: FnMut(NodeId, NatClass, &NatTopology) -> P,
    {
        // One source of truth for the round period: the engine config set in new().
        let round_ms = self.sim.config().round_period.as_millis().max(1);
        let mut schedule = JoinSchedule::poisson(
            self.params.n_public,
            self.params.public_interarrival_ms,
            self.params.n_private,
            self.params.private_interarrival_ms,
            &mut self.workload_rng,
        );
        if let Some(growth) = self.params.growth {
            schedule.append_growth(
                croupier_simulator::SimTime::from_secs(growth.start_round),
                growth.count,
                growth.interarrival_ms,
                growth.class,
            );
        }
        if let Some(script) = &self.params.scenario {
            // Flash crowds are the one scripted event with engine-side effects (new
            // protocol instances), so they join through the ordinary schedule instead of
            // the NAT-mutation hook.
            schedule.extend(script.flash_crowd_joins(self.params.total_nodes(), round_ms));
        }
        let events = schedule.events().to_vec();
        let mut next_event = 0usize;

        let mut samples = Vec::new();
        let mut overhead = None;

        let metrics_overlap = if self.params.metrics_workers == 0 {
            for round in 1..=self.params.rounds {
                self.step_round(
                    round,
                    round_ms,
                    &events,
                    &mut next_event,
                    &mut overhead,
                    make_node,
                );
                if round % self.params.sample_every == 0 {
                    samples.push(self.sample(round));
                }
            }
            None
        } else {
            Some(self.run_overlapped(
                round_ms,
                &events,
                &mut next_event,
                &mut overhead,
                make_node,
                &mut samples,
            ))
        };

        let mut final_snapshot =
            OverlaySnapshot::capture(&self.sim, self.params.min_rounds_for_metrics);
        final_snapshot.retain_live_edges();
        // Plane counters say what the network did; node counters say what the protocols
        // did about it. Churned-out nodes take their counters with them, so the sums
        // reflect the surviving population — consistent with every other final metric.
        let mut fault_report = self.sim.fault_report();
        self.sim.for_each_node(&mut |_, node| {
            fault_report.retries_fired += node.retries_fired();
            fault_report.exchanges_abandoned += node.exchanges_abandoned();
        });
        let workload = self.workload_state.as_ref().map(|state| {
            // Open chunks are force-sealed against the end-of-run live population, in
            // the same canonical ascending-id order the hook itself uses.
            let mut live: Vec<NodeId> = Vec::with_capacity(self.sim.len());
            self.sim.for_each_node(&mut |id, _| live.push(id));
            live.sort_unstable();
            WorkloadExecutor::report(state, &live)
        });
        RunOutput {
            samples,
            overhead,
            final_true_ratio: self.true_ratio(),
            final_snapshot,
            traffic: self.sim.traffic_snapshot(),
            nat_stats: self.topology.stats(),
            incremental_component_updates: self.params.incremental_components.then(|| {
                (
                    self.components.rebuild_count(),
                    self.components.sublinear_update_count(),
                )
            }),
            incremental_indegree_updates: self.params.incremental_indegree.then(|| {
                (
                    self.indegree.rebuild_count(),
                    self.indegree.fast_update_count(),
                )
            }),
            metrics_overlap,
            metrics_timing: std::mem::take(&mut self.metrics_timing),
            fault_report,
            workload,
        }
    }

    /// Advances the simulation by one gossip round: join events up to the round
    /// boundary, the round itself, then churn and overhead-window bookkeeping. Shared by
    /// the synchronous and the overlapped run loops.
    fn step_round<F>(
        &mut self,
        round: u64,
        round_ms: u64,
        events: &[JoinEvent],
        next_event: &mut usize,
        overhead: &mut Option<OverheadReport>,
        make_node: &mut F,
    ) where
        F: FnMut(NodeId, NatClass, &NatTopology) -> P,
    {
        let boundary = croupier_simulator::SimTime::from_millis(round * round_ms);
        while *next_event < events.len() && events[*next_event].at <= boundary {
            let event = events[*next_event];
            *next_event += 1;
            self.sim.run_until(event.at);
            self.add_node(event.class, make_node);
        }
        self.sim.run_until(boundary);

        if let Some(churn) = self.params.churn {
            if round >= churn.start_round {
                self.apply_churn(make_node);
            }
        }

        if let Some((start, end)) = self.params.overhead_window {
            if round == start {
                self.sim.reset_traffic_window();
            } else if round == end {
                let window_secs = (end - start) as f64;
                let classes = self.all_classes.clone();
                self.sim.traffic_snapshot_into(&mut self.traffic_scratch);
                *overhead = Some(class_overhead(
                    &self.traffic_scratch,
                    |id| classes.get(&id).copied(),
                    window_secs,
                ));
            }
        }
    }

    /// The overlapped run loop: the driver thread simulates and prepares samples while a
    /// pool of metrics workers analyses already-captured snapshots.
    ///
    /// Soundness hinges on the split in [`prepare_sample`](Self::prepare_sample): the
    /// capture and both incremental trackers stay on the driver thread (an edge delta is
    /// only valid between *consecutive* captures, so its consumers can never skip a
    /// snapshot), and the metric RNG is fully consumed during prepare. What a worker
    /// receives is a pure function of its job, so joining results by sample index makes
    /// the run bit-identical to the synchronous loop for any worker count.
    fn run_overlapped<F>(
        &mut self,
        round_ms: u64,
        events: &[JoinEvent],
        next_event: &mut usize,
        overhead: &mut Option<OverheadReport>,
        make_node: &mut F,
        samples: &mut Vec<RoundSample>,
    ) -> MetricsOverlapReport
    where
        F: FnMut(NodeId, NatClass, &NatTopology) -> P,
    {
        /// Books a finished job: records its sample and timing, returns the job so its
        /// buffers can be recycled.
        fn settle(
            done: MetricsJob,
            sample: RoundSample,
            elapsed_ns: u64,
            ordered: &mut [Option<(RoundSample, SampleMetricsTiming)>],
            analysis_ns: &mut u64,
        ) -> MetricsJob {
            *analysis_ns += elapsed_ns;
            ordered[done.index] = Some((
                sample,
                SampleMetricsTiming {
                    round: done.prep.round,
                    capture_ns: done.prep.capture_ns,
                    analysis_ns: elapsed_ns,
                    offloaded: true,
                },
            ));
            done
        }

        let workers = self.params.metrics_workers;
        // A single worker never competes with a sibling for cores, so it inherits the
        // engine's thread budget for its multi-source BFS; multiple workers each stay
        // single-threaded to avoid oversubscribing the machine.
        let worker_threads = if workers == 1 {
            self.params.engine_threads.max(1)
        } else {
            1
        };
        let expected = (self.params.rounds / self.params.sample_every) as usize;
        let mut ordered: Vec<Option<(RoundSample, SampleMetricsTiming)>> =
            (0..expected).map(|_| None).collect();
        let mut analysis_ns = 0u64;
        let mut blocked_ns = 0u64;
        let mut offloaded = 0u64;

        std::thread::scope(|scope| {
            let (job_tx, job_rx) = mpsc::channel::<MetricsJob>();
            let (result_tx, result_rx) = mpsc::channel::<(MetricsJob, RoundSample, u64)>();
            let job_rx = Arc::new(Mutex::new(job_rx));
            for _ in 0..workers {
                let rx = Arc::clone(&job_rx);
                let tx = result_tx.clone();
                scope.spawn(move || {
                    let mut metrics = MetricsContext::new(worker_threads);
                    loop {
                        // Hold the lock only for the receive: workers analyse in
                        // parallel, competing solely for job pickup.
                        let job = match rx.lock().unwrap().recv() {
                            Ok(job) => job,
                            Err(_) => break,
                        };
                        let start = Instant::now();
                        let sample = analyze_sample(&job.prep, &job.snapshot, &mut metrics);
                        let elapsed_ns = start.elapsed().as_nanos() as u64;
                        if tx.send((job, sample, elapsed_ns)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(result_tx);

            // `workers + 1` transfer jobs: every worker can hold one while the driver
            // fills the spare, so in steady state the driver never waits.
            let mut pool: Vec<MetricsJob> = (0..=workers).map(|_| MetricsJob::default()).collect();
            let mut in_flight = 0usize;
            let mut sample_index = 0usize;
            for round in 1..=self.params.rounds {
                self.step_round(round, round_ms, events, next_event, overhead, make_node);
                if round % self.params.sample_every != 0 {
                    continue;
                }
                // Recycle every finished job without blocking, then take a free buffer —
                // waiting on the slowest worker only when the pool has run dry.
                while let Ok((done, sample, elapsed_ns)) = result_rx.try_recv() {
                    in_flight -= 1;
                    pool.push(settle(
                        done,
                        sample,
                        elapsed_ns,
                        &mut ordered,
                        &mut analysis_ns,
                    ));
                }
                let mut job = match pool.pop() {
                    Some(job) => job,
                    None => {
                        let wait = Instant::now();
                        let (done, sample, elapsed_ns) =
                            result_rx.recv().expect("metrics workers alive");
                        blocked_ns += wait.elapsed().as_nanos() as u64;
                        in_flight -= 1;
                        settle(done, sample, elapsed_ns, &mut ordered, &mut analysis_ns)
                    }
                };
                let sources = std::mem::take(&mut job.prep.sources);
                job.prep = self.prepare_sample(round, sources);
                job.index = sample_index;
                sample_index += 1;
                job.snapshot.copy_observations_from(&self.sample_snapshot);
                job_tx.send(job).expect("metrics workers alive");
                in_flight += 1;
                offloaded += 1;
            }
            drop(job_tx);
            while in_flight > 0 {
                let wait = Instant::now();
                let (done, sample, elapsed_ns) = result_rx.recv().expect("metrics workers alive");
                blocked_ns += wait.elapsed().as_nanos() as u64;
                in_flight -= 1;
                settle(done, sample, elapsed_ns, &mut ordered, &mut analysis_ns);
            }
        });

        for slot in ordered {
            let (sample, timing) = slot.expect("every dispatched sample is joined");
            samples.push(sample);
            self.metrics_timing.push(timing);
        }
        let hidden = analysis_ns - blocked_ns.min(analysis_ns);
        MetricsOverlapReport {
            workers,
            offloaded_samples: offloaded,
            analysis_ns,
            blocked_ns,
            overlap_ratio: if analysis_ns == 0 {
                0.0
            } else {
                hidden as f64 / analysis_ns as f64
            },
        }
    }

    /// Fails `fraction` of the live nodes at a single instant and returns the fraction of
    /// survivors still connected in the largest cluster (Fig. 7(b)).
    fn catastrophic_failure(&mut self, fraction: f64) -> f64 {
        let alive: usize = self.alive_public.len() + self.alive_private.len();
        let to_fail = ((alive as f64) * fraction).round() as usize;
        for _ in 0..to_fail {
            let public_fraction = self.alive_public.len() as f64
                / (self.alive_public.len() + self.alive_private.len()).max(1) as f64;
            let class = if self.workload_rng.gen_range(0.0..1.0) < public_fraction {
                NatClass::Public
            } else {
                NatClass::Private
            };
            if self.remove_random_node(class).is_none() {
                // The chosen class ran out of nodes; fail one of the other class instead.
                let _ = self.remove_random_node(class.opposite());
            }
        }
        // Reuse the driver's snapshot and metrics buffers; the CSR build drops the
        // dangling edges left behind by the failed nodes.
        self.sample_snapshot.capture_into(&self.sim, 0);
        self.metrics.build(&self.sample_snapshot);
        self.metrics.largest_component_fraction()
    }
}

/// Runs a peer-sampling experiment for any protocol implementing [`PssNode`].
///
/// `make_node` constructs the protocol instance for each joining node; it receives the
/// node's identity, its connectivity class and a handle to the NAT topology (needed by
/// protocols that consult the address oracle). The engine is chosen by
/// [`ExperimentParams::engine_threads`].
pub fn run_pss<P, F>(params: &ExperimentParams, mut make_node: F) -> RunOutput
where
    P: Protocol + PssNode + Send,
    P::Message: Send,
    F: FnMut(NodeId, NatClass, &NatTopology) -> P,
{
    if params.engine_threads == 0 {
        Driver::<P, Simulation<P>>::new(params).run(&mut make_node)
    } else {
        Driver::<P, ShardedSimulation<P>>::new(params).run(&mut make_node)
    }
}

/// Runs a catastrophic-failure experiment: the system is built and run for `params.rounds`
/// rounds, then `failure_fraction` of the nodes crash simultaneously; the return value is
/// the fraction of surviving nodes that remain in the largest connected cluster.
pub fn run_failure<P, F>(params: &ExperimentParams, mut make_node: F, failure_fraction: f64) -> f64
where
    P: Protocol + PssNode + Send,
    P::Message: Send,
    F: FnMut(NodeId, NatClass, &NatTopology) -> P,
{
    assert!(
        (0.0..1.0).contains(&failure_fraction),
        "failure fraction must be within [0, 1)"
    );
    if params.engine_threads == 0 {
        let mut driver = Driver::<P, Simulation<P>>::new(params);
        driver.run(&mut make_node);
        driver.catastrophic_failure(failure_fraction)
    } else {
        let mut driver = Driver::<P, ShardedSimulation<P>>::new(params);
        driver.run(&mut make_node);
        driver.catastrophic_failure(failure_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croupier::{CroupierConfig, CroupierNode};
    use croupier_baselines::{BaselineConfig, CyclonNode};

    fn tiny_params() -> ExperimentParams {
        ExperimentParams::default()
            .with_population(8, 32)
            .with_rounds(50)
            .with_sample_every(5)
    }

    #[test]
    fn croupier_run_produces_converging_estimates() {
        let params = tiny_params().with_seed(1);
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        assert!(!out.samples.is_empty());
        let last = out.last_sample().unwrap();
        assert_eq!(last.node_count, 40);
        assert!((out.final_true_ratio - 0.2).abs() < 1e-9);
        assert!(
            last.estimation.average < 0.1,
            "average estimation error should be small, got {}",
            last.estimation.average
        );
    }

    #[test]
    fn graph_metrics_are_produced_when_enabled() {
        let params = tiny_params().with_seed(2).with_graph_metrics(10);
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        let last = out.last_sample().unwrap();
        assert!(last.avg_path_length.is_some());
        assert!(last.clustering.is_some());
        assert!(
            (last.largest_component.unwrap() - 1.0).abs() < 1e-9,
            "overlay should be connected"
        );
        assert!(out.final_snapshot.edge_count() > 0);
    }

    #[test]
    fn incremental_components_match_the_csr_pipeline_sample_for_sample() {
        let base = tiny_params()
            .with_seed(11)
            .with_churn(ChurnSpec::new(10, 0.02))
            .with_graph_metrics(10);
        let csr = run_pss(&base, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        let incremental = run_pss(
            &base.clone().with_incremental_components(),
            |id, class, _| CroupierNode::new(id, class, CroupierConfig::default()),
        );
        assert_eq!(csr.samples.len(), incremental.samples.len());
        for (a, b) in csr.samples.iter().zip(&incremental.samples) {
            assert_eq!(
                a.largest_component.map(f64::to_bits),
                b.largest_component.map(f64::to_bits),
                "round {}: incremental largest component must be bit-identical to CSR",
                a.round
            );
            // The rest of the sample must be untouched by the incremental tracker.
            assert_eq!(a, b);
        }
        let (rebuilds, fast) = incremental.incremental_component_updates.unwrap();
        assert_eq!(rebuilds + fast, incremental.samples.len() as u64);
    }

    #[test]
    fn incremental_components_work_without_graph_metrics() {
        let params = tiny_params().with_seed(12).with_incremental_components();
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        let last = out.last_sample().unwrap();
        assert!(last.avg_path_length.is_none());
        assert!(last.clustering.is_none());
        assert!(
            (last.largest_component.unwrap() - 1.0).abs() < 1e-9,
            "a converged tiny overlay is connected"
        );
        let (rebuilds, fast) = out.incremental_component_updates.unwrap();
        assert!(rebuilds >= 1, "the first sample always rebuilds");
        assert!(
            fast > 0,
            "a stable overlay must take the delta fast path ({rebuilds} rebuilds, {fast} fast)"
        );
    }

    #[test]
    fn incremental_indegree_matches_the_full_recount_sample_for_sample() {
        let base = tiny_params()
            .with_seed(14)
            .with_churn(ChurnSpec::new(10, 0.02))
            .with_graph_metrics(10);
        let full = run_pss(&base, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        let incremental = run_pss(&base.clone().with_incremental_indegree(), |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        assert_eq!(full.samples.len(), incremental.samples.len());
        for (a, b) in full.samples.iter().zip(&incremental.samples) {
            assert_eq!(
                a.indegree_gini.map(f64::to_bits),
                b.indegree_gini.map(f64::to_bits),
                "round {}: incremental in-degree Gini must be bit-identical to the recount",
                a.round
            );
            assert_eq!(a, b);
        }
        let (rebuilds, fast) = incremental.incremental_indegree_updates.unwrap();
        assert_eq!(rebuilds + fast, incremental.samples.len() as u64);
        assert!(
            fast > 0,
            "a stable overlay must take the delta fast path ({rebuilds} rebuilds, {fast} fast)"
        );
        assert!(full.incremental_indegree_updates.is_none());
    }

    #[test]
    fn incremental_indegree_works_without_graph_metrics() {
        let params = tiny_params().with_seed(15).with_incremental_indegree();
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        let last = out.last_sample().unwrap();
        assert!(last.avg_path_length.is_none());
        assert!(last.clustering.is_none());
        let gini = last.indegree_gini.unwrap();
        assert!((0.0..=1.0).contains(&gini), "Gini out of range: {gini}");
    }

    #[test]
    fn overlapped_metrics_are_bit_identical_for_every_worker_count() {
        let run = |workers: usize| {
            let params = tiny_params()
                .with_seed(16)
                .with_churn(ChurnSpec::new(10, 0.05))
                .with_graph_metrics(10)
                .with_incremental_indegree()
                .with_metrics_workers(workers);
            run_pss(&params, |id, class, _| {
                CroupierNode::new(id, class, CroupierConfig::default())
            })
        };
        let sync = run(0);
        assert!(sync.metrics_overlap.is_none());
        assert_eq!(sync.metrics_timing.len(), sync.samples.len());
        assert!(sync.metrics_timing.iter().all(|t| !t.offloaded));
        for workers in [1, 2, 4] {
            let overlapped = run(workers);
            assert_eq!(
                sync.samples, overlapped.samples,
                "samples diverged with {workers} metrics workers"
            );
            assert_eq!(sync.final_snapshot, overlapped.final_snapshot);
            let report = overlapped.metrics_overlap.unwrap();
            assert_eq!(report.workers, workers);
            assert_eq!(report.offloaded_samples, overlapped.samples.len() as u64);
            assert!((0.0..=1.0).contains(&report.overlap_ratio));
            assert_eq!(overlapped.metrics_timing.len(), overlapped.samples.len());
            assert!(overlapped.metrics_timing.iter().all(|t| t.offloaded));
            // Joined in sample order: the timing vector mirrors the samples.
            for (timing, sample) in overlapped.metrics_timing.iter().zip(&overlapped.samples) {
                assert_eq!(timing.round, sample.round);
            }
        }
    }

    #[test]
    fn overlapped_metrics_follow_scripted_scenarios() {
        let run = |workers: usize| {
            let params = tiny_params()
                .with_seed(17)
                .with_rounds(60)
                .with_graph_metrics(10)
                .with_scenario(ScenarioScript::croupier_stress(60))
                .with_metrics_workers(workers);
            run_pss(&params, |id, class, _| {
                CroupierNode::new(id, class, CroupierConfig::default())
            })
        };
        let sync = run(0);
        let overlapped = run(2);
        assert_eq!(sync.samples, overlapped.samples);
        assert_eq!(sync.nat_stats, overlapped.nat_stats);
        assert_eq!(sync.traffic, overlapped.traffic);
    }

    #[test]
    fn churn_keeps_population_and_ratio_stable() {
        let params = tiny_params()
            .with_seed(3)
            .with_rounds(60)
            .with_churn(ChurnSpec::new(20, 0.05));
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        let last = out.last_sample().unwrap();
        assert_eq!(last.node_count, 40, "churn replaces nodes one for one");
        assert!((out.final_true_ratio - 0.2).abs() < 0.08);
    }

    #[test]
    fn growth_raises_the_true_ratio() {
        let params = tiny_params()
            .with_seed(4)
            .with_rounds(60)
            .with_growth(GrowthSpec {
                start_round: 20,
                count: 10,
                interarrival_ms: 500.0,
                class: NatClass::Public,
            });
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        assert!(
            out.final_true_ratio > 0.3,
            "ratio should grow, got {}",
            out.final_true_ratio
        );
        assert_eq!(out.last_sample().unwrap().node_count, 50);
    }

    #[test]
    fn overhead_window_produces_a_report() {
        let params = tiny_params().with_seed(5).with_overhead_window(20, 40);
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        let overhead = out.overhead.expect("overhead report requested");
        assert!(overhead.public.avg_load_bytes_per_sec > 0.0);
        assert!(overhead.private.avg_load_bytes_per_sec > 0.0);
        // Croupiers serve the shuffle requests of everyone, so they carry more load.
        assert!(overhead.public.avg_load_bytes_per_sec > overhead.private.avg_load_bytes_per_sec);
    }

    #[test]
    fn cyclon_runs_on_all_public_populations() {
        let params = ExperimentParams::default()
            .with_seed(6)
            .with_population(30, 0)
            .with_rounds(40)
            .with_sample_every(5)
            .with_graph_metrics(10);
        let out = run_pss(&params, |id, _, _| {
            CyclonNode::new(id, BaselineConfig::default())
        });
        let last = out.last_sample().unwrap();
        assert_eq!(last.node_count, 30);
        assert!((last.largest_component.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn failure_run_reports_surviving_cluster_fraction() {
        let params = tiny_params().with_seed(7).with_rounds(40);
        let connected = run_failure(
            &params,
            |id, class, _| CroupierNode::new(id, class, CroupierConfig::default()),
            0.5,
        );
        assert!(
            connected > 0.5,
            "half the nodes failing should not shatter the overlay: {connected}"
        );
        assert!(connected <= 1.0);
    }

    #[test]
    fn runs_are_deterministic_for_a_fixed_seed() {
        let params = tiny_params().with_seed(8);
        let run = || {
            run_pss(&params, |id, class, _| {
                CroupierNode::new(id, class, CroupierConfig::default())
            })
            .samples
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sharded_engine_produces_converging_estimates() {
        let params = tiny_params().with_seed(9).with_engine_threads(2);
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        let last = out.last_sample().unwrap();
        assert_eq!(last.node_count, 40);
        assert!((out.final_true_ratio - 0.2).abs() < 1e-9);
        assert!(
            last.estimation.average < 0.1,
            "sharded run should converge like the event engine, got {}",
            last.estimation.average
        );
        assert!(out.traffic.total_bytes_sent() > 0);
    }

    #[test]
    fn sharded_runs_are_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            let params = tiny_params().with_seed(10).with_engine_threads(threads);
            run_pss(&params, |id, class, _| {
                CroupierNode::new(id, class, CroupierConfig::default())
            })
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.samples, four.samples, "samples diverged");
        assert_eq!(
            one.final_snapshot, four.final_snapshot,
            "snapshots diverged"
        );
        assert_eq!(one.traffic, four.traffic, "traffic ledgers diverged");
    }

    #[test]
    fn sharded_graph_metrics_are_bit_identical_across_thread_counts() {
        // Drives the whole pipeline with graph metrics on: the sharded engine AND the
        // metrics context fan out over `threads` workers, and every sampled metric —
        // including the float outputs of the parallel multi-source BFS — must match the
        // single-worker run bit for bit.
        let run = |threads: usize| {
            let params = tiny_params()
                .with_seed(13)
                .with_engine_threads(threads)
                .with_graph_metrics(10);
            run_pss(&params, |id, class, _| {
                CroupierNode::new(id, class, CroupierConfig::default())
            })
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.samples, four.samples, "graph-metric samples diverged");
        let last = one.last_sample().unwrap();
        assert!(last.avg_path_length.is_some());
        assert!(last.clustering.is_some());
        assert!((last.largest_component.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sharded_engine_supports_churn_growth_and_overhead() {
        let params = tiny_params()
            .with_seed(11)
            .with_rounds(60)
            .with_engine_threads(3)
            .with_churn(ChurnSpec::new(20, 0.05))
            .with_overhead_window(30, 50);
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        assert_eq!(out.last_sample().unwrap().node_count, 40);
        let overhead = out.overhead.expect("overhead report requested");
        assert!(overhead.public.avg_load_bytes_per_sec > 0.0);
        assert!(overhead.public.avg_load_bytes_per_sec > overhead.private.avg_load_bytes_per_sec);
    }

    #[test]
    fn sharded_failure_runs_keep_the_overlay_connected() {
        let params = tiny_params()
            .with_seed(12)
            .with_rounds(40)
            .with_engine_threads(2);
        let connected = run_failure(
            &params,
            |id, class, _| CroupierNode::new(id, class, CroupierConfig::default()),
            0.5,
        );
        assert!(
            connected > 0.5,
            "sharded overlay should survive 50% failures: {connected}"
        );
    }

    use crate::scenario::{NatDynamicsEvent, ScenarioScript};

    #[test]
    fn scripted_scenario_runs_on_the_event_engine() {
        let params = tiny_params()
            .with_seed(20)
            .with_rounds(60)
            .with_graph_metrics(10)
            .with_scenario(ScenarioScript::croupier_stress(60));
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        let last = out.last_sample().unwrap();
        assert_eq!(last.node_count, 40);
        assert!(
            out.nat_stats.stale_binding_failures > 0,
            "the reboot storm should produce stale-binding send failures"
        );
        assert_eq!(out.nat_stats.offline_nodes, 0, "outage must be restored");
        assert!(
            (last.largest_component.unwrap() - 1.0).abs() < 1e-9,
            "croupier should recover connectivity after the stress script"
        );
    }

    #[test]
    fn scripted_flash_crowd_grows_the_population() {
        let params = tiny_params()
            .with_seed(21)
            .with_rounds(60)
            .with_scenario(ScenarioScript::flash_crowd(60));
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        assert_eq!(
            out.last_sample().unwrap().node_count,
            60,
            "half the initial 40 nodes join mid-run"
        );
    }

    #[test]
    fn scripted_profile_changes_move_the_true_ratio() {
        let script = ScenarioScript::new("upgrade_everyone")
            .at(20, NatDynamicsEvent::ProfileUpgrade { fraction: 1.0 });
        let params = tiny_params()
            .with_seed(22)
            .with_rounds(40)
            .with_scenario(script);
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        assert!(
            (out.final_true_ratio - 1.0).abs() < 1e-9,
            "after a full upgrade every node is effectively public, got {}",
            out.final_true_ratio
        );
        assert_eq!(out.nat_stats.public_nodes, 40);
    }

    #[test]
    fn scripted_scenario_runs_identically_on_repeat() {
        let params = tiny_params()
            .with_seed(23)
            .with_rounds(50)
            .with_engine_threads(2)
            .with_scenario(ScenarioScript::croupier_stress(50));
        let run = || {
            run_pss(&params, |id, class, _| {
                CroupierNode::new(id, class, CroupierConfig::default())
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.nat_stats, b.nat_stats);
        assert_eq!(a.traffic, b.traffic);
    }

    #[test]
    fn fault_scripts_inject_and_protocols_recover() {
        let params = tiny_params()
            .with_seed(24)
            .with_rounds(60)
            .with_graph_metrics(10)
            .with_scenario(ScenarioScript::lossy_10(60));
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        assert!(
            out.fault_report.injected_drops > 0,
            "the lossy window must inject drops, got {:?}",
            out.fault_report
        );
        assert!(
            out.fault_report.retries_fired > 0,
            "dropped shuffles must trigger timeout retries"
        );
        let last = out.last_sample().unwrap();
        assert!(
            (last.largest_component.unwrap() - 1.0).abs() < 1e-9,
            "croupier should recover connectivity after the faults clear"
        );
    }

    #[test]
    fn clean_runs_report_zero_fault_injection() {
        let params = tiny_params().with_seed(25).with_rounds(20);
        let out = run_pss(&params, |id, class, _| {
            CroupierNode::new(id, class, CroupierConfig::default())
        });
        assert_eq!(out.fault_report.total_injected(), 0);
        assert_eq!(out.fault_report.exchanges_abandoned, 0);
    }

    #[test]
    #[should_panic(expected = "failure fraction")]
    fn failure_fraction_must_be_less_than_one() {
        let params = tiny_params();
        run_failure(
            &params,
            |id, class, _| CroupierNode::new(id, class, CroupierConfig::default()),
            1.0,
        );
    }
}
