//! # croupier-experiments
//!
//! Workload generators and experiment runners that regenerate every figure of the Croupier
//! paper's evaluation (§VII). Each figure has a dedicated module under [`figures`] returning
//! a [`FigureData`] with the same series the paper plots; the `figures` binary prints them
//! as tables and the `croupier-bench` crate wraps them in Criterion benchmarks.
//!
//! The mapping between paper figures and modules is listed in `DESIGN.md` (per-experiment
//! index) and the measured outcomes are recorded in `EXPERIMENTS.md`.
//!
//! ## Structure
//!
//! * [`scenario`] — join schedules (Poisson arrivals), churn and catastrophic-failure
//!   specifications, plus scripted NAT-dynamics scenarios ([`ScenarioScript`]) executed
//!   at round barriers.
//! * [`runner`] — the generic experiment driver: builds a NAT topology and a simulation for
//!   any [`PssNode`](croupier_simulator::PssNode) protocol, executes the scenario and
//!   samples metrics every round.
//! * [`protocols`] — constructors for the four systems under test (Croupier, Cyclon, Gozar,
//!   Nylon) behind a common [`ProtocolKind`] switch.
//! * [`output`] — figure/series containers and table rendering.
//! * [`figures`] — one module per paper figure.
//! * [`matrix`] — the scenario-matrix runner: canned NAT-dynamics scripts × protocols,
//!   with per-scenario JSON reports and a connectivity-recovery gate (the `scenario_matrix`
//!   binary and the CI `scenario-matrix` job drive it).
//!
//! ## Example: a miniature Figure 1
//!
//! ```
//! use croupier_experiments::figures::fig1_stable_ratio;
//! use croupier_experiments::output::Scale;
//!
//! // The tiny scale keeps doc tests fast; Scale::Paper reproduces the paper's population.
//! let figures = fig1_stable_ratio::run(Scale::Tiny);
//! assert_eq!(figures[0].id, "fig1a");
//! assert!(!figures[0].series.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figures;
pub mod matrix;
pub mod output;
pub mod protocols;
pub mod runner;
pub mod scenario;

pub use output::{FigureData, Scale, Series};
pub use protocols::ProtocolKind;
pub use runner::{ExperimentParams, RoundSample, RunOutput};
pub use scenario::{
    ChurnSpec, FaultAction, FaultEvent, JoinSchedule, NatDynamicsEvent, ScenarioAction,
    ScenarioExecutor, ScenarioScript,
};
