//! # croupier-experiments
//!
//! Workload generators and experiment runners that regenerate every figure of the Croupier
//! paper's evaluation (§VII). Each figure has a dedicated module under [`figures`] returning
//! a [`FigureData`] with the same series the paper plots; the `figures` binary prints them
//! as tables and the `croupier-bench` crate wraps them in Criterion benchmarks.
//!
//! The mapping between paper figures and modules is listed in `DESIGN.md` (per-experiment
//! index) and the measured outcomes are recorded in `EXPERIMENTS.md`.
//!
//! ## Structure
//!
//! * [`scenario`] — join schedules (Poisson arrivals), churn and catastrophic-failure
//!   specifications, plus scripted NAT-dynamics scenarios ([`ScenarioScript`]) executed
//!   at round barriers.
//! * [`runner`] — the generic experiment driver: builds a NAT topology and a simulation for
//!   any [`PssNode`](croupier_simulator::PssNode) protocol, executes the scenario and
//!   samples metrics every round.
//! * [`protocols`] — constructors for the four systems under test (Croupier, Cyclon, Gozar,
//!   Nylon) behind a common [`ProtocolKind`] switch.
//! * [`output`] — figure/series containers and table rendering.
//! * [`figures`] — one module per paper figure.
//! * [`matrix`] — the scenario-matrix runner: canned NAT-dynamics scripts × protocols,
//!   with per-scenario JSON reports and a connectivity-recovery gate (the `scenario_matrix`
//!   binary and the CI `scenario-matrix` job drive it), plus the workload tier (the
//!   `workload_matrix` binary and the CI `workload-matrix` job).
//! * [`workload`] — the streaming-dissemination workload engine: publishers, sampled
//!   push/pull chunk transfer through the NAT filter and fault plane, the per-chunk
//!   delivery tracker and its SLO gates (`DESIGN.md` §16).
//!
//! ## Example: a miniature Figure 1
//!
//! ```
//! use croupier_experiments::figures::fig1_stable_ratio;
//! use croupier_experiments::output::Scale;
//!
//! // The tiny scale keeps doc tests fast; Scale::Paper reproduces the paper's population.
//! let figures = fig1_stable_ratio::run(Scale::Tiny);
//! assert_eq!(figures[0].id, "fig1a");
//! assert!(!figures[0].series.is_empty());
//! ```
//!
//! ## Example: a custom experiment, scripted dynamics and a streaming workload
//!
//! [`ExperimentParams`] is the one knob-box every tier shares: population, rounds,
//! engine/metrics threading, an optional [`ScenarioScript`] applied at round barriers,
//! and an optional [`WorkloadSpec`] streaming chunks over the
//! sampled overlay while the dynamics play out. `run_pss` drives any
//! [`PssNode`](croupier_simulator::PssNode) protocol through it:
//!
//! ```
//! use croupier::{CroupierConfig, CroupierNode};
//! use croupier_experiments::runner::run_pss;
//! use croupier_experiments::workload::WorkloadSpec;
//! use croupier_experiments::{ExperimentParams, ScenarioScript};
//!
//! let params = ExperimentParams::default()
//!     .with_seed(7)
//!     .with_population(4, 12)          // 25% public, like the paper's harshest setting
//!     .with_rounds(12)
//!     .with_scenario(ScenarioScript::reboot_storm(12))
//!     .with_workload(
//!         WorkloadSpec::default()
//!             .with_window(2, 3)       // publish one chunk on rounds 2..=4
//!             .with_coverage_rounds(4) // seal (freeze coverage) 4 rounds later
//!     );
//! let output = run_pss(&params, |id, class, _| {
//!     CroupierNode::new(id, class, CroupierConfig::default())
//! });
//! let report = output.workload.expect("a workload was configured");
//! assert_eq!(report.chunks_published, 3);
//! assert!(report.coverage > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figures;
pub mod matrix;
pub mod output;
pub mod protocols;
pub mod runner;
pub mod scenario;
pub mod workload;

pub use output::{FigureData, Scale, Series};
pub use protocols::ProtocolKind;
pub use runner::{ExperimentParams, RoundSample, RunOutput};
pub use scenario::{
    ChurnSpec, FaultAction, FaultEvent, JoinSchedule, NatDynamicsEvent, ScenarioAction,
    ScenarioExecutor, ScenarioScript,
};
pub use workload::{WorkloadExecutor, WorkloadReport, WorkloadSlo, WorkloadSpec, WorkloadState};
