//! Command-line driver for the workload tier: a streaming dissemination workload rides
//! scripted NAT-dynamics scenarios for every peer-sampling protocol, with per-scenario
//! JSON reports and SLO gates.
//!
//! ```text
//! workload_matrix [--scale tiny|quick|paper|large|huge] [--seed N] [--out DIR]
//!                 [--protocols croupier,cyclon,gozar,nylon] [--scenarios a,b,...]
//! ```
//!
//! One `SCENARIO_<name>.json` is written per scenario into `--out` (default
//! `target/workload-json`). The process exits non-zero when croupier misses a declared
//! SLO — chunk coverage within the seal window, absolute p95 delivery latency, or the
//! p95 regression bound against the no-dynamics control — the CI `workload-matrix`
//! job's gate.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use croupier_experiments::matrix::{matrix_rounds, run_workload_matrix, WORKLOAD_TIER_NAMES};
use croupier_experiments::output::Scale;
use croupier_experiments::protocols::ProtocolKind;
use croupier_experiments::scenario::ScenarioScript;

const USAGE: &str = "usage: workload_matrix [--scale tiny|quick|paper|large|huge] [--seed N] \
                     [--out DIR] [--protocols a,b] [--scenarios x,y]\n\
                     scenarios: reboot_storm mobility_wave lossy_10 (default: all three); \
                     any scenario_matrix name is accepted";

struct Args {
    scale: Scale,
    seed: u64,
    out: PathBuf,
    protocols: Vec<ProtocolKind>,
    scenario_names: Vec<String>,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Tiny,
        seed: 42,
        out: PathBuf::from("target/workload-json"),
        protocols: ProtocolKind::ALL.to_vec(),
        scenario_names: WORKLOAD_TIER_NAMES.iter().map(|s| s.to_string()).collect(),
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--scale" => {
                let value = argv.next().ok_or("--scale requires a value")?;
                args.scale =
                    Scale::parse(&value).ok_or_else(|| format!("unknown scale '{value}'"))?;
            }
            "--seed" => {
                args.seed = argv
                    .next()
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|_| String::from("--seed must be an integer"))?;
            }
            "--out" => {
                args.out = PathBuf::from(argv.next().ok_or("--out requires a value")?);
            }
            "--protocols" => {
                let value = argv.next().ok_or("--protocols requires a value")?;
                args.protocols = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(|name| {
                        ProtocolKind::parse(name)
                            .ok_or_else(|| format!("unknown protocol '{name}'"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--scenarios" => {
                let value = argv.next().ok_or("--scenarios requires a value")?;
                args.scenario_names = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.protocols.is_empty() {
        return Err(String::from("no protocols selected"));
    }
    if args.scenario_names.is_empty() {
        return Err(String::from("no scenarios selected"));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(env::args().skip(1)) {
        Ok(args) => args,
        Err(err) => {
            eprintln!("{err}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let rounds = matrix_rounds(args.scale);
    let mut scenarios = Vec::new();
    for name in &args.scenario_names {
        match ScenarioScript::by_name(name, rounds) {
            Some(script) => scenarios.push(script),
            None => {
                eprintln!("unknown scenario '{name}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(err) = std::fs::create_dir_all(&args.out) {
        eprintln!("cannot create {}: {err}", args.out.display());
        return ExitCode::FAILURE;
    }
    let reports = run_workload_matrix(&scenarios, &args.protocols, args.scale, args.seed);
    let mut all_ok = true;
    for report in &reports {
        print!("{}", report.render_table());
        let path = args.out.join(format!("SCENARIO_{}.json", report.scenario));
        if let Err(err) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        println!("  wrote {}", path.display());
        if !report.croupier_slo_ok() {
            eprintln!(
                "  GATE: croupier missed a delivery SLO in '{}'",
                report.scenario
            );
            all_ok = false;
        }
    }
    if all_ok {
        println!("workload-matrix: croupier met every delivery SLO");
        ExitCode::SUCCESS
    } else {
        eprintln!("workload-matrix: at least one SLO gate failed");
        ExitCode::FAILURE
    }
}
