//! Command-line driver for the scenario matrix: scripted NAT-dynamics scenarios × the
//! four peer-sampling protocols, with per-scenario JSON reports and a recovery gate.
//!
//! ```text
//! scenario_matrix [--scale tiny|quick|paper|large|huge] [--seed N] [--out DIR]
//!                 [--protocols croupier,cyclon,gozar,nylon] [--scenarios a,b,...]
//! ```
//!
//! One `SCENARIO_<name>.json` is written per scenario into `--out` (default
//! `target/scenario-json`). The process exits non-zero when any protocol fails to
//! recover connectivity after the scripted disruption — the CI `scenario-matrix` job's
//! gate.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use croupier_experiments::matrix::{matrix_rounds, run_matrix};
use croupier_experiments::output::Scale;
use croupier_experiments::protocols::ProtocolKind;
use croupier_experiments::scenario::ScenarioScript;

const USAGE: &str = "usage: scenario_matrix [--scale tiny|quick|paper|large|huge] [--seed N] \
                     [--out DIR] [--protocols a,b] [--scenarios x,y]\n\
                     scenarios: reboot_storm mobility_wave nat_flux flash_crowd \
                     regional_outage croupier_stress symmetric_shift cgn_migration \
                     lossy_10 burst_loss dup_reorder (default: all)";

struct Args {
    scale: Scale,
    seed: u64,
    out: PathBuf,
    protocols: Vec<ProtocolKind>,
    scenario_names: Vec<String>,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Tiny,
        seed: 42,
        out: PathBuf::from("target/scenario-json"),
        protocols: ProtocolKind::ALL.to_vec(),
        scenario_names: ScenarioScript::MATRIX_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--scale" => {
                let value = argv.next().ok_or("--scale requires a value")?;
                args.scale =
                    Scale::parse(&value).ok_or_else(|| format!("unknown scale '{value}'"))?;
            }
            "--seed" => {
                args.seed = argv
                    .next()
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|_| String::from("--seed must be an integer"))?;
            }
            "--out" => {
                args.out = PathBuf::from(argv.next().ok_or("--out requires a value")?);
            }
            "--protocols" => {
                let value = argv.next().ok_or("--protocols requires a value")?;
                args.protocols = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(|name| {
                        ProtocolKind::parse(name)
                            .ok_or_else(|| format!("unknown protocol '{name}'"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--scenarios" => {
                let value = argv.next().ok_or("--scenarios requires a value")?;
                args.scenario_names = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.protocols.is_empty() {
        return Err(String::from("no protocols selected"));
    }
    if args.scenario_names.is_empty() {
        return Err(String::from("no scenarios selected"));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(env::args().skip(1)) {
        Ok(args) => args,
        Err(err) => {
            eprintln!("{err}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let rounds = matrix_rounds(args.scale);
    let mut scenarios = Vec::new();
    for name in &args.scenario_names {
        match ScenarioScript::by_name(name, rounds) {
            Some(script) => scenarios.push(script),
            None => {
                eprintln!("unknown scenario '{name}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(err) = std::fs::create_dir_all(&args.out) {
        eprintln!("cannot create {}: {err}", args.out.display());
        return ExitCode::FAILURE;
    }
    let reports = run_matrix(&scenarios, &args.protocols, args.scale, args.seed);
    let mut all_ok = true;
    for report in &reports {
        print!("{}", report.render_table());
        let path = args.out.join(format!("SCENARIO_{}.json", report.scenario));
        if let Err(err) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        println!("  wrote {}", path.display());
        if !report.all_recovered() {
            eprintln!(
                "  GATE: a protocol failed to recover connectivity in '{}'",
                report.scenario
            );
            all_ok = false;
        }
        if !report.croupier_gini_ok() {
            eprintln!(
                "  GATE: croupier's in-degree Gini degraded more than the baselines' in '{}'",
                report.scenario
            );
            all_ok = false;
        }
    }
    if all_ok {
        println!("scenario-matrix: every protocol recovered connectivity");
        ExitCode::SUCCESS
    } else {
        eprintln!("scenario-matrix: at least one gate failed");
        ExitCode::FAILURE
    }
}
