//! Command-line driver that regenerates the paper's figures as plain-text tables.
//!
//! ```text
//! figures [--scale tiny|quick|paper|large|huge] [--json] [fig1 fig2 ... fig7a fig7b | all]
//! ```
//!
//! At the `paper` scale the populations and durations match §VII of the paper; the smaller
//! scales are proportionally reduced for quick runs, and `large` goes 20× beyond the paper
//! on the sharded phase-parallel engine. Output goes to stdout.

use std::env;
use std::process::ExitCode;

use croupier_experiments::figures::{
    fig1_stable_ratio, fig2_dynamic_ratio, fig3_system_size, fig4_ratio_sweep, fig5_churn,
    fig6_randomness, fig7_overhead, fig8_failure,
};
use croupier_experiments::output::{FigureData, Scale};

const USAGE: &str = "usage: figures [--scale tiny|quick|paper|large|huge] [--json] [FIGURE ...]\n\
                     figures: fig1 fig2 fig3 fig4 fig5 fig6 fig7a fig7b all (default: all)";

fn run_figure(name: &str, scale: Scale) -> Option<Vec<FigureData>> {
    match name {
        "fig1" => Some(fig1_stable_ratio::run(scale)),
        "fig2" => Some(fig2_dynamic_ratio::run(scale)),
        "fig3" => Some(fig3_system_size::run(scale)),
        "fig4" => Some(fig4_ratio_sweep::run(scale)),
        "fig5" => Some(fig5_churn::run(scale)),
        "fig6" => Some(fig6_randomness::run(scale)),
        "fig7a" => Some(fig7_overhead::run(scale)),
        "fig7b" => Some(fig8_failure::run(scale)),
        _ => None,
    }
}

const ALL_FIGURES: [&str; 8] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7a", "fig7b",
];

fn main() -> ExitCode {
    let mut scale = Scale::Quick;
    let mut as_json = false;
    let mut requested: Vec<String> = Vec::new();

    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(value) = args.next() else {
                    eprintln!("--scale requires a value\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                match Scale::parse(&value) {
                    Some(parsed) => scale = parsed,
                    None => {
                        eprintln!("unknown scale '{value}'\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--json" => as_json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
            other => requested.push(other.to_string()),
        }
    }

    if requested.is_empty() || requested.iter().any(|r| r == "all") {
        requested = ALL_FIGURES.iter().map(|s| s.to_string()).collect();
    }

    for name in &requested {
        let Some(figures) = run_figure(name, scale) else {
            eprintln!("unknown figure '{name}'\n{USAGE}");
            return ExitCode::FAILURE;
        };
        for figure in figures {
            if as_json {
                println!("{}", figure.to_json());
            } else {
                println!("{}", figure.render_table());
            }
        }
    }
    ExitCode::SUCCESS
}
