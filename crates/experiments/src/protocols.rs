//! The four systems under test, behind a common switch.

use croupier::{CroupierConfig, CroupierNode};
use croupier_baselines::{BaselineConfig, CyclonNode, GozarNode, NylonNode};
use serde::{Deserialize, Serialize};

use crate::runner::{run_failure, run_pss, ExperimentParams, RunOutput};

/// The peer-sampling protocols compared in the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Croupier — the paper's contribution (NAT-aware, no relaying, no hole punching).
    Croupier,
    /// Cyclon — NAT-oblivious baseline for randomness.
    Cyclon,
    /// Gozar — NAT-aware baseline using one-hop relaying.
    Gozar,
    /// Nylon — NAT-aware baseline using hole punching through rendezvous chains.
    Nylon,
}

impl ProtocolKind {
    /// All protocols, in the order the paper lists them.
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::Croupier,
        ProtocolKind::Gozar,
        ProtocolKind::Nylon,
        ProtocolKind::Cyclon,
    ];

    /// The NAT-aware protocols (everything except Cyclon).
    pub const NAT_AWARE: [ProtocolKind; 3] = [
        ProtocolKind::Croupier,
        ProtocolKind::Gozar,
        ProtocolKind::Nylon,
    ];

    /// Lower-case name used in figure legends.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Croupier => "croupier",
            ProtocolKind::Cyclon => "cyclon",
            ProtocolKind::Gozar => "gozar",
            ProtocolKind::Nylon => "nylon",
        }
    }

    /// Parses a protocol name.
    pub fn parse(text: &str) -> Option<ProtocolKind> {
        match text.to_ascii_lowercase().as_str() {
            "croupier" => Some(ProtocolKind::Croupier),
            "cyclon" => Some(ProtocolKind::Cyclon),
            "gozar" => Some(ProtocolKind::Gozar),
            "nylon" => Some(ProtocolKind::Nylon),
            _ => None,
        }
    }

    /// Returns `true` if the protocol handles NATed nodes (Cyclon does not, which is why
    /// the paper evaluates it on all-public populations).
    pub fn is_nat_aware(self) -> bool {
        !matches!(self, ProtocolKind::Cyclon)
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Protocol configurations used by an experiment (identical view and shuffle sizes across
/// systems, per §VII-A).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProtocolConfigs {
    /// Configuration of Croupier nodes.
    pub croupier: CroupierConfig,
    /// Configuration of the baseline protocols.
    pub baseline: BaselineConfig,
}

/// Runs an experiment with the given protocol.
///
/// For Cyclon the experiment should normally use an all-public population
/// (`params.n_private == 0`), matching the paper's setup; this function does not enforce
/// it so that ablation experiments can also measure how Cyclon degrades behind NATs.
pub fn run_kind(
    kind: ProtocolKind,
    params: &ExperimentParams,
    configs: &ProtocolConfigs,
) -> RunOutput {
    match kind {
        ProtocolKind::Croupier => {
            let config = configs.croupier.clone();
            run_pss(params, move |id, class, _| {
                CroupierNode::new(id, class, config.clone())
            })
        }
        ProtocolKind::Cyclon => {
            let config = configs.baseline.clone();
            run_pss(params, move |id, _, _| CyclonNode::new(id, config.clone()))
        }
        ProtocolKind::Gozar => {
            let config = configs.baseline.clone();
            run_pss(params, move |id, class, _| {
                GozarNode::new(id, class, config.clone())
            })
        }
        ProtocolKind::Nylon => {
            let config = configs.baseline.clone();
            run_pss(params, move |id, class, _| {
                NylonNode::new(id, class, config.clone())
            })
        }
    }
}

/// Runs a catastrophic-failure experiment with the given protocol, returning the fraction
/// of surviving nodes in the largest connected cluster.
pub fn run_failure_kind(
    kind: ProtocolKind,
    params: &ExperimentParams,
    configs: &ProtocolConfigs,
    failure_fraction: f64,
) -> f64 {
    match kind {
        ProtocolKind::Croupier => {
            let config = configs.croupier.clone();
            run_failure(
                params,
                move |id, class, _| CroupierNode::new(id, class, config.clone()),
                failure_fraction,
            )
        }
        ProtocolKind::Cyclon => {
            let config = configs.baseline.clone();
            run_failure(
                params,
                move |id, _, _| CyclonNode::new(id, config.clone()),
                failure_fraction,
            )
        }
        ProtocolKind::Gozar => {
            let config = configs.baseline.clone();
            run_failure(
                params,
                move |id, class, _| GozarNode::new(id, class, config.clone()),
                failure_fraction,
            )
        }
        ProtocolKind::Nylon => {
            let config = configs.baseline.clone();
            run_failure(
                params,
                move |id, class, _| NylonNode::new(id, class, config.clone()),
                failure_fraction,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentParams {
        ExperimentParams::default()
            .with_population(6, 24)
            .with_rounds(30)
            .with_sample_every(5)
    }

    #[test]
    fn names_and_parsing_round_trip() {
        for kind in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(ProtocolKind::parse("bogus"), None);
        assert!(ProtocolKind::Croupier.is_nat_aware());
        assert!(!ProtocolKind::Cyclon.is_nat_aware());
        assert_eq!(ProtocolKind::NAT_AWARE.len(), 3);
    }

    #[test]
    fn every_protocol_runs_under_the_generic_driver() {
        let configs = ProtocolConfigs::default();
        for kind in ProtocolKind::ALL {
            let params = if kind == ProtocolKind::Cyclon {
                tiny().with_population(30, 0)
            } else {
                tiny()
            };
            let out = run_kind(kind, &params, &configs);
            assert!(!out.samples.is_empty(), "{kind} produced no samples");
            assert_eq!(out.last_sample().unwrap().node_count, 30, "{kind}");
        }
    }

    #[test]
    fn failure_runs_for_every_protocol() {
        let configs = ProtocolConfigs::default();
        for kind in ProtocolKind::NAT_AWARE {
            let fraction = run_failure_kind(kind, &tiny(), &configs, 0.4);
            assert!(
                (0.0..=1.0).contains(&fraction),
                "{kind} returned {fraction}"
            );
        }
    }
}
