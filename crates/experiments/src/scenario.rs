//! Workload descriptions: join schedules, churn, catastrophic failure, and scripted
//! NAT-dynamics scenarios.
//!
//! The scripted scenarios are the dynamic counterpart of the static `NatTopology`
//! bootstrap: a [`ScenarioScript`] is a deterministic, seeded timeline of NAT-environment
//! events — gateway reboots wiping binding tables, node mobility, NAT-profile
//! upgrades/downgrades, per-gateway filtering-policy shifts, flash-crowd join bursts and
//! correlated regional outages. A [`ScenarioExecutor`] applies the script through the
//! engines' [`RoundHook`] at round barriers, which keeps sharded runs bit-identical
//! across worker-thread counts (see `DESIGN.md` §11).

use croupier_nat::{FilteringPolicy, NatTopology};
use croupier_simulator::{FaultPlane, FaultProfile, NatClass, NodeId, RoundHook, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Continuous churn, as in §VII-B of the paper: every round a fixed fraction of randomly
/// selected nodes leaves and is immediately replaced by freshly initialised nodes of the
/// same class, keeping the public/private ratio stable.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// First round in which churn is applied.
    pub start_round: u64,
    /// Fraction of the population replaced per round (0.001 = 0.1 %).
    pub fraction_per_round: f64,
}

impl ChurnSpec {
    /// Creates a churn specification.
    ///
    /// # Panics
    ///
    /// Panics if `fraction_per_round` is not within `[0, 1]`.
    pub fn new(start_round: u64, fraction_per_round: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction_per_round),
            "churn fraction must be within [0, 1]"
        );
        ChurnSpec {
            start_round,
            fraction_per_round,
        }
    }
}

/// A node arrival: when it joins and with which connectivity class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinEvent {
    /// Join time.
    pub at: SimTime,
    /// Connectivity class of the joining node.
    pub class: NatClass,
}

/// A complete join schedule: a time-ordered list of [`JoinEvent`]s.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct JoinSchedule {
    events: Vec<JoinEvent>,
}

impl JoinSchedule {
    /// Builds the paper's join workload: `n_public` public and `n_private` private nodes
    /// join concurrently, each class following a Poisson process with the given mean
    /// inter-arrival time in milliseconds (§VII-B uses 50 ms for public and 12.5 ms for
    /// private nodes).
    pub fn poisson(
        n_public: usize,
        public_interarrival_ms: f64,
        n_private: usize,
        private_interarrival_ms: f64,
        rng: &mut SmallRng,
    ) -> Self {
        let mut events = Vec::with_capacity(n_public + n_private);
        let mut clock = 0.0f64;
        for _ in 0..n_public {
            clock += exponential(public_interarrival_ms, rng);
            events.push(JoinEvent {
                at: SimTime::from_millis(clock.round() as u64),
                class: NatClass::Public,
            });
        }
        clock = 0.0;
        for _ in 0..n_private {
            clock += exponential(private_interarrival_ms, rng);
            events.push(JoinEvent {
                at: SimTime::from_millis(clock.round() as u64),
                class: NatClass::Private,
            });
        }
        events.sort_by_key(|e| e.at);
        JoinSchedule { events }
    }

    /// Builds a schedule where every node joins at time zero; useful for unit tests.
    pub fn immediate(n_public: usize, n_private: usize) -> Self {
        let mut events = Vec::with_capacity(n_public + n_private);
        for _ in 0..n_public {
            events.push(JoinEvent {
                at: SimTime::ZERO,
                class: NatClass::Public,
            });
        }
        for _ in 0..n_private {
            events.push(JoinEvent {
                at: SimTime::ZERO,
                class: NatClass::Private,
            });
        }
        JoinSchedule { events }
    }

    /// Appends a burst of `count` joins of `class`, evenly spaced by `interarrival_ms`
    /// starting at `start` — used by the dynamic-ratio experiment (Fig. 2), which adds a new
    /// public node every 42 ms once the system is stable.
    pub fn append_growth(
        &mut self,
        start: SimTime,
        count: usize,
        interarrival_ms: f64,
        class: NatClass,
    ) {
        for i in 0..count {
            let offset = (i as f64 * interarrival_ms).round() as u64;
            self.events.push(JoinEvent {
                at: SimTime::from_millis(start.as_millis() + offset),
                class,
            });
        }
        self.events.sort_by_key(|e| e.at);
    }

    /// Merges extra join events (e.g. a scripted flash crowd) into the schedule, keeping
    /// it time-ordered.
    pub fn extend(&mut self, events: impl IntoIterator<Item = JoinEvent>) {
        self.events.extend(events);
        self.events.sort_by_key(|e| e.at);
    }

    /// The scheduled events, in time order.
    pub fn events(&self) -> &[JoinEvent] {
        &self.events
    }

    /// Number of scheduled joins.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when no join is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the last join.
    pub fn last_join(&self) -> Option<SimTime> {
        self.events.last().map(|e| e.at)
    }

    /// Counts of (public, private) joins in the schedule.
    pub fn class_counts(&self) -> (usize, usize) {
        let public = self.events.iter().filter(|e| e.class.is_public()).count();
        (public, self.events.len() - public)
    }
}

/// Samples an exponentially distributed inter-arrival time with the given mean.
fn exponential(mean_ms: f64, rng: &mut SmallRng) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean_ms * u.ln()
}

// The event vocabulary lives in the nat crate, next to the topology it mutates
// (`NatTopology::apply` is the single event→mutation dispatcher); re-exported here so
// script authors keep importing everything scenario-related from one module.
pub use croupier_nat::{GatewayProfile, NatDynamicsEvent};

/// A [`NatDynamicsEvent`] scheduled at a round barrier.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioAction {
    /// The round barrier (1-based) at which the event applies.
    pub round: u64,
    /// The event.
    pub event: NatDynamicsEvent,
}

/// A scripted change to the message-plane fault injector — the network-quality
/// counterpart of the NAT-dynamics vocabulary. Fault events mutate the engine's
/// [`FaultPlane`] rather than the topology, so they model datagram-level pathologies
/// (loss, bursts, duplication, reordering, corruption) instead of reachability changes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Replaces the plane's default profile, applied to every link from this barrier on.
    FaultProfileChange {
        /// The profile every delivery is judged against.
        profile: FaultProfile,
    },
    /// Degrades a random `fraction` of the population: every message *to or from* a
    /// selected node is judged against `profile` instead of the plane's default. Models
    /// congested access links and flaky last-mile gateways.
    LinkDegradation {
        /// Fraction of nodes whose links degrade (each node drawn independently).
        fraction: f64,
        /// The profile applied on degraded links.
        profile: FaultProfile,
    },
    /// Deactivates the plane: injection stops, counters and RNG position are kept.
    FaultClear,
}

/// A [`FaultEvent`] scheduled at a round barrier.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultAction {
    /// The round barrier (1-based) at which the event applies.
    pub round: u64,
    /// The event.
    pub event: FaultEvent,
}

/// A deterministic, seeded timeline of NAT-dynamics events.
///
/// Scripts are declarative data: building one performs no randomness and touches no
/// topology. All random choices (which gateways reboot, which nodes migrate) are drawn by
/// the [`ScenarioExecutor`] from a dedicated RNG stream at execution time, so a script is
/// reusable across seeds and scales.
///
/// # Examples
///
/// ```
/// use croupier_experiments::scenario::{NatDynamicsEvent, ScenarioScript};
///
/// let script = ScenarioScript::new("reboot-then-outage")
///     .at(10, NatDynamicsEvent::GatewayRebootStorm { fraction: 0.5 })
///     .at(
///         15,
///         NatDynamicsEvent::RegionalOutage {
///             region: 0,
///             regions: 4,
///             outage_rounds: 3,
///         },
///     );
/// assert_eq!(script.len(), 2);
/// assert_eq!(script.last_action_round(), Some(15));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ScenarioScript {
    name: String,
    actions: Vec<ScenarioAction>,
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    fault_actions: Vec<FaultAction>,
}

fn assert_fraction(fraction: f64, what: &str) {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "{what} must be within [0, 1], got {fraction}"
    );
}

impl ScenarioScript {
    /// Creates an empty script.
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioScript {
            name: name.into(),
            actions: Vec::new(),
            fault_actions: Vec::new(),
        }
    }

    /// The script's name (used in report file names and figure legends).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Schedules `event` at round barrier `round` (builder style). Actions are kept
    /// sorted by round; same-round actions apply in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if the event's parameters are out of range (fractions outside `[0, 1]`,
    /// `region >= regions`, zero `regions` or `outage_rounds`).
    pub fn at(mut self, round: u64, event: NatDynamicsEvent) -> Self {
        match event {
            NatDynamicsEvent::GatewayRebootStorm { fraction } => {
                assert_fraction(fraction, "reboot fraction");
            }
            NatDynamicsEvent::MobilityWave { fraction } => {
                assert_fraction(fraction, "mobility fraction");
            }
            NatDynamicsEvent::ProfileUpgrade { fraction } => {
                assert_fraction(fraction, "upgrade fraction");
            }
            NatDynamicsEvent::ProfileDowngrade { fraction } => {
                assert_fraction(fraction, "downgrade fraction");
            }
            NatDynamicsEvent::FilteringShift { fraction, .. } => {
                assert_fraction(fraction, "filtering-shift fraction");
            }
            NatDynamicsEvent::GatewayReconfig { fraction, .. } => {
                assert_fraction(fraction, "gateway-reconfig fraction");
            }
            NatDynamicsEvent::CgnConsolidation {
                fraction,
                pool_size,
            } => {
                assert_fraction(fraction, "CGN-consolidation fraction");
                assert!(pool_size > 0, "CGN pool must hold at least one address");
            }
            NatDynamicsEvent::RegionalOutage {
                region,
                regions,
                outage_rounds,
            } => {
                assert!(regions > 0, "regions must be positive");
                assert!(region < regions, "region {region} out of {regions}");
                assert!(outage_rounds > 0, "outage must last at least one round");
            }
            NatDynamicsEvent::FlashCrowd {
                growth,
                public_fraction,
            } => {
                assert!(
                    growth.is_finite() && growth >= 0.0,
                    "flash-crowd growth must be non-negative"
                );
                assert_fraction(public_fraction, "flash-crowd public fraction");
            }
            // `NatDynamicsEvent` is non-exhaustive: future event kinds carry their own
            // invariants and validate inside `NatTopology::apply`.
            _ => {}
        }
        self.actions.push(ScenarioAction { round, event });
        self.actions.sort_by_key(|a| a.round);
        self
    }

    /// Schedules a fault-plane `event` at round barrier `round` (builder style). Fault
    /// actions are kept sorted by round; same-round actions apply in insertion order,
    /// after the barrier's NAT-dynamics actions.
    ///
    /// # Panics
    ///
    /// Panics if a [`LinkDegradation`](FaultEvent::LinkDegradation) fraction is outside
    /// `[0, 1]` or a profile carries an out-of-range probability.
    pub fn fault_at(mut self, round: u64, event: FaultEvent) -> Self {
        match &event {
            FaultEvent::FaultProfileChange { profile } => profile.validate(),
            FaultEvent::LinkDegradation { fraction, profile } => {
                assert_fraction(*fraction, "link-degradation fraction");
                profile.validate();
            }
            FaultEvent::FaultClear => {}
        }
        self.fault_actions.push(FaultAction { round, event });
        self.fault_actions.sort_by_key(|a| a.round);
        self
    }

    /// The scheduled actions, sorted by round.
    pub fn actions(&self) -> &[ScenarioAction] {
        &self.actions
    }

    /// The scheduled fault-plane actions, sorted by round.
    pub fn fault_actions(&self) -> &[FaultAction] {
        &self.fault_actions
    }

    /// Returns `true` when the script drives the fault plane — runners use this to pick
    /// the fault-tier recovery gate instead of the clean-network one.
    pub fn has_fault_actions(&self) -> bool {
        !self.fault_actions.is_empty()
    }

    /// A copy of this script with every fault action stripped (NAT dynamics kept): the
    /// no-fault control run the matrix Gini gate measures degradation against.
    pub fn without_faults(&self) -> Self {
        ScenarioScript {
            name: self.name.clone(),
            actions: self.actions.clone(),
            fault_actions: Vec::new(),
        }
    }

    /// Number of scheduled actions (NAT dynamics and fault plane combined).
    pub fn len(&self) -> usize {
        self.actions.len() + self.fault_actions.len()
    }

    /// Returns `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty() && self.fault_actions.is_empty()
    }

    /// Round of the last scheduled action, if any.
    pub fn last_action_round(&self) -> Option<u64> {
        let nat = self.actions.last().map(|a| a.round);
        let fault = self.fault_actions.last().map(|a| a.round);
        nat.max(fault)
    }

    /// Round of the first disruptive action, if any. Flash crowds add capacity rather
    /// than remove it and a [`FaultClear`](FaultEvent::FaultClear) restores a healthy
    /// network, so neither counts as a disruption for recovery detection.
    pub fn first_disruption_round(&self) -> Option<u64> {
        let nat = self
            .actions
            .iter()
            .find(|a| !matches!(a.event, NatDynamicsEvent::FlashCrowd { .. }))
            .map(|a| a.round);
        let fault = self
            .fault_actions
            .iter()
            .find(|a| !matches!(a.event, FaultEvent::FaultClear))
            .map(|a| a.round);
        match (nat, fault) {
            (Some(n), Some(f)) => Some(n.min(f)),
            (n, f) => n.or(f),
        }
    }

    /// Round at which the last scripted regional outage has been restored (actions and
    /// restores included), or the last action round for scripts without outages. Runs
    /// should extend beyond this round for recovery to be observable.
    pub fn settled_round(&self) -> Option<u64> {
        let nat = self
            .actions
            .iter()
            .map(|a| match a.event {
                NatDynamicsEvent::RegionalOutage { outage_rounds, .. } => a.round + outage_rounds,
                _ => a.round,
            })
            .max();
        let fault = self.fault_actions.iter().map(|a| a.round).max();
        nat.max(fault)
    }

    /// Expands the script's [`FlashCrowd`](NatDynamicsEvent::FlashCrowd) actions into
    /// join events, spread evenly over the round following each action.
    /// `initial_population` anchors the growth fractions; `round_ms` is the gossip round
    /// period in milliseconds.
    pub fn flash_crowd_joins(&self, initial_population: usize, round_ms: u64) -> Vec<JoinEvent> {
        let mut events = Vec::new();
        for action in &self.actions {
            let NatDynamicsEvent::FlashCrowd {
                growth,
                public_fraction,
            } = action.event
            else {
                continue;
            };
            let count = ((initial_population as f64) * growth).round() as usize;
            if count == 0 {
                continue;
            }
            let n_public = ((count as f64) * public_fraction).round() as usize;
            let start = action.round.saturating_mul(round_ms);
            let step = (round_ms as f64) / (count as f64 + 1.0);
            // Clamp offsets to [1, round_ms - 1]: at very large counts the rounded step
            // degenerates to zero (first joiners would land on the action's own barrier)
            // and rounding can push the last joiners onto the *next* barrier — events at
            // a barrier instant belong to the following round in both engines, so either
            // edge would leak joins out of the documented window.
            let max_offset = round_ms.saturating_sub(1).max(1);
            for i in 0..count {
                let offset = (((i as f64 + 1.0) * step).round() as u64).clamp(1, max_offset);
                let at = SimTime::from_millis(start + offset);
                let class = if i < n_public {
                    NatClass::Public
                } else {
                    NatClass::Private
                };
                events.push(JoinEvent { at, class });
            }
        }
        events
    }
}

/// The canned scenario library behind the scenario-matrix runner. Disruptions land
/// around the midpoint of a `rounds`-round run so every script leaves room to recover.
impl ScenarioScript {
    /// Names of the scripts in [`matrix`](Self::matrix) order. The last three are the
    /// fault tier: they drive the engines' [`FaultPlane`] instead of the topology.
    pub const MATRIX_NAMES: [&'static str; 11] = [
        "reboot_storm",
        "mobility_wave",
        "nat_flux",
        "flash_crowd",
        "regional_outage",
        "croupier_stress",
        "symmetric_shift",
        "cgn_migration",
        "lossy_10",
        "burst_loss",
        "dup_reorder",
    ];

    fn mid(rounds: u64) -> u64 {
        (rounds / 2).max(1)
    }

    /// A reboot storm: every gateway power-cycles at once, and half of them again an
    /// eighth of the run later (modelled on the binding-wiping reboots of the zerotier
    /// NAT-emulation suite).
    pub fn reboot_storm(rounds: u64) -> Self {
        let mid = Self::mid(rounds);
        ScenarioScript::new("reboot_storm")
            .at(mid, NatDynamicsEvent::GatewayRebootStorm { fraction: 1.0 })
            .at(
                mid + (rounds / 8).max(1),
                NatDynamicsEvent::GatewayRebootStorm { fraction: 0.5 },
            )
    }

    /// Two waves of node mobility: 40 % of private nodes hop networks, twice.
    pub fn mobility_wave(rounds: u64) -> Self {
        let mid = Self::mid(rounds);
        ScenarioScript::new("mobility_wave")
            .at(mid, NatDynamicsEvent::MobilityWave { fraction: 0.4 })
            .at(
                mid + (rounds / 8).max(1),
                NatDynamicsEvent::MobilityWave { fraction: 0.4 },
            )
    }

    /// NAT-profile flux: a carrier-grade-NAT rollout demotes 30 % of the public nodes,
    /// an upgrade wave later promotes 30 % of the private ones, and the surviving
    /// gateways tighten to address-and-port-dependent filtering.
    pub fn nat_flux(rounds: u64) -> Self {
        let mid = Self::mid(rounds);
        let eighth = (rounds / 8).max(1);
        ScenarioScript::new("nat_flux")
            .at(mid, NatDynamicsEvent::ProfileDowngrade { fraction: 0.3 })
            .at(
                mid + eighth,
                NatDynamicsEvent::ProfileUpgrade { fraction: 0.3 },
            )
            .at(
                mid + 2 * eighth,
                NatDynamicsEvent::FilteringShift {
                    fraction: 1.0,
                    policy: FilteringPolicy::AddressAndPortDependent,
                },
            )
    }

    /// A flash crowd: half the initial population joins within one round, 20 % public.
    pub fn flash_crowd(rounds: u64) -> Self {
        ScenarioScript::new("flash_crowd").at(
            Self::mid(rounds),
            NatDynamicsEvent::FlashCrowd {
                growth: 0.5,
                public_fraction: 0.2,
            },
        )
    }

    /// A correlated regional outage: a quarter of the population (one of four id-striped
    /// regions) goes dark for a tenth of the run, then comes back.
    pub fn regional_outage(rounds: u64) -> Self {
        ScenarioScript::new("regional_outage").at(
            Self::mid(rounds),
            NatDynamicsEvent::RegionalOutage {
                region: 0,
                regions: 4,
                outage_rounds: (rounds / 10).max(2),
            },
        )
    }

    /// The combined stress used by the determinism gate: a reboot storm, a mobility wave
    /// two rounds later, and a regional outage on top.
    pub fn croupier_stress(rounds: u64) -> Self {
        let mid = Self::mid(rounds);
        ScenarioScript::new("croupier_stress")
            .at(mid, NatDynamicsEvent::GatewayRebootStorm { fraction: 0.75 })
            .at(mid + 2, NatDynamicsEvent::MobilityWave { fraction: 0.3 })
            .at(
                mid + (rounds / 8).max(1),
                NatDynamicsEvent::RegionalOutage {
                    region: 1,
                    regions: 4,
                    outage_rounds: (rounds / 10).max(2),
                },
            )
    }

    /// A firmware wave turning half the gateways "symmetric"
    /// ([`GatewayProfile::Symmetric`]: address-and-port-dependent mapping *and*
    /// filtering, no hairpinning, no port preservation), then a partial rollback to
    /// full-cone an eighth of the run later — the RFC-4787 fidelity stress: observed
    /// endpoints stop transferring between peers mid-run.
    pub fn symmetric_shift(rounds: u64) -> Self {
        let mid = Self::mid(rounds);
        ScenarioScript::new("symmetric_shift")
            .at(
                mid,
                NatDynamicsEvent::GatewayReconfig {
                    fraction: 0.5,
                    profile: GatewayProfile::Symmetric,
                },
            )
            .at(
                mid + (rounds / 8).max(1),
                NatDynamicsEvent::GatewayReconfig {
                    fraction: 0.25,
                    profile: GatewayProfile::FullCone,
                },
            )
    }

    /// An ISP consolidation: 40 % of the private nodes are moved behind one shared
    /// carrier-grade NAT with a four-address pool (paired pooling, address-dependent on
    /// both axes, hairpinning on so consolidated customers still reach each other).
    pub fn cgn_migration(rounds: u64) -> Self {
        ScenarioScript::new("cgn_migration").at(
            Self::mid(rounds),
            NatDynamicsEvent::CgnConsolidation {
                fraction: 0.4,
                pool_size: 4,
            },
        )
    }

    /// Uniform 10 % datagram loss from the midpoint, with a fifth of the population
    /// additionally degraded to 30 % loss (congested access links); the faults clear an
    /// eighth of the run later so recovery is observable.
    pub fn lossy_10(rounds: u64) -> Self {
        let mid = Self::mid(rounds);
        let clear = mid + (rounds / 8).max(2);
        ScenarioScript::new("lossy_10")
            .fault_at(
                mid,
                FaultEvent::FaultProfileChange {
                    profile: FaultProfile::lossy(0.10),
                },
            )
            .fault_at(
                mid,
                FaultEvent::LinkDegradation {
                    fraction: 0.2,
                    profile: FaultProfile::lossy(0.30),
                },
            )
            .fault_at(clear, FaultEvent::FaultClear)
    }

    /// Gilbert–Elliott correlated loss bursts from the midpoint (2 % good-state, 75 %
    /// bad-state loss), cleared an eighth of the run later — the correlated-loss stress
    /// that independent-drop models miss.
    pub fn burst_loss(rounds: u64) -> Self {
        let mid = Self::mid(rounds);
        let clear = mid + (rounds / 8).max(2);
        ScenarioScript::new("burst_loss")
            .fault_at(
                mid,
                FaultEvent::FaultProfileChange {
                    profile: FaultProfile::burst_loss(),
                },
            )
            .fault_at(clear, FaultEvent::FaultClear)
    }

    /// Duplication, bounded reordering delay spikes and payload corruption from the
    /// midpoint, cleared an eighth of the run later — exercises idempotence of the
    /// protocols' receive paths rather than their loss tolerance.
    pub fn dup_reorder(rounds: u64) -> Self {
        let mid = Self::mid(rounds);
        let clear = mid + (rounds / 8).max(2);
        ScenarioScript::new("dup_reorder")
            .fault_at(
                mid,
                FaultEvent::FaultProfileChange {
                    profile: FaultProfile::dup_reorder(),
                },
            )
            .fault_at(clear, FaultEvent::FaultClear)
    }

    /// A copy of this script whose flash crowds join all-public, other events unchanged
    /// — for cells running a NAT-oblivious protocol (Cyclon) on an all-public
    /// population, so a scripted join burst does not smuggle in the NATed nodes the
    /// cell's setup deliberately excludes.
    pub fn with_public_flash_crowds(&self) -> Self {
        let mut script = ScenarioScript::new(self.name.clone());
        for action in &self.actions {
            let event = match action.event {
                NatDynamicsEvent::FlashCrowd { growth, .. } => NatDynamicsEvent::FlashCrowd {
                    growth,
                    public_fraction: 1.0,
                },
                other => other,
            };
            script = script.at(action.round, event);
        }
        script.fault_actions = self.fault_actions.clone();
        script
    }

    /// Builds the canned script `name` for a `rounds`-round run.
    pub fn by_name(name: &str, rounds: u64) -> Option<Self> {
        match name {
            "reboot_storm" => Some(Self::reboot_storm(rounds)),
            "mobility_wave" => Some(Self::mobility_wave(rounds)),
            "nat_flux" => Some(Self::nat_flux(rounds)),
            "flash_crowd" => Some(Self::flash_crowd(rounds)),
            "regional_outage" => Some(Self::regional_outage(rounds)),
            "croupier_stress" => Some(Self::croupier_stress(rounds)),
            "symmetric_shift" => Some(Self::symmetric_shift(rounds)),
            "cgn_migration" => Some(Self::cgn_migration(rounds)),
            "lossy_10" => Some(Self::lossy_10(rounds)),
            "burst_loss" => Some(Self::burst_loss(rounds)),
            "dup_reorder" => Some(Self::dup_reorder(rounds)),
            _ => None,
        }
    }

    /// The full canned matrix for a `rounds`-round run, in [`MATRIX_NAMES`] order.
    ///
    /// [`MATRIX_NAMES`]: Self::MATRIX_NAMES
    pub fn matrix(rounds: u64) -> Vec<Self> {
        Self::MATRIX_NAMES
            .iter()
            .map(|name| Self::by_name(name, rounds).expect("canned script"))
            .collect()
    }
}

/// Executes a [`ScenarioScript`] against a [`NatTopology`] at round barriers.
///
/// Installed into an engine as its [`RoundHook`]; the engines call it on the
/// coordinating thread only, after the barrier's canonical merge, so every mutation —
/// and every RNG draw deciding who is affected — happens at a globally fixed point and
/// sharded runs stay bit-identical across worker-thread counts. Selection draws one
/// uniform variate per candidate node in ascending id order, so the draw sequence
/// depends only on the script and the population, never on engine internals.
pub struct ScenarioExecutor {
    topology: NatTopology,
    actions: Vec<ScenarioAction>,
    next_action: usize,
    /// Regions awaiting restoration: `(restore_round, nodes taken offline)`.
    pending_restores: Vec<(u64, Vec<NodeId>)>,
    fault_actions: Vec<FaultAction>,
    next_fault_action: usize,
    /// Shared handle to the engine's fault plane; fault actions are no-ops without it.
    fault_plane: Option<FaultPlane>,
    rng: SmallRng,
}

impl ScenarioExecutor {
    /// Creates an executor for `script` mutating `topology` (a shared-state clone of the
    /// topology installed as the engine's delivery filter). `rng` drives every selection
    /// draw; derive it from the experiment seed on a dedicated stream.
    pub fn new(script: &ScenarioScript, topology: NatTopology, rng: SmallRng) -> Self {
        ScenarioExecutor {
            topology,
            actions: script.actions().to_vec(),
            next_action: 0,
            pending_restores: Vec::new(),
            fault_actions: script.fault_actions().to_vec(),
            next_fault_action: 0,
            fault_plane: None,
            rng,
        }
    }

    /// Attaches a shared handle to the engine's [`FaultPlane`] so the script's
    /// [`FaultEvent`]s have something to drive (builder style). Scripts with fault
    /// actions but no plane apply their selection draws and otherwise do nothing, so
    /// the executor's RNG sequence does not depend on whether a plane is attached.
    pub fn with_fault_plane(mut self, plane: FaultPlane) -> Self {
        self.fault_plane = Some(plane);
        self
    }

    /// Returns `true` once every action has applied and every outage is restored.
    pub fn is_settled(&self) -> bool {
        self.next_action >= self.actions.len()
            && self.pending_restores.is_empty()
            && self.next_fault_action >= self.fault_actions.len()
    }

    fn apply(&mut self, event: NatDynamicsEvent, round: u64, now: SimTime) {
        // All event→mutation dispatch (and every selection draw) lives in
        // `NatTopology::apply`; the executor only keeps the *scheduling* state the
        // topology cannot — which nodes a regional outage silenced and when to restore
        // them.
        let applied = self.topology.apply(&event, round, now, &mut self.rng);
        if let Some(restore_round) = applied.restore_round {
            self.pending_restores
                .push((restore_round, applied.taken_offline));
        }
    }

    fn apply_fault(&mut self, event: FaultEvent) {
        match event {
            FaultEvent::FaultProfileChange { profile } => {
                if let Some(plane) = &self.fault_plane {
                    plane.set_default_profile(profile);
                }
            }
            FaultEvent::LinkDegradation { fraction, profile } => {
                // One uniform variate per node in ascending id order — the same
                // selection discipline as `NatTopology::apply`, so the draw sequence
                // depends only on the script and the population.
                let mut nodes = self.topology.public_node_ids();
                nodes.extend(self.topology.private_node_ids());
                nodes.sort_unstable();
                for node in nodes {
                    if self.rng.gen_bool(fraction) {
                        if let Some(plane) = &self.fault_plane {
                            plane.set_link_profile(node, profile);
                        }
                    }
                }
            }
            FaultEvent::FaultClear => {
                if let Some(plane) = &self.fault_plane {
                    plane.clear();
                }
            }
        }
    }
}

impl RoundHook for ScenarioExecutor {
    fn on_round_barrier(&mut self, round: u64, now: SimTime) {
        // Restores first, in scheduling order, so an action at the same round observes
        // the region back online.
        let mut i = 0;
        while i < self.pending_restores.len() {
            if self.pending_restores[i].0 <= round {
                let (_, nodes) = self.pending_restores.remove(i);
                for node in nodes {
                    // Nodes that churned out during the outage report false; harmless.
                    self.topology.set_offline(node, false);
                }
            } else {
                i += 1;
            }
        }
        while self.next_action < self.actions.len() && self.actions[self.next_action].round <= round
        {
            let action = self.actions[self.next_action];
            self.next_action += 1;
            self.apply(action.event, round, now);
        }
        // Fault actions last, so a same-round profile change observes the post-dynamics
        // population when drawing degraded links.
        while self.next_fault_action < self.fault_actions.len()
            && self.fault_actions[self.next_fault_action].round <= round
        {
            let action = self.fault_actions[self.next_fault_action];
            self.next_fault_action += 1;
            self.apply_fault(action.event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(3)
    }

    #[test]
    fn poisson_schedule_has_expected_counts_and_order() {
        let schedule = JoinSchedule::poisson(100, 50.0, 400, 12.5, &mut rng());
        assert_eq!(schedule.len(), 500);
        assert_eq!(schedule.class_counts(), (100, 400));
        assert!(
            schedule.events().windows(2).all(|w| w[0].at <= w[1].at),
            "events must be time-ordered"
        );
    }

    #[test]
    fn poisson_mean_interarrival_is_roughly_honoured() {
        let schedule = JoinSchedule::poisson(2_000, 50.0, 0, 12.5, &mut rng());
        let last = schedule.last_join().unwrap().as_millis() as f64;
        let mean = last / 2_000.0;
        assert!(
            (mean - 50.0).abs() < 5.0,
            "observed mean inter-arrival {mean}"
        );
    }

    #[test]
    fn immediate_schedule_puts_everyone_at_time_zero() {
        let schedule = JoinSchedule::immediate(3, 7);
        assert_eq!(schedule.len(), 10);
        assert!(schedule.events().iter().all(|e| e.at == SimTime::ZERO));
        assert_eq!(schedule.class_counts(), (3, 7));
    }

    #[test]
    fn growth_appends_evenly_spaced_public_joins() {
        let mut schedule = JoinSchedule::immediate(1, 1);
        schedule.append_growth(SimTime::from_secs(58), 10, 42.0, NatClass::Public);
        assert_eq!(schedule.len(), 12);
        assert_eq!(schedule.class_counts().0, 11);
        let last = schedule.last_join().unwrap();
        assert_eq!(last.as_millis(), 58_000 + 9 * 42);
    }

    #[test]
    fn churn_spec_validates_fraction() {
        let spec = ChurnSpec::new(61, 0.01);
        assert_eq!(spec.start_round, 61);
        assert!((spec.fraction_per_round - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn churn_spec_rejects_out_of_range_fraction() {
        ChurnSpec::new(0, 1.5);
    }

    #[test]
    fn exponential_sampling_is_positive() {
        let mut r = rng();
        for _ in 0..1_000 {
            assert!(exponential(10.0, &mut r) > 0.0);
        }
    }

    use croupier_nat::NatTopologyBuilder;
    use croupier_simulator::DeliveryFilter;

    #[test]
    fn scripts_keep_actions_sorted_by_round() {
        let script = ScenarioScript::new("s")
            .at(20, NatDynamicsEvent::MobilityWave { fraction: 0.5 })
            .at(10, NatDynamicsEvent::GatewayRebootStorm { fraction: 1.0 })
            .at(
                15,
                NatDynamicsEvent::FlashCrowd {
                    growth: 0.1,
                    public_fraction: 0.5,
                },
            );
        let rounds: Vec<u64> = script.actions().iter().map(|a| a.round).collect();
        assert_eq!(rounds, vec![10, 15, 20]);
        assert_eq!(script.name(), "s");
        assert_eq!(script.last_action_round(), Some(20));
        assert_eq!(
            script.first_disruption_round(),
            Some(10),
            "flash crowds do not count as disruptions"
        );
        assert!(!script.is_empty());
    }

    #[test]
    fn settled_round_accounts_for_outage_duration() {
        let script = ScenarioScript::new("s")
            .at(
                10,
                NatDynamicsEvent::RegionalOutage {
                    region: 0,
                    regions: 2,
                    outage_rounds: 7,
                },
            )
            .at(12, NatDynamicsEvent::MobilityWave { fraction: 0.1 });
        assert_eq!(script.settled_round(), Some(17));
        assert_eq!(ScenarioScript::new("empty").settled_round(), None);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn scripts_reject_out_of_range_fractions() {
        let _ = ScenarioScript::new("bad").at(1, NatDynamicsEvent::MobilityWave { fraction: 1.5 });
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn scripts_reject_out_of_range_regions() {
        let _ = ScenarioScript::new("bad").at(
            1,
            NatDynamicsEvent::RegionalOutage {
                region: 4,
                regions: 4,
                outage_rounds: 1,
            },
        );
    }

    #[test]
    fn flash_crowds_expand_into_spread_join_events() {
        let script = ScenarioScript::new("fc").at(
            10,
            NatDynamicsEvent::FlashCrowd {
                growth: 0.5,
                public_fraction: 0.25,
            },
        );
        let joins = script.flash_crowd_joins(40, 1_000);
        assert_eq!(joins.len(), 20);
        let publics = joins.iter().filter(|e| e.class.is_public()).count();
        assert_eq!(publics, 5);
        assert!(joins
            .iter()
            .all(|e| e.at > SimTime::from_secs(10) && e.at < SimTime::from_secs(11)));
        assert!(joins.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(script.flash_crowd_joins(0, 1_000).is_empty());
    }

    #[test]
    fn public_flash_crowd_rewrite_only_touches_crowds() {
        let script = ScenarioScript::new("s")
            .at(5, NatDynamicsEvent::MobilityWave { fraction: 0.4 })
            .at(
                10,
                NatDynamicsEvent::FlashCrowd {
                    growth: 0.5,
                    public_fraction: 0.2,
                },
            );
        let rewritten = script.with_public_flash_crowds();
        assert_eq!(rewritten.name(), "s");
        assert_eq!(rewritten.actions()[0], script.actions()[0]);
        assert_eq!(
            rewritten.actions()[1].event,
            NatDynamicsEvent::FlashCrowd {
                growth: 0.5,
                public_fraction: 1.0,
            }
        );
        let joins = rewritten.flash_crowd_joins(40, 1_000);
        assert!(joins.iter().all(|e| e.class.is_public()));
    }

    #[test]
    fn canned_matrix_round_trips_by_name() {
        let matrix = ScenarioScript::matrix(40);
        assert_eq!(matrix.len(), ScenarioScript::MATRIX_NAMES.len());
        for (script, name) in matrix.iter().zip(ScenarioScript::MATRIX_NAMES) {
            assert_eq!(script.name(), name);
            assert!(!script.is_empty(), "{name} must schedule something");
            assert_eq!(ScenarioScript::by_name(name, 40).as_ref(), Some(script));
            assert!(
                script.settled_round().unwrap() < 40,
                "{name} must settle before the run ends"
            );
        }
        assert!(ScenarioScript::by_name("bogus", 40).is_none());
    }

    fn scripted_topology() -> NatTopology {
        let t = NatTopologyBuilder::new(7).build();
        for i in 0..4 {
            t.add_public_node(NodeId::new(i));
        }
        for i in 4..12 {
            t.add_private_node(NodeId::new(i));
        }
        t
    }

    #[test]
    fn executor_applies_actions_at_their_barrier() {
        let t = scripted_topology();
        let mut filter = t.clone();
        let priv_node = NodeId::new(4);
        let pub_node = NodeId::new(0);
        filter.on_send(priv_node, pub_node, SimTime::from_secs(4));
        let script =
            ScenarioScript::new("s").at(5, NatDynamicsEvent::GatewayRebootStorm { fraction: 1.0 });
        let mut exec = ScenarioExecutor::new(&script, t.clone(), SmallRng::seed_from_u64(1));
        exec.on_round_barrier(4, SimTime::from_secs(4));
        assert_eq!(
            filter.can_deliver(pub_node, priv_node, SimTime::from_secs(4)),
            croupier_simulator::DeliveryVerdict::Deliver,
            "nothing applies before round 5"
        );
        assert!(!exec.is_settled());
        exec.on_round_barrier(5, SimTime::from_secs(5));
        assert_eq!(
            filter.can_deliver(pub_node, priv_node, SimTime::from_secs(5)),
            croupier_simulator::DeliveryVerdict::BlockedByNat,
            "the storm wiped every binding"
        );
        assert!(exec.is_settled());
    }

    #[test]
    fn executor_restores_regional_outages_on_schedule() {
        let t = scripted_topology();
        let script = ScenarioScript::new("s").at(
            3,
            NatDynamicsEvent::RegionalOutage {
                region: 0,
                regions: 4,
                outage_rounds: 2,
            },
        );
        let mut exec = ScenarioExecutor::new(&script, t.clone(), SmallRng::seed_from_u64(2));
        exec.on_round_barrier(3, SimTime::from_secs(3));
        // Region 0 of 4: ids 0, 4, 8 are offline; others untouched.
        assert!(t.is_offline(NodeId::new(0)));
        assert!(t.is_offline(NodeId::new(4)));
        assert!(t.is_offline(NodeId::new(8)));
        assert!(!t.is_offline(NodeId::new(1)));
        assert_eq!(t.stats().offline_nodes, 3);
        assert!(!exec.is_settled());
        exec.on_round_barrier(4, SimTime::from_secs(4));
        assert_eq!(t.stats().offline_nodes, 3, "outage lasts two rounds");
        exec.on_round_barrier(5, SimTime::from_secs(5));
        assert_eq!(t.stats().offline_nodes, 0, "restored after the outage");
        assert!(exec.is_settled());
    }

    #[test]
    fn overlapping_outages_each_restore_their_own_nodes() {
        // Region 0-of-4 is a subset of region 0-of-2. The wider, longer outage claims
        // its nodes first; the narrower one that fires a round later must not re-claim
        // them, so the earlier restore does not cut the longer outage short.
        let t = scripted_topology();
        let script = ScenarioScript::new("s")
            .at(
                3,
                NatDynamicsEvent::RegionalOutage {
                    region: 0,
                    regions: 2,
                    outage_rounds: 6,
                },
            )
            .at(
                4,
                NatDynamicsEvent::RegionalOutage {
                    region: 0,
                    regions: 4,
                    outage_rounds: 2,
                },
            );
        let mut exec = ScenarioExecutor::new(&script, t.clone(), SmallRng::seed_from_u64(4));
        for round in 3..=6 {
            exec.on_round_barrier(round, SimTime::from_secs(round));
        }
        // The 4-of-4 restore round (4 + 2 = 6) has passed, but ids 0, 4, 8 belong to
        // the 2-region outage and must still be dark until round 9.
        assert!(t.is_offline(NodeId::new(0)));
        assert!(t.is_offline(NodeId::new(4)));
        assert!(t.is_offline(NodeId::new(8)));
        for round in 7..=9 {
            exec.on_round_barrier(round, SimTime::from_secs(round));
        }
        assert_eq!(t.stats().offline_nodes, 0);
        assert!(exec.is_settled());
    }

    #[test]
    fn flash_crowd_joins_never_land_on_the_barrier_instant() {
        // At huge counts the rounded inter-arrival step degenerates to zero; the 1 ms
        // clamp keeps every joiner strictly inside the round after the action.
        let script = ScenarioScript::new("fc").at(
            10,
            NatDynamicsEvent::FlashCrowd {
                growth: 1.0,
                public_fraction: 0.0,
            },
        );
        let joins = script.flash_crowd_joins(5_000, 1_000);
        assert_eq!(joins.len(), 5_000);
        assert!(joins.iter().all(|e| e.at > SimTime::from_secs(10)));
        assert!(
            joins.iter().all(|e| e.at < SimTime::from_secs(11)),
            "the next round's barrier instant already belongs to the round after"
        );
    }

    #[test]
    fn fault_scripts_schedule_and_settle_like_nat_scripts() {
        let script = ScenarioScript::lossy_10(40);
        assert!(script.has_fault_actions());
        assert_eq!(script.fault_actions().len(), 3);
        assert_eq!(script.first_disruption_round(), Some(20));
        assert_eq!(script.settled_round(), Some(25));
        assert!(!ScenarioScript::reboot_storm(40).has_fault_actions());
        // Mixed scripts take the earliest disruption across both vocabularies.
        let mixed = ScenarioScript::new("m")
            .at(12, NatDynamicsEvent::MobilityWave { fraction: 0.1 })
            .fault_at(
                8,
                FaultEvent::FaultProfileChange {
                    profile: FaultProfile::lossy(0.05),
                },
            );
        assert_eq!(mixed.first_disruption_round(), Some(8));
        assert_eq!(mixed.last_action_round(), Some(12));
        assert_eq!(mixed.len(), 2);
    }

    #[test]
    fn executor_drives_the_fault_plane_from_the_script() {
        use croupier_simulator::Seed;
        let t = scripted_topology();
        let script = ScenarioScript::new("f")
            .fault_at(
                2,
                FaultEvent::FaultProfileChange {
                    profile: FaultProfile::lossy(0.5),
                },
            )
            .fault_at(
                3,
                FaultEvent::LinkDegradation {
                    fraction: 1.0,
                    profile: FaultProfile::lossy(1.0),
                },
            )
            .fault_at(5, FaultEvent::FaultClear);
        let plane = FaultPlane::new(Seed::new(9));
        let mut exec = ScenarioExecutor::new(&script, t, SmallRng::seed_from_u64(5))
            .with_fault_plane(plane.clone());
        assert!(!plane.is_active(), "plane starts inactive");
        exec.on_round_barrier(2, SimTime::from_secs(2));
        assert!(plane.is_active(), "profile change activates the plane");
        assert!(!exec.is_settled());
        exec.on_round_barrier(3, SimTime::from_secs(3));
        // Every link now drops everything: a judged delivery must record a drop.
        {
            let mut session = plane.begin().expect("plane is active");
            let decision = session.judge(NodeId::new(4), NodeId::new(0));
            assert!(decision.drop, "degraded link loses every datagram");
        }
        exec.on_round_barrier(5, SimTime::from_secs(5));
        assert!(!plane.is_active(), "FaultClear deactivates the plane");
        assert!(
            plane.report().total_drops() > 0,
            "counters survive the clear"
        );
        assert!(exec.is_settled());
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn fault_scripts_reject_out_of_range_fractions() {
        let _ = ScenarioScript::new("bad").fault_at(
            1,
            FaultEvent::LinkDegradation {
                fraction: 1.5,
                profile: FaultProfile::default(),
            },
        );
    }

    #[test]
    fn executor_effects_are_deterministic_for_a_fixed_rng() {
        let run = || {
            let t = scripted_topology();
            let script = ScenarioScript::new("s")
                .at(1, NatDynamicsEvent::MobilityWave { fraction: 0.5 })
                .at(2, NatDynamicsEvent::ProfileUpgrade { fraction: 0.5 });
            let mut exec = ScenarioExecutor::new(&script, t.clone(), SmallRng::seed_from_u64(3));
            exec.on_round_barrier(1, SimTime::from_secs(1));
            exec.on_round_barrier(2, SimTime::from_secs(2));
            (t.public_node_ids(), t.private_node_ids(), t.gateway_count())
        };
        assert_eq!(run(), run());
        let (publics, privates, gateways) = run();
        assert!(publics.len() > 4, "some private nodes should be promoted");
        assert!(!privates.is_empty());
        assert!(gateways > 8, "migrations allocate fresh gateways");
    }
}
