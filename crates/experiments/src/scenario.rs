//! Workload descriptions: join schedules, churn and catastrophic failure.

use croupier_simulator::{NatClass, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Continuous churn, as in §VII-B of the paper: every round a fixed fraction of randomly
/// selected nodes leaves and is immediately replaced by freshly initialised nodes of the
/// same class, keeping the public/private ratio stable.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// First round in which churn is applied.
    pub start_round: u64,
    /// Fraction of the population replaced per round (0.001 = 0.1 %).
    pub fraction_per_round: f64,
}

impl ChurnSpec {
    /// Creates a churn specification.
    ///
    /// # Panics
    ///
    /// Panics if `fraction_per_round` is not within `[0, 1]`.
    pub fn new(start_round: u64, fraction_per_round: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction_per_round),
            "churn fraction must be within [0, 1]"
        );
        ChurnSpec {
            start_round,
            fraction_per_round,
        }
    }
}

/// A node arrival: when it joins and with which connectivity class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinEvent {
    /// Join time.
    pub at: SimTime,
    /// Connectivity class of the joining node.
    pub class: NatClass,
}

/// A complete join schedule: a time-ordered list of [`JoinEvent`]s.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct JoinSchedule {
    events: Vec<JoinEvent>,
}

impl JoinSchedule {
    /// Builds the paper's join workload: `n_public` public and `n_private` private nodes
    /// join concurrently, each class following a Poisson process with the given mean
    /// inter-arrival time in milliseconds (§VII-B uses 50 ms for public and 12.5 ms for
    /// private nodes).
    pub fn poisson(
        n_public: usize,
        public_interarrival_ms: f64,
        n_private: usize,
        private_interarrival_ms: f64,
        rng: &mut SmallRng,
    ) -> Self {
        let mut events = Vec::with_capacity(n_public + n_private);
        let mut clock = 0.0f64;
        for _ in 0..n_public {
            clock += exponential(public_interarrival_ms, rng);
            events.push(JoinEvent {
                at: SimTime::from_millis(clock.round() as u64),
                class: NatClass::Public,
            });
        }
        clock = 0.0;
        for _ in 0..n_private {
            clock += exponential(private_interarrival_ms, rng);
            events.push(JoinEvent {
                at: SimTime::from_millis(clock.round() as u64),
                class: NatClass::Private,
            });
        }
        events.sort_by_key(|e| e.at);
        JoinSchedule { events }
    }

    /// Builds a schedule where every node joins at time zero; useful for unit tests.
    pub fn immediate(n_public: usize, n_private: usize) -> Self {
        let mut events = Vec::with_capacity(n_public + n_private);
        for _ in 0..n_public {
            events.push(JoinEvent {
                at: SimTime::ZERO,
                class: NatClass::Public,
            });
        }
        for _ in 0..n_private {
            events.push(JoinEvent {
                at: SimTime::ZERO,
                class: NatClass::Private,
            });
        }
        JoinSchedule { events }
    }

    /// Appends a burst of `count` joins of `class`, evenly spaced by `interarrival_ms`
    /// starting at `start` — used by the dynamic-ratio experiment (Fig. 2), which adds a new
    /// public node every 42 ms once the system is stable.
    pub fn append_growth(
        &mut self,
        start: SimTime,
        count: usize,
        interarrival_ms: f64,
        class: NatClass,
    ) {
        for i in 0..count {
            let offset = (i as f64 * interarrival_ms).round() as u64;
            self.events.push(JoinEvent {
                at: SimTime::from_millis(start.as_millis() + offset),
                class,
            });
        }
        self.events.sort_by_key(|e| e.at);
    }

    /// The scheduled events, in time order.
    pub fn events(&self) -> &[JoinEvent] {
        &self.events
    }

    /// Number of scheduled joins.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when no join is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the last join.
    pub fn last_join(&self) -> Option<SimTime> {
        self.events.last().map(|e| e.at)
    }

    /// Counts of (public, private) joins in the schedule.
    pub fn class_counts(&self) -> (usize, usize) {
        let public = self.events.iter().filter(|e| e.class.is_public()).count();
        (public, self.events.len() - public)
    }
}

/// Samples an exponentially distributed inter-arrival time with the given mean.
fn exponential(mean_ms: f64, rng: &mut SmallRng) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean_ms * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(3)
    }

    #[test]
    fn poisson_schedule_has_expected_counts_and_order() {
        let schedule = JoinSchedule::poisson(100, 50.0, 400, 12.5, &mut rng());
        assert_eq!(schedule.len(), 500);
        assert_eq!(schedule.class_counts(), (100, 400));
        assert!(
            schedule.events().windows(2).all(|w| w[0].at <= w[1].at),
            "events must be time-ordered"
        );
    }

    #[test]
    fn poisson_mean_interarrival_is_roughly_honoured() {
        let schedule = JoinSchedule::poisson(2_000, 50.0, 0, 12.5, &mut rng());
        let last = schedule.last_join().unwrap().as_millis() as f64;
        let mean = last / 2_000.0;
        assert!(
            (mean - 50.0).abs() < 5.0,
            "observed mean inter-arrival {mean}"
        );
    }

    #[test]
    fn immediate_schedule_puts_everyone_at_time_zero() {
        let schedule = JoinSchedule::immediate(3, 7);
        assert_eq!(schedule.len(), 10);
        assert!(schedule.events().iter().all(|e| e.at == SimTime::ZERO));
        assert_eq!(schedule.class_counts(), (3, 7));
    }

    #[test]
    fn growth_appends_evenly_spaced_public_joins() {
        let mut schedule = JoinSchedule::immediate(1, 1);
        schedule.append_growth(SimTime::from_secs(58), 10, 42.0, NatClass::Public);
        assert_eq!(schedule.len(), 12);
        assert_eq!(schedule.class_counts().0, 11);
        let last = schedule.last_join().unwrap();
        assert_eq!(last.as_millis(), 58_000 + 9 * 42);
    }

    #[test]
    fn churn_spec_validates_fraction() {
        let spec = ChurnSpec::new(61, 0.01);
        assert_eq!(spec.start_round, 61);
        assert!((spec.fraction_per_round - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn churn_spec_rejects_out_of_range_fraction() {
        ChurnSpec::new(0, 1.5);
    }

    #[test]
    fn exponential_sampling_is_positive() {
        let mut r = rng();
        for _ in 0..1_000 {
            assert!(exponential(10.0, &mut r) > 0.0);
        }
    }
}
