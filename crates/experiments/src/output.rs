//! Figure and series containers plus plain-text rendering.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// Experiment scale: the paper's populations are large (up to 5000 nodes); the smaller
/// scales keep unit tests, doc tests and benchmark iterations fast while preserving the
/// qualitative behaviour, and the larger scales stress the sharded engine beyond the
/// paper.
///
/// All tiers at a glance (nodes shown for the paper's 5000-node experiments):
///
/// | Tier    | Nodes vs paper | Nodes   | Rounds vs paper | Sample every | Engine        | Metrics plane            |
/// |---------|----------------|---------|-----------------|--------------|---------------|--------------------------|
/// | `Tiny`  | ÷40            | 125     | ÷5 (min 20)     | 2            | event-driven  | synchronous              |
/// | `Quick` | ÷10            | 500     | ÷2 (min 40)     | 2            | event-driven  | synchronous              |
/// | `Paper` | ×1             | 5 000   | ×1              | 5            | event-driven  | synchronous              |
/// | `Large` | ×20            | 100 000 | ÷4 (min 25)     | 10           | sharded ×4    | synchronous              |
/// | `Huge`  | ×200           | 1 000 000 | ÷8 (min 12)   | 20           | sharded ×8    | incremental, 2 workers   |
#[non_exhaustive]
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Scale {
    /// A few dozen nodes, a few dozen rounds; used by doc tests and smoke tests.
    Tiny,
    /// Roughly a tenth of the paper's populations; used by Criterion benchmarks.
    Quick,
    /// The paper's populations and durations.
    Paper,
    /// Beyond the paper: 20× its populations (100k nodes for the 5000-node experiments),
    /// shortened durations, and the sharded phase-parallel engine. Exercised by the CI
    /// `scale-smoke` job and the PeerSwap-style randomness-vs-scale comparisons.
    Large,
    /// The million-node tier: 200× the paper's populations, heavily shortened durations,
    /// eight sharded workers and the incremental connectivity metrics — the full
    /// CSR + BFS pipeline per sample would dominate the run at this size.
    Huge,
}

impl Scale {
    /// Scales a node count.
    pub fn nodes(self, paper_value: usize) -> usize {
        match self {
            Scale::Tiny => (paper_value / 40).max(5),
            Scale::Quick => (paper_value / 10).max(20),
            Scale::Paper => paper_value,
            Scale::Large => paper_value * 20,
            Scale::Huge => paper_value * 200,
        }
    }

    /// Scales a round count.
    pub fn rounds(self, paper_value: u64) -> u64 {
        match self {
            Scale::Tiny => (paper_value / 5).max(20),
            Scale::Quick => (paper_value / 2).max(40),
            Scale::Paper => paper_value,
            Scale::Large => (paper_value / 4).max(25),
            Scale::Huge => (paper_value / 8).max(12),
        }
    }

    /// How often (in rounds) metrics are sampled at this scale.
    pub fn sample_every(self) -> u64 {
        match self {
            Scale::Tiny => 2,
            Scale::Quick => 2,
            Scale::Paper => 5,
            Scale::Large => 10,
            Scale::Huge => 20,
        }
    }

    /// The engine selector used at this scale: the paper scales keep the event-driven
    /// engine (`0`), [`Scale::Large`] runs the sharded engine with four worker threads
    /// and [`Scale::Huge`] with eight.
    pub fn engine_threads(self) -> usize {
        match self {
            Scale::Tiny | Scale::Quick | Scale::Paper => 0,
            Scale::Large => 4,
            Scale::Huge => 8,
        }
    }

    /// Whether runs at this scale track the largest component incrementally instead of
    /// rebuilding the full CSR graph on every sample (see
    /// [`ExperimentParams::incremental_components`](crate::runner::ExperimentParams::incremental_components)).
    pub fn incremental_components(self) -> bool {
        matches!(self, Scale::Huge)
    }

    /// Whether runs at this scale track the in-degree distribution incrementally (see
    /// [`ExperimentParams::incremental_indegree`](crate::runner::ExperimentParams::incremental_indegree)).
    /// Follows [`incremental_components`](Self::incremental_components): both trackers
    /// feed off the same snapshot edge delta.
    pub fn incremental_indegree(self) -> bool {
        self.incremental_components()
    }

    /// Number of metrics worker threads the driver overlaps graph analysis with the
    /// simulation on (see
    /// [`ExperimentParams::metrics_workers`](crate::runner::ExperimentParams::metrics_workers)).
    /// Only the million-node tier overlaps: its per-sample analysis is expensive enough
    /// to hide whole simulation rounds behind, while at the paper scales the synchronous
    /// path keeps runs trivially comparable to the published figures.
    pub fn metrics_workers(self) -> usize {
        match self {
            Scale::Tiny | Scale::Quick | Scale::Paper | Scale::Large => 0,
            Scale::Huge => 2,
        }
    }

    /// Parses a scale name (`tiny`, `quick`, `paper`/`full`, `large`, `huge`).
    pub fn parse(text: &str) -> Option<Scale> {
        match text.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "quick" => Some(Scale::Quick),
            "paper" | "full" => Some(Scale::Paper),
            "large" => Some(Scale::Large),
            "huge" => Some(Scale::Huge),
            _ => None,
        }
    }
}

/// One plotted series: a label and a list of `(x, y)` points.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (e.g. `"α=25, γ=50"` or `"croupier"`).
    pub label: String,
    /// The data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The final y value, if any.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|(_, y)| *y)
    }

    /// The mean of the y values over the last `n` points (or all of them if fewer exist).
    pub fn tail_mean(&self, n: usize) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.len().saturating_sub(n);
        let tail = &self.points[start..];
        Some(tail.iter().map(|(_, y)| *y).sum::<f64>() / tail.len() as f64)
    }
}

/// The data behind one regenerated figure of the paper.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FigureData {
    /// Short identifier (e.g. `"fig1"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
    /// The plotted series.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Creates an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureData {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Finds a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders the figure as an aligned plain-text table (x values as rows, one column per
    /// series) — what the `figures` binary prints.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = writeln!(out, "# x: {} | y: {}", self.x_label, self.y_label);
        let mut header = format!("{:>12}", self.x_label);
        for series in &self.series {
            let _ = write!(header, " {:>18}", series.label);
        }
        let _ = writeln!(out, "{header}");

        // Collect the union of x values, sorted.
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("x values must be comparable"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        for x in xs {
            let mut row = format!("{x:>12.3}");
            for series in &self.series {
                let y = series
                    .points
                    .iter()
                    .find(|(px, _)| (px - x).abs() < 1e-12)
                    .map(|(_, y)| *y);
                match y {
                    Some(y) => {
                        let _ = write!(row, " {y:>18.6}");
                    }
                    None => {
                        let _ = write!(row, " {:>18}", "-");
                    }
                }
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }

    /// Serialises the figure as pretty-printed JSON.
    ///
    /// Emitted by hand because the offline build has no `serde_json`. The output parses
    /// to the same document `serde_json` would produce for this type (field names, order
    /// and values match; only whitespace differs), so downstream plotting scripts are
    /// unaffected.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"id\": {},", json_string(&self.id));
        let _ = writeln!(out, "  \"title\": {},", json_string(&self.title));
        let _ = writeln!(out, "  \"x_label\": {},", json_string(&self.x_label));
        let _ = writeln!(out, "  \"y_label\": {},", json_string(&self.y_label));
        if self.series.is_empty() {
            out.push_str("  \"series\": []\n");
        } else {
            out.push_str("  \"series\": [\n");
            for (i, series) in self.series.iter().enumerate() {
                out.push_str("    {\n");
                let _ = writeln!(out, "      \"label\": {},", json_string(&series.label));
                if series.points.is_empty() {
                    out.push_str("      \"points\": []\n");
                } else {
                    out.push_str("      \"points\": [\n");
                    for (j, (x, y)) in series.points.iter().enumerate() {
                        let comma = if j + 1 < series.points.len() { "," } else { "" };
                        let _ = writeln!(
                            out,
                            "        [{}, {}]{comma}",
                            json_number(*x),
                            json_number(*y)
                        );
                    }
                    out.push_str("      ]\n");
                }
                let comma = if i + 1 < self.series.len() { "," } else { "" };
                let _ = writeln!(out, "    }}{comma}");
            }
            out.push_str("  ]\n");
        }
        out.push('}');
        out
    }
}

/// Quotes and escapes `text` as a JSON string literal.
pub(crate) fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (JSON has no NaN/Infinity; they become null).
pub(crate) fn json_number(v: f64) -> String {
    if v.is_finite() {
        // Keep integral values readable (`5.0` not `5`): serde_json prints `5.0` for
        // f64 too, and plotting scripts treat both the same.
        format!("{v:?}")
    } else {
        String::from("null")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors_shrink_populations() {
        assert_eq!(Scale::Paper.nodes(1000), 1000);
        assert_eq!(Scale::Quick.nodes(1000), 100);
        assert!(Scale::Tiny.nodes(1000) <= 30);
        assert!(Scale::Tiny.nodes(10) >= 5);
        assert_eq!(Scale::Paper.rounds(250), 250);
        assert!(Scale::Tiny.rounds(250) < 250);
    }

    #[test]
    fn large_scale_exceeds_the_paper_and_uses_the_sharded_engine() {
        assert_eq!(Scale::Large.nodes(5_000), 100_000);
        assert!(Scale::Large.rounds(200) < 200);
        assert_eq!(Scale::Large.engine_threads(), 4);
        assert_eq!(Scale::Paper.engine_threads(), 0);
        assert_eq!(Scale::Tiny.engine_threads(), 0);
    }

    #[test]
    fn scale_parse_accepts_known_names() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("QUICK"), Some(Scale::Quick));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("large"), Some(Scale::Large));
        assert_eq!(Scale::parse("huge"), Some(Scale::Huge));
        assert_eq!(Scale::parse("galactic"), None);
    }

    #[test]
    fn huge_scale_reaches_a_million_nodes_on_eight_workers() {
        assert_eq!(Scale::Huge.nodes(5_000), 1_000_000);
        assert!(Scale::Huge.rounds(200) <= Scale::Large.rounds(200));
        assert_eq!(Scale::Huge.engine_threads(), 8);
        assert!(Scale::Huge.incremental_components());
        assert!(!Scale::Large.incremental_components());
        assert!(Scale::Huge.incremental_indegree());
        assert_eq!(Scale::Huge.metrics_workers(), 2);
        assert_eq!(Scale::Large.metrics_workers(), 0);
        assert_eq!(Scale::Paper.metrics_workers(), 0);
    }

    #[test]
    fn series_accumulates_points_and_statistics() {
        let mut s = Series::new("test");
        s.push(1.0, 10.0);
        s.push(2.0, 20.0);
        s.push(3.0, 30.0);
        assert_eq!(s.last_y(), Some(30.0));
        assert_eq!(s.tail_mean(2), Some(25.0));
        assert_eq!(s.tail_mean(100), Some(20.0));
        assert_eq!(Series::new("empty").tail_mean(3), None);
    }

    #[test]
    fn table_rendering_includes_all_series() {
        let mut fig = FigureData::new("figX", "Example", "time", "error");
        let mut a = Series::new("a");
        a.push(1.0, 0.5);
        a.push(2.0, 0.25);
        let mut b = Series::new("b");
        b.push(1.0, 0.4);
        fig.series.push(a);
        fig.series.push(b);
        let table = fig.render_table();
        assert!(table.contains("figX"));
        assert!(table.contains('a'));
        assert!(table.contains('b'));
        assert!(table.contains("0.500000"));
        assert!(table.contains('-'), "missing values render as dashes");
    }

    #[test]
    fn json_output_is_well_formed() {
        let mut fig = FigureData::new("fig1", "A \"quoted\" title", "x", "y");
        let mut s = Series::new("croupier");
        s.push(1.0, 0.5);
        s.push(2.5, f64::NAN);
        fig.series.push(s);
        let json = fig.to_json();
        assert!(json.contains("\"id\": \"fig1\""));
        assert!(
            json.contains("\\\"quoted\\\""),
            "quotes must be escaped: {json}"
        );
        assert!(json.contains("[1.0, 0.5]"));
        assert!(
            json.contains("[2.5, null]"),
            "non-finite y becomes null: {json}"
        );
        // Balanced braces/brackets — a cheap well-formedness check without a parser.
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = json.matches(open).count();
            let closes = json.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close} in {json}");
        }
    }

    #[test]
    fn json_of_empty_figure_has_empty_series_array() {
        let fig = FigureData::new("f", "t", "x", "y");
        assert!(fig.to_json().contains("\"series\": []"));
    }

    #[test]
    fn series_lookup_by_label() {
        let mut fig = FigureData::new("f", "t", "x", "y");
        fig.series.push(Series::new("croupier"));
        assert!(fig.series("croupier").is_some());
        assert!(fig.series("nylon").is_none());
    }
}
