//! The dissemination workload engine: pub-sub chunk streaming measured against SLOs.
//!
//! The paper motivates NAT-aware peer sampling with P2P video streaming, so this module
//! puts an application on top of the sampling service and measures what the application
//! cares about: did every chunk reach (almost) every subscriber, how many rounds did it
//! take, and how much duplicate traffic did the overlay pay for it. A
//! [`WorkloadSpec`] configures publisher nodes that emit sequenced chunks at a target
//! rate; every gossip round, nodes holding a fresh chunk *push* it to a sampled fan-out
//! and nodes missing chunks *pull* from one sampled holder. Each transfer is checked
//! against the same NAT delivery filter and fault-injection plane the protocol's own
//! messages ride, so a reboot storm or a lossy window degrades the stream exactly as it
//! degrades the gossip underneath it.
//!
//! The engine runs as a [`RoundHook`] (installed through
//! [`SimulationEngine::set_sampled_round_hook`](croupier_simulator::SimulationEngine::set_sampled_round_hook)),
//! drawing its peers through [`HookOps::draw_sample`] — the target node's own protocol
//! sampling rule and RNG stream — and recording its traffic into the engine's ledger.
//! Because every step executes at the round barrier on the coordinating thread, in
//! ascending node-id order, a workload run is bit-identical across engine worker counts;
//! see `DESIGN.md` §16 for the full determinism argument.
//!
//! The per-chunk delivery tracker seals each chunk [`WorkloadSpec::coverage_rounds`]
//! rounds after publication and freezes its coverage, so the reported coverage *is*
//! "delivery within K rounds" and the SLO gate ([`WorkloadReport::meets_slo`]) reads
//! directly off the report.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use croupier_nat::NatTopology;
use croupier_simulator::{DeliveryFilter, FaultPlane, HookOps, NodeId, RoundHook, SimTime};
use serde::{Deserialize, Serialize};

/// Declared service-level objectives for a dissemination workload.
///
/// # Examples
///
/// ```
/// use croupier_experiments::workload::WorkloadSlo;
///
/// let slo = WorkloadSlo::default();
/// assert!(slo.min_coverage >= 0.99);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSlo {
    /// Minimum fraction of `(chunk, live subscriber)` pairs delivered within the seal
    /// window ([`WorkloadSpec::coverage_rounds`]).
    pub min_coverage: f64,
    /// Maximum acceptable p95 delivery latency, in rounds.
    pub max_p95_latency_rounds: f64,
    /// Maximum acceptable p95 latency *regression* against a no-dynamics control run of
    /// the same cell, in rounds (judged by the workload matrix, which runs the control).
    pub max_p95_regression_rounds: f64,
}

impl Default for WorkloadSlo {
    fn default() -> Self {
        WorkloadSlo {
            min_coverage: 0.99,
            max_p95_latency_rounds: 8.0,
            max_p95_regression_rounds: 2.0,
        }
    }
}

/// Configuration of a dissemination workload (see the module docs for the model).
///
/// # Examples
///
/// ```
/// use croupier_experiments::workload::WorkloadSpec;
///
/// let spec = WorkloadSpec::default()
///     .with_publishers(2)
///     .with_rate(1.5)
///     .with_window(10, 20);
/// assert_eq!(spec.publishers, 2);
/// assert_eq!(spec.start_round, 10);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of publisher nodes (the first live public nodes in ascending id order at
    /// the first publishing barrier; chunks round-robin over them).
    pub publishers: usize,
    /// Aggregate publish rate in chunks per round (fractional rates accumulate and
    /// publish on the rounds where the accumulator crosses an integer).
    pub chunks_per_round: f64,
    /// First round (1-based barrier index) at which chunks are published.
    pub start_round: u64,
    /// Number of consecutive rounds chunks are published for.
    pub publish_rounds: u64,
    /// Push fan-out: how many sampled peers a fresh holder forwards a chunk to.
    pub fanout: usize,
    /// Seal window K, in rounds: a chunk's coverage is frozen K rounds after
    /// publication, so coverage means "delivered within K rounds".
    pub coverage_rounds: u64,
    /// Wire size charged to the traffic ledger per chunk transfer, in bytes.
    pub chunk_bytes: usize,
    /// The SLOs the run is judged against.
    pub slo: WorkloadSlo,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            publishers: 1,
            chunks_per_round: 1.0,
            start_round: 1,
            publish_rounds: 10,
            fanout: 3,
            coverage_rounds: 10,
            chunk_bytes: 1024,
            slo: WorkloadSlo::default(),
        }
    }
}

impl WorkloadSpec {
    /// Sets the number of publisher nodes.
    pub fn with_publishers(mut self, publishers: usize) -> Self {
        self.publishers = publishers.max(1);
        self
    }

    /// Sets the aggregate publish rate in chunks per round.
    pub fn with_rate(mut self, chunks_per_round: f64) -> Self {
        self.chunks_per_round = chunks_per_round.max(0.0);
        self
    }

    /// Sets the publishing window: chunks are published from `start_round` for
    /// `publish_rounds` rounds.
    pub fn with_window(mut self, start_round: u64, publish_rounds: u64) -> Self {
        self.start_round = start_round.max(1);
        self.publish_rounds = publish_rounds;
        self
    }

    /// Sets the push fan-out.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.fanout = fanout;
        self
    }

    /// Sets the seal window K (coverage means "delivered within K rounds").
    pub fn with_coverage_rounds(mut self, rounds: u64) -> Self {
        self.coverage_rounds = rounds.max(1);
        self
    }

    /// Sets the SLOs.
    pub fn with_slo(mut self, slo: WorkloadSlo) -> Self {
        self.slo = slo;
        self
    }

    /// The last round on which this spec publishes a chunk.
    pub fn last_publish_round(&self) -> u64 {
        self.start_round + self.publish_rounds.saturating_sub(1)
    }
}

/// What a dissemination workload run delivered, against what it promised.
///
/// All fields are either exact integer counters or values computed from them in a fixed
/// order, so two runs of the same seeded experiment produce `==`-identical reports — the
/// bit-identity tests compare whole reports across engine worker counts.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Chunks published over the run.
    pub chunks_published: u64,
    /// Chunks whose seal window closed before the end of the run (the rest are sealed
    /// early, at end-of-run state, when the report is built).
    pub chunks_sealed: u64,
    /// Σ over sealed chunks of the live-subscriber count at seal time.
    pub expected_deliveries: u64,
    /// Σ over sealed chunks of subscribers holding the chunk at seal time.
    pub unique_deliveries: u64,
    /// Every successful chunk transfer, including duplicates to nodes already holding
    /// the chunk.
    pub total_deliveries: u64,
    /// `unique_deliveries / expected_deliveries` — the fraction of `(chunk, live
    /// subscriber)` pairs served within the seal window.
    pub coverage: f64,
    /// The worst single chunk's coverage.
    pub min_chunk_coverage: f64,
    /// Median delivery latency in rounds (0 = delivered on the publishing round).
    pub latency_p50: f64,
    /// 95th-percentile delivery latency in rounds.
    pub latency_p95: f64,
    /// 99th-percentile delivery latency in rounds.
    pub latency_p99: f64,
    /// `total_deliveries / unique_deliveries`: 1.0 means no redundant transfers.
    pub duplicate_factor: f64,
    /// Push transfers attempted (fan-out draws that found a distinct live peer).
    pub pushes_attempted: u64,
    /// Pull requests that found a live peer holding something the puller lacked.
    pub pulls_served: u64,
    /// Transfers blocked by the NAT delivery filter.
    pub nat_blocked: u64,
    /// Transfers dropped by the fault-injection plane.
    pub fault_dropped: u64,
    /// Fraction of first-time deliveries served by a *public* node (publisher
    /// self-deliveries excluded). Compared against the public population share, this
    /// measures how much of the private majority's uplink capacity the overlay actually
    /// uses: direct-only transfer concentrates serving on the public core, because a
    /// push at a private target only lands when a NAT mapping already exists — the
    /// capacity argument for the relaying the paper's Gozar/Nylon baselines implement.
    pub public_serve_share: f64,
}

impl WorkloadReport {
    /// Judges the report against declared SLOs: coverage and absolute p95 latency. (The
    /// p95 *regression* bound needs a control run and is judged by the workload matrix.)
    pub fn meets_slo(&self, slo: &WorkloadSlo) -> bool {
        self.coverage >= slo.min_coverage && self.latency_p95 <= slo.max_p95_latency_rounds
    }
}

/// One published chunk still inside its seal window.
struct ActiveChunk {
    publish_round: u64,
    /// Everyone holding the chunk; queried only (never iterated), so hash order is
    /// unobservable.
    holders: HashSet<NodeId>,
    /// Nodes that received the chunk on the previous round and owe it a push this round,
    /// in canonical (receipt) order.
    pending: Vec<NodeId>,
    /// Nodes that received the chunk this round, promoted to `pending` at the next
    /// barrier.
    fresh: Vec<NodeId>,
}

/// The delivery tracker: all mutable workload state, shared between the hook riding the
/// engine and the driver that builds the final [`WorkloadReport`].
#[derive(Default)]
pub struct WorkloadState {
    publishers: Vec<NodeId>,
    publish_carry: f64,
    chunks_published: u64,
    active: Vec<ActiveChunk>,
    /// Delivery-latency histogram: `latency_hist[r]` counts first-time deliveries `r`
    /// rounds after publication.
    latency_hist: Vec<u64>,
    chunks_sealed: u64,
    expected_deliveries: u64,
    unique_deliveries: u64,
    total_deliveries: u64,
    min_chunk_coverage: f64,
    pushes_attempted: u64,
    pulls_served: u64,
    nat_blocked: u64,
    fault_dropped: u64,
    /// First-time deliveries whose serving node (push holder or pull source) is public.
    served_by_public: u64,
}

impl WorkloadState {
    /// Records a first-time delivery `latency` rounds after publication.
    fn record_delivery(&mut self, latency: u64) {
        let idx = latency as usize;
        if self.latency_hist.len() <= idx {
            self.latency_hist.resize(idx + 1, 0);
        }
        self.latency_hist[idx] += 1;
        self.unique_deliveries += 1;
        self.total_deliveries += 1;
    }

    /// Freezes `chunk`'s coverage against the ascending live-id list.
    fn seal_chunk(&mut self, chunk: ActiveChunk, live: &[NodeId]) {
        let delivered = live.iter().filter(|id| chunk.holders.contains(id)).count() as u64;
        let expected = live.len() as u64;
        self.chunks_sealed += 1;
        self.expected_deliveries += expected;
        // `unique_deliveries` counted at delivery time may exceed the sealed count when
        // a holder has since died; coverage uses the sealed numbers only.
        let coverage = if expected == 0 {
            0.0
        } else {
            delivered as f64 / expected as f64
        };
        if self.chunks_sealed == 1 || coverage < self.min_chunk_coverage {
            self.min_chunk_coverage = coverage;
        }
    }

    /// The exact percentile latency: the smallest latency `L` (in rounds) such that at
    /// least `pct` percent of all recorded deliveries happened within `L` rounds.
    fn latency_percentile(&self, pct: u64) -> f64 {
        let total: u64 = self.latency_hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let need = (total * pct).div_ceil(100);
        let mut cumulative = 0u64;
        for (latency, count) in self.latency_hist.iter().enumerate() {
            cumulative += count;
            if cumulative >= need {
                return latency as f64;
            }
        }
        (self.latency_hist.len().saturating_sub(1)) as f64
    }

    /// Builds the report, force-sealing any chunk whose window is still open (end-of-run
    /// state; matrix specs size their publish window so this never triggers there).
    fn build_report(&mut self, live: &[NodeId]) -> WorkloadReport {
        for chunk in std::mem::take(&mut self.active) {
            self.seal_chunk(chunk, live);
        }
        let coverage = if self.expected_deliveries == 0 {
            0.0
        } else {
            self.unique_deliveries as f64 / self.expected_deliveries as f64
        };
        WorkloadReport {
            chunks_published: self.chunks_published,
            chunks_sealed: self.chunks_sealed,
            expected_deliveries: self.expected_deliveries,
            unique_deliveries: self.unique_deliveries,
            total_deliveries: self.total_deliveries,
            coverage: coverage.min(1.0),
            min_chunk_coverage: self.min_chunk_coverage,
            latency_p50: self.latency_percentile(50),
            latency_p95: self.latency_percentile(95),
            latency_p99: self.latency_percentile(99),
            duplicate_factor: if self.unique_deliveries == 0 {
                1.0
            } else {
                self.total_deliveries as f64 / self.unique_deliveries as f64
            },
            pushes_attempted: self.pushes_attempted,
            pulls_served: self.pulls_served,
            nat_blocked: self.nat_blocked,
            fault_dropped: self.fault_dropped,
            public_serve_share: {
                // Publisher self-deliveries have no serving transfer behind them.
                let served = self.unique_deliveries.saturating_sub(self.chunks_published);
                if served == 0 {
                    0.0
                } else {
                    self.served_by_public as f64 / served as f64
                }
            },
        }
    }
}

/// The workload engine as a [`RoundHook`]: install with
/// [`set_sampled_round_hook`](croupier_simulator::SimulationEngine::set_sampled_round_hook)
/// (the plain `set_round_hook` leaves [`HookOps::draw_sample`] returning `None`, starving
/// the workload of peers). The experiment driver composes it after the scenario executor
/// in a [`CompositeRoundHook`](croupier_simulator::CompositeRoundHook), so workload
/// traffic always sees the post-dynamics NAT world of the closing round.
pub struct WorkloadExecutor {
    spec: WorkloadSpec,
    /// Shares state with the engine's delivery filter, so `can_deliver` answers with the
    /// same bindings and policies protocol messages are filtered by.
    topology: NatTopology,
    /// The run's fault plane (always installed by the driver, possibly inactive); chunk
    /// transfers are judged on the same deterministic stream as protocol messages.
    plane: FaultPlane,
    state: Arc<Mutex<WorkloadState>>,
    /// Ascending live-id scratch, refilled per barrier.
    live: Vec<NodeId>,
}

impl WorkloadExecutor {
    /// Creates the executor and hands back the shared state the driver reads the final
    /// report from.
    pub fn new(
        spec: WorkloadSpec,
        topology: NatTopology,
        plane: FaultPlane,
    ) -> (Self, Arc<Mutex<WorkloadState>>) {
        let state = Arc::new(Mutex::new(WorkloadState::default()));
        (
            WorkloadExecutor {
                spec,
                topology,
                plane,
                state: Arc::clone(&state),
                live: Vec::new(),
            },
            state,
        )
    }

    /// Builds the final report from shared state: force-seals open chunks against the
    /// current live population and computes the percentiles.
    pub fn report(state: &Mutex<WorkloadState>, live: &[NodeId]) -> WorkloadReport {
        state
            .lock()
            .expect("workload state poisoned")
            .build_report(live)
    }

    /// Judges one transfer attempt in request direction `from → to`: NAT filter first,
    /// then the fault plane (mirroring the engines' delivery choke point). Returns `true`
    /// when the chunk gets through; a block or drop is charged to the requester. The
    /// caller records the successful bytes against whichever side actually serves them.
    fn admit(
        &mut self,
        state: &mut WorkloadState,
        ops: &mut dyn HookOps,
        from: NodeId,
        to: NodeId,
        now: SimTime,
    ) -> bool {
        if !self.topology.can_deliver(from, to, now).is_delivered() {
            state.nat_blocked += 1;
            ops.record_blocked(from);
            return false;
        }
        if let Some(mut session) = self.plane.begin() {
            if session.judge(from, to).drop {
                state.fault_dropped += 1;
                drop(session);
                ops.record_blocked(from);
                return false;
            }
        }
        true
    }

    /// Whether `node` sits in the open internet (serving from it costs no NAT traversal).
    fn is_public(&self, node: NodeId) -> bool {
        self.topology.class_of(node).is_some_and(|c| c.is_public())
    }
}

impl RoundHook for WorkloadExecutor {
    fn on_round_barrier(&mut self, _round: u64, _now: SimTime) {
        // Reached only when mis-installed via the plain `set_round_hook`; without
        // `HookOps` there are no peers to sample and no ledger to charge, so the
        // workload deliberately does nothing rather than invent its own side channel.
    }

    fn on_round_barrier_with(&mut self, round: u64, now: SimTime, ops: &mut dyn HookOps) {
        if round < self.spec.start_round {
            return;
        }
        let state = Arc::clone(&self.state);
        let mut state = state.lock().expect("workload state poisoned");
        let state = &mut *state;

        let mut live = std::mem::take(&mut self.live);
        live.clear();
        ops.live_node_ids_into(&mut live);

        // 1. Seal chunks whose K-round window closed at this barrier; coverage freezes
        //    against the current live population.
        let mut index = 0;
        while index < state.active.len() {
            if round - state.active[index].publish_round >= self.spec.coverage_rounds {
                let chunk = state.active.remove(index);
                state.seal_chunk(chunk, &live);
            } else {
                index += 1;
            }
        }

        // 2. Publish new chunks (fractional rates carry over), round-robining over the
        //    publisher set fixed at the first publishing barrier.
        if round <= self.spec.last_publish_round() && self.spec.chunks_per_round > 0.0 {
            if state.publishers.is_empty() {
                // Prefer live public nodes (a real CDN ingest point is reachable);
                // ascending-id order keeps the choice canonical.
                state.publishers = self
                    .topology
                    .public_node_ids()
                    .into_iter()
                    .filter(|id| ops.is_live(*id))
                    .take(self.spec.publishers)
                    .collect();
                if state.publishers.is_empty() {
                    state.publishers = live.iter().copied().take(self.spec.publishers).collect();
                }
            }
            state.publish_carry += self.spec.chunks_per_round;
            while state.publish_carry >= 1.0 && !state.publishers.is_empty() {
                state.publish_carry -= 1.0;
                let publisher =
                    state.publishers[(state.chunks_published as usize) % state.publishers.len()];
                state.chunks_published += 1;
                let mut holders = HashSet::new();
                holders.insert(publisher);
                state.record_delivery(0);
                state.active.push(ActiveChunk {
                    publish_round: round,
                    holders,
                    pending: vec![publisher],
                    fresh: Vec::new(),
                });
            }
        }

        // 3. Push phase: every node that received a chunk last round forwards it to a
        //    sampled fan-out, chunk by chunk in publish order, pushers in receipt order.
        for chunk_idx in 0..state.active.len() {
            let pending = std::mem::take(&mut state.active[chunk_idx].pending);
            for holder in &pending {
                if !ops.is_live(*holder) {
                    continue;
                }
                for _ in 0..self.spec.fanout {
                    let Some(peer) = ops.draw_sample(*holder) else {
                        continue;
                    };
                    if peer == *holder || !ops.is_live(peer) {
                        continue;
                    }
                    state.pushes_attempted += 1;
                    if !self.admit(state, ops, *holder, peer, now) {
                        continue;
                    }
                    ops.record_transfer(*holder, peer, self.spec.chunk_bytes);
                    let latency = round - state.active[chunk_idx].publish_round;
                    if state.active[chunk_idx].holders.insert(peer) {
                        state.record_delivery(latency);
                        state.served_by_public += u64::from(self.is_public(*holder));
                        state.active[chunk_idx].fresh.push(peer);
                    } else {
                        state.total_deliveries += 1;
                    }
                }
            }
        }

        // 4. Pull phase: every live node missing at least one active chunk asks one
        //    sampled peer for everything it lacks (anti-entropy; the response rides the
        //    NAT mapping the request opens, so reachability is judged puller → holder).
        if !state.active.is_empty() {
            for node in &live {
                let missing_any = state.active.iter().any(|c| !c.holders.contains(node));
                if !missing_any {
                    continue;
                }
                let Some(peer) = ops.draw_sample(*node) else {
                    continue;
                };
                if peer == *node || !ops.is_live(peer) {
                    continue;
                }
                let serves = state
                    .active
                    .iter()
                    .any(|c| c.holders.contains(&peer) && !c.holders.contains(node));
                if !serves {
                    continue;
                }
                state.pulls_served += 1;
                // Reachability is judged in the request direction (the response rides
                // the NAT mapping the request opens) but the *bytes* are served by the
                // holder, so the ledger charges `peer`.
                if !self.admit(state, ops, *node, peer, now) {
                    continue;
                }
                let peer_public = u64::from(self.is_public(peer));
                let mut chunks_pulled = 0usize;
                for chunk in &mut state.active {
                    if chunk.holders.contains(&peer) && !chunk.holders.contains(node) {
                        chunk.holders.insert(*node);
                        let latency = round - chunk.publish_round;
                        let idx = latency as usize;
                        if state.latency_hist.len() <= idx {
                            state.latency_hist.resize(idx + 1, 0);
                        }
                        state.latency_hist[idx] += 1;
                        state.unique_deliveries += 1;
                        state.total_deliveries += 1;
                        state.served_by_public += peer_public;
                        chunks_pulled += 1;
                        chunk.fresh.push(*node);
                    }
                }
                ops.record_transfer(peer, *node, chunks_pulled * self.spec.chunk_bytes);
            }
        }

        // 5. Promote this round's receipts to next round's pushers.
        for chunk in &mut state.active {
            chunk.pending = std::mem::take(&mut chunk.fresh);
        }

        self.live = live;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_read_off_the_histogram_exactly() {
        // 90 deliveries at 1 round, 10 at 5 rounds.
        let state = WorkloadState {
            latency_hist: vec![0, 90, 0, 0, 0, 10],
            ..WorkloadState::default()
        };
        assert_eq!(state.latency_percentile(50), 1.0);
        assert_eq!(state.latency_percentile(90), 1.0);
        assert_eq!(state.latency_percentile(95), 5.0);
        assert_eq!(state.latency_percentile(99), 5.0);
        assert_eq!(WorkloadState::default().latency_percentile(95), 0.0);
    }

    #[test]
    fn sealing_freezes_coverage_against_the_live_set() {
        let mut state = WorkloadState::default();
        let live: Vec<NodeId> = (0..10).map(NodeId::new).collect();
        let mut holders = HashSet::new();
        for id in 0..9 {
            holders.insert(NodeId::new(id));
        }
        state.seal_chunk(
            ActiveChunk {
                publish_round: 1,
                holders,
                pending: Vec::new(),
                fresh: Vec::new(),
            },
            &live,
        );
        assert_eq!(state.chunks_sealed, 1);
        assert_eq!(state.expected_deliveries, 10);
        assert!((state.min_chunk_coverage - 0.9).abs() < 1e-12);
    }

    #[test]
    fn report_judges_slos() {
        let mut state = WorkloadState {
            chunks_published: 2,
            chunks_sealed: 2,
            expected_deliveries: 100,
            unique_deliveries: 100,
            total_deliveries: 120,
            latency_hist: vec![10, 80, 10],
            min_chunk_coverage: 1.0,
            ..WorkloadState::default()
        };
        let report = state.build_report(&[]);
        assert!((report.coverage - 1.0).abs() < 1e-12);
        assert!((report.duplicate_factor - 1.2).abs() < 1e-12);
        assert!(report.meets_slo(&WorkloadSlo::default()));
        let strict = WorkloadSlo {
            min_coverage: 1.01,
            ..WorkloadSlo::default()
        };
        assert!(!report.meets_slo(&strict));
    }

    #[test]
    fn spec_builders_clamp_degenerate_values() {
        let spec = WorkloadSpec::default()
            .with_publishers(0)
            .with_rate(-2.0)
            .with_window(0, 5)
            .with_coverage_rounds(0);
        assert_eq!(spec.publishers, 1);
        assert_eq!(spec.chunks_per_round, 0.0);
        assert_eq!(spec.start_round, 1);
        assert_eq!(spec.coverage_rounds, 1);
        assert_eq!(spec.last_publish_round(), 5);
    }
}
