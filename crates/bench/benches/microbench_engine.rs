//! Engine-level benchmarks: gossip-round throughput of the sharded phase-parallel engine
//! across worker-thread counts at 10k and 100k nodes.
//!
//! Each benchmark drives a full Croupier deployment (20 % public, NAT topology attached)
//! and times `run_for_rounds(1)`, i.e. one complete phase of every node's gossip round plus
//! message delivery and the barrier merge. Comparing `threads_1` against `threads_4` on a
//! multi-core machine shows the sharding speedup; `BENCH_microbench_engine.json` (emitted
//! by the criterion shim) feeds the CI `bench-regression` job.
//!
//! Thread counts beyond the machine's core count cannot speed anything up — on a
//! single-core container every `threads_*` row measures the same serial work plus
//! scheduling overhead, so judge scaling only on hardware with at least as many cores as
//! the largest thread count (the committed `ci/bench-baseline/` numbers record whatever
//! machine produced them; see the workflow comment for the `--update` refresh flow).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use croupier::{CroupierConfig, CroupierNode};
use croupier_nat::NatTopologyBuilder;
use croupier_simulator::{NatClass, NodeId, ShardedSimulation, SimulationConfig};

/// Fraction of public nodes, matching the paper's default ratio.
const PUBLIC_EVERY: u64 = 5;

fn build_sim(nodes: u64, threads: usize) -> ShardedSimulation<CroupierNode> {
    let topology = NatTopologyBuilder::new(0xE17).build();
    let mut sim = ShardedSimulation::new(
        SimulationConfig::default()
            .with_seed(0xE17)
            .with_engine_threads(threads),
    );
    sim.set_delivery_filter(topology.clone());
    for i in 0..nodes {
        let id = NodeId::new(i);
        let class = if i % PUBLIC_EVERY == 0 {
            NatClass::Public
        } else {
            NatClass::Private
        };
        topology.add_node(id, class);
        if class.is_public() {
            sim.register_public(id);
        }
        sim.add_node(id, CroupierNode::new(id, class, CroupierConfig::default()));
    }
    // Warm the views so the timed rounds exercise steady-state shuffling, not cold starts.
    sim.run_for_rounds(3);
    sim
}

fn bench_round_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    // A 100k-node round takes on the order of a second; a larger budget keeps the minimum
    // (the regression gate's metric) based on several iterations rather than one or two.
    group.measurement_time(Duration::from_secs(6));
    for &nodes in &[10_000u64, 100_000] {
        for &threads in &[1usize, 2, 4, 8] {
            let mut sim = build_sim(nodes, threads);
            group.bench_function(format!("{}k_nodes/threads_{threads}", nodes / 1_000), |b| {
                b.iter(|| sim.run_for_rounds(1))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_round_throughput);
criterion_main!(benches);
