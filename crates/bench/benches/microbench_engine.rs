//! Engine-level benchmarks: gossip-round throughput of the sharded phase-parallel engine
//! across worker-thread counts at 10k and 100k nodes, plus targeted hot-path variants.
//!
//! Each `engine/*` benchmark drives a full Croupier deployment (20 % public, NAT topology
//! attached) and times `run_for_rounds(1)`, i.e. one complete phase of every node's gossip
//! round plus message delivery and the barrier merge. Comparing `threads_1` against
//! `threads_4` on a multi-core machine shows the sharding speedup;
//! `BENCH_microbench_engine.json` (emitted by the criterion shim) feeds the CI
//! `bench-regression` job.
//!
//! PR 4 added two guarded variants for its hot paths:
//!
//! * `queue/*` — pure scheduler throughput: a fixed schedule/pop churn on the bucketed
//!   time-wheel and on the retained reference heap, so a regression in either structure
//!   (or an accidental divergence in their relative cost) is caught directly;
//! * `engine/payload_heavy` — an oversized shuffle configuration (view 20, subsets of 16,
//!   20 piggy-backed estimates) that pushes the descriptor lists past their inline
//!   capacity, guarding the `InlineVec` heap-spill path.
//!
//! Thread counts beyond the machine's core count cannot speed anything up — on a
//! single-core container every `threads_*` row measures the same serial work plus
//! scheduling overhead, so judge scaling only on hardware with at least as many cores as
//! the largest thread count (the committed `ci/bench-baseline/` numbers record whatever
//! machine produced them; see the workflow comment for the `--update` refresh flow).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, record_informational, Criterion};
use croupier::{CroupierConfig, CroupierNode};
use croupier_experiments::workload::{WorkloadExecutor, WorkloadSpec};
use croupier_nat::NatTopologyBuilder;
use croupier_simulator::event::Event;
use croupier_simulator::scheduler::reference::ReferenceEventQueue;
use croupier_simulator::scheduler::EventQueue;
use croupier_simulator::{
    FaultPlane, NatClass, NodeId, Seed, ShardedSimulation, SimTime, SimulationConfig,
};

/// Fraction of public nodes, matching the paper's default ratio.
const PUBLIC_EVERY: u64 = 5;

/// Delegates to the system allocator while tracking this thread's live heap bytes; feeds
/// the informational `bytes_per_node` report entries. The measured builds run with one
/// worker thread, whose sharded path executes inline on the measuring thread, so the
/// thread-local counter sees the whole deployment.
struct TrackingAllocator;

thread_local! {
    static LIVE_BYTES: Cell<i64> = const { Cell::new(0) };
}

// SAFETY: pure delegation to `System`; the counter is a thread-local `Cell` adjustment
// with a `try_with` guard for TLS teardown.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = LIVE_BYTES.try_with(|c| c.set(c.get() + layout.size() as i64));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        let _ = LIVE_BYTES.try_with(|c| c.set(c.get() - layout.size() as i64));
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = LIVE_BYTES.try_with(|c| {
            c.set(c.get() + new_size as i64 - layout.size() as i64);
        });
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

fn live_bytes() -> i64 {
    LIVE_BYTES.with(|c| c.get())
}

fn build_sim_with(
    nodes: u64,
    threads: usize,
    config: CroupierConfig,
) -> ShardedSimulation<CroupierNode> {
    let topology = NatTopologyBuilder::new(0xE17).build();
    let mut sim = ShardedSimulation::new(
        SimulationConfig::default()
            .with_seed(0xE17)
            .with_engine_threads(threads),
    );
    sim.set_delivery_filter(topology.clone());
    for i in 0..nodes {
        let id = NodeId::new(i);
        let class = if i % PUBLIC_EVERY == 0 {
            NatClass::Public
        } else {
            NatClass::Private
        };
        topology.add_node(id, class);
        if class.is_public() {
            sim.register_public(id);
        }
        sim.add_node(id, CroupierNode::new(id, class, config.clone()));
    }
    // Warm the views so the timed rounds exercise steady-state shuffling, not cold starts.
    sim.run_for_rounds(3);
    sim
}

fn build_sim(nodes: u64, threads: usize) -> ShardedSimulation<CroupierNode> {
    build_sim_with(nodes, threads, CroupierConfig::default())
}

fn bench_round_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    // A 100k-node round takes on the order of a second; a larger budget keeps the minimum
    // (the regression gate's metric) based on several iterations rather than one or two.
    group.measurement_time(Duration::from_secs(6));
    for &nodes in &[10_000u64, 100_000] {
        for &threads in &[1usize, 2, 4, 8] {
            let mut sim = build_sim(nodes, threads);
            group.bench_function(format!("{}k_nodes/threads_{threads}", nodes / 1_000), |b| {
                b.iter(|| sim.run_for_rounds(1))
            });
        }
    }
    // Payload-heavy: oversized subsets spill the inline payload lists to the heap; the
    // spill path must stay within a constant factor of the inline path.
    let heavy = CroupierConfig::default()
        .with_view_size(20)
        .with_shuffle_size(16)
        .with_estimate_share_size(20);
    let mut sim = build_sim_with(10_000, 1, heavy);
    group.bench_function("payload_heavy/10k_nodes/threads_1", |b| {
        b.iter(|| sim.run_for_rounds(1))
    });
    // Fault plane installed but never activated — the configuration every experiment run
    // now carries. The disabled path is one atomic load per delivery flush, so this row
    // guards that path against regressions relative to its own baseline. Its absolute
    // number is NOT comparable against `10k_nodes/threads_1`: it runs after the 100k
    // rows, whose allocator churn inflates everything that follows. The ≤3 % overhead
    // claim in DESIGN.md §15.6 is established by the interleaved A/B in
    // `examples/fault_overhead_check.rs` instead.
    let mut sim = build_sim(10_000, 1);
    sim.set_fault_plane(FaultPlane::new(Seed::new(0xE17)));
    group.bench_function("fault_plane_inactive/10k_nodes/threads_1", |b| {
        b.iter(|| sim.run_for_rounds(1))
    });
    group.finish();
}

/// Reports the steady-state heap footprint per node as informational JSON entries: the
/// live-bytes delta of building and warming a whole single-worker deployment, divided by
/// its node count. This is the number the million-node tier budget rests on — the packed
/// descriptor/estimate layouts and the u32 NAT binding tables show up here directly.
fn report_bytes_per_node(_c: &mut Criterion) {
    for &nodes in &[10_000u64, 100_000] {
        let before = live_bytes();
        let sim = build_sim(nodes, 1);
        let per_node = (live_bytes() - before).max(0) as f64 / nodes as f64;
        record_informational(
            format!("engine/{}k_nodes/bytes_per_node", nodes / 1_000),
            per_node,
        );
        drop(sim);
    }
}

/// A queue-depth-heavy schedule/pop churn: `events_per_tick` events in flight per tick
/// over a ~1 s horizon, cursor sweeping the whole wheel ring. Mirrors the per-shard event
/// load of a large deployment without any protocol work on top.
macro_rules! queue_churn {
    ($queue:expr, $ticks:expr, $events_per_tick:expr) => {{
        let queue = $queue;
        let mut popped = 0u64;
        for t in 0..$ticks {
            for e in 0..$events_per_tick {
                queue.schedule(
                    SimTime::from_millis(t + 1 + (t + e) % 1_000),
                    Event::Deliver {
                        from: NodeId::new(e),
                        to: NodeId::new(t),
                        msg: (),
                    },
                );
            }
            while queue.peek_time().is_some_and(|due| due.as_millis() <= t) {
                queue.pop();
                popped += 1;
            }
        }
        while queue.pop().is_some() {
            popped += 1;
        }
        popped
    }};
}

/// One gossip round of a 10k-node deployment with a continuously publishing
/// dissemination stream riding the round barriers: measures the workload engine's
/// per-round cost (publish, sampled push fan-out, anti-entropy pull, chunk sealing) on
/// top of the gossip itself. Compare against `engine/10k_nodes/threads_1` to see the
/// workload plane's overhead.
fn bench_workload_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    let topology = NatTopologyBuilder::new(0xE17).build();
    let mut sim: ShardedSimulation<CroupierNode> = ShardedSimulation::new(
        SimulationConfig::default()
            .with_seed(0xE17)
            .with_engine_threads(1),
    );
    sim.set_delivery_filter(topology.clone());
    let plane = FaultPlane::new(Seed::new(0xE17));
    sim.set_fault_plane(plane.clone());
    let config = CroupierConfig::default();
    for i in 0..10_000u64 {
        let id = NodeId::new(i);
        let class = if i % PUBLIC_EVERY == 0 {
            NatClass::Public
        } else {
            NatClass::Private
        };
        topology.add_node(id, class);
        if class.is_public() {
            sim.register_public(id);
        }
        sim.add_node(id, CroupierNode::new(id, class, config.clone()));
    }
    // Publish from round 1 indefinitely, so every timed round carries a full seal
    // window's worth of active chunks (rate × K in steady state).
    let spec = WorkloadSpec::default()
        .with_window(1, u64::MAX / 2)
        .with_rate(4.0)
        .with_fanout(4)
        .with_coverage_rounds(10);
    let (executor, _state) = WorkloadExecutor::new(spec, topology.clone(), plane);
    sim.set_sampled_round_hook(Box::new(executor));
    // Warm past the first seal so the timed rounds see the steady-state chunk set.
    sim.run_for_rounds(13);
    group.bench_function("steady_state/10k_nodes/threads_1", |b| {
        b.iter(|| sim.run_for_rounds(1))
    });
    group.finish();
}

fn bench_queue_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(4));
    const TICKS: u64 = 2_000;
    const PER_TICK: u64 = 100;
    group.bench_function("wheel/depth_100k", |b| {
        b.iter(|| {
            let mut queue: EventQueue<()> = EventQueue::new();
            black_box(queue_churn!(&mut queue, TICKS, PER_TICK))
        })
    });
    group.bench_function("reference_heap/depth_100k", |b| {
        b.iter(|| {
            let mut queue: ReferenceEventQueue<()> = ReferenceEventQueue::new();
            black_box(queue_churn!(&mut queue, TICKS, PER_TICK))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_round_throughput,
    bench_workload_steady_state,
    bench_queue_depth,
    report_bytes_per_node
);
criterion_main!(benches);
