//! Regenerates the series behind the paper's Figure 2_dynamic_ratio at a reduced scale and
//! benchmarks the simulation that produces them. Run the `figures` binary with
//! `--scale paper` for the full-scale data.

use criterion::{criterion_group, criterion_main, Criterion};
use croupier_bench::SIMULATION_SAMPLE_SIZE;
use croupier_experiments::figures::fig2_dynamic_ratio;
use croupier_experiments::output::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_dynamic_ratio");
    group.sample_size(SIMULATION_SAMPLE_SIZE);
    group.bench_function("tiny", |b| b.iter(|| fig2_dynamic_ratio::run(Scale::Tiny)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
