//! Regenerates the catastrophic-failure connectivity comparison of the paper's Figure 7(b)
//! at a reduced scale and benchmarks the underlying simulations.

use criterion::{criterion_group, criterion_main, Criterion};
use croupier_bench::SIMULATION_SAMPLE_SIZE;
use croupier_experiments::figures::fig8_failure;
use croupier_experiments::output::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_failure");
    group.sample_size(SIMULATION_SAMPLE_SIZE);
    group.bench_function("tiny", |b| b.iter(|| fig8_failure::run(Scale::Tiny)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
