//! Regenerates the series behind the paper's Figure 3_system_size at a reduced scale and
//! benchmarks the simulation that produces them. Run the `figures` binary with
//! `--scale paper` for the full-scale data.

use criterion::{criterion_group, criterion_main, Criterion};
use croupier_bench::SIMULATION_SAMPLE_SIZE;
use croupier_experiments::figures::fig3_system_size;
use croupier_experiments::output::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_system_size");
    group.sample_size(SIMULATION_SAMPLE_SIZE);
    group.bench_function("tiny", |b| b.iter(|| fig3_system_size::run(Scale::Tiny)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
