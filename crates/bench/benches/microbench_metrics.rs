//! Metrics-pipeline benchmarks: the full per-sample graph analysis (average path length
//! over sampled BFS sources, average clustering coefficient, largest-component fraction)
//! on synthetic 10k- and 100k-node overlay snapshots.
//!
//! Two implementations run on identical snapshots:
//!
//! * `naive_pipeline` — the pre-CSR per-sample cost, retained in
//!   `croupier_metrics::reference`: every metric rebuilds a
//!   `BTreeMap<NodeId, BTreeSet<NodeId>>` overlay graph (three rebuilds per sample) and
//!   BFS runs on `HashMap` state.
//! * `csr_pipeline` — one shared [`MetricsContext`] build feeding all three metrics:
//!   flat CSR adjacency, epoch-buffer frontier BFS, sorted-row intersection clustering.
//!
//! The two produce bit-identical results (enforced by `tests/property_tests.rs`); the
//! ratio between their rows in `BENCH_microbench_metrics.json` is the documented speedup
//! of the CSR rewrite, and the `csr_pipeline` rows are guarded against regression by the
//! CI `bench-regression` job. `csr_pipeline_threads_4` additionally fans the multi-source
//! BFS over four worker threads — judge its scaling only on hardware with that many cores.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use croupier_metrics::reference::{
    naive_average_clustering_coefficient, naive_average_path_length,
    naive_largest_component_fraction,
};
use croupier_metrics::{MetricsContext, NodeObservation, OverlaySnapshot};
use croupier_simulator::{NatClass, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Out-edges per node: roughly a Croupier node's two view capacities.
const OUT_DEGREE: u64 = 20;
/// BFS sources per sample, matching the sampled mode the figure runs use.
const SOURCES: usize = 32;

/// Builds a random overlay snapshot shaped like a steady-state capture: every node holds
/// `OUT_DEGREE` directed edges to uniformly random peers (self-loops and duplicates
/// included, as real captures contain them too).
fn synthetic_snapshot(nodes: u64, seed: u64) -> OverlaySnapshot {
    let mut rng = SmallRng::seed_from_u64(seed);
    let observations: Vec<NodeObservation> = (0..nodes)
        .map(|i| NodeObservation {
            id: NodeId::new(i),
            class: if i % 5 == 0 {
                NatClass::Public
            } else {
                NatClass::Private
            },
            ratio_estimate: Some(0.2),
            rounds_executed: 50,
        })
        .collect();
    let mut edges = Vec::with_capacity((nodes * OUT_DEGREE) as usize);
    for i in 0..nodes {
        for _ in 0..OUT_DEGREE {
            edges.push((NodeId::new(i), NodeId::new(rng.gen_range(0..nodes))));
        }
    }
    edges.sort_unstable();
    OverlaySnapshot::from_parts(observations, edges)
}

/// The pre-CSR per-sample pipeline: three independent tree/hash graph rebuilds.
fn naive_pipeline(snapshot: &OverlaySnapshot, rng: &mut SmallRng) -> (Option<f64>, f64, f64) {
    (
        naive_average_path_length(snapshot, SOURCES, rng),
        naive_average_clustering_coefficient(snapshot),
        naive_largest_component_fraction(snapshot),
    )
}

/// The CSR per-sample pipeline: one build shared by all three metrics.
fn csr_pipeline(
    ctx: &mut MetricsContext,
    snapshot: &OverlaySnapshot,
    rng: &mut SmallRng,
) -> (Option<f64>, f64, f64) {
    ctx.build(snapshot);
    (
        ctx.average_path_length(SOURCES, rng),
        ctx.average_clustering_coefficient(),
        ctx.largest_component_fraction(),
    )
}

fn bench_metrics_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group.sample_size(10);
    // A naive 100k-node sample runs for seconds; the budget keeps total bench time sane
    // while still collecting several iterations of the fast rows.
    group.measurement_time(Duration::from_secs(12));
    for &nodes in &[10_000u64, 100_000] {
        let snapshot = synthetic_snapshot(nodes, 0xC5A0 + nodes);
        let label = format!("{}k_nodes", nodes / 1_000);
        let mut rng = SmallRng::seed_from_u64(9);
        group.bench_function(format!("{label}/naive_pipeline"), |b| {
            b.iter(|| naive_pipeline(&snapshot, &mut rng))
        });
        for threads in [1usize, 4] {
            let mut ctx = MetricsContext::new(threads);
            let mut rng = SmallRng::seed_from_u64(9);
            let name = match threads {
                1 => format!("{label}/csr_pipeline"),
                t => format!("{label}/csr_pipeline_threads_{t}"),
            };
            group.bench_function(name, |b| {
                b.iter(|| csr_pipeline(&mut ctx, &snapshot, &mut rng))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_metrics_pipeline);
criterion_main!(benches);
