//! Metrics-pipeline benchmarks: the full per-sample graph analysis (average path length
//! over sampled BFS sources, average clustering coefficient, largest-component fraction)
//! on synthetic 10k- and 100k-node overlay snapshots.
//!
//! Two implementations run on identical snapshots:
//!
//! * `naive_pipeline` — the pre-CSR per-sample cost, retained in
//!   `croupier_metrics::reference`: every metric rebuilds a
//!   `BTreeMap<NodeId, BTreeSet<NodeId>>` overlay graph (three rebuilds per sample) and
//!   BFS runs on `HashMap` state.
//! * `csr_pipeline` — one shared [`MetricsContext`] build feeding all three metrics:
//!   flat CSR adjacency, epoch-buffer frontier BFS, sorted-row intersection clustering.
//!
//! The two produce bit-identical results (enforced by `tests/property_tests.rs`); the
//! ratio between their rows in `BENCH_microbench_metrics.json` is the documented speedup
//! of the CSR rewrite, and the `csr_pipeline` rows are guarded against regression by the
//! CI `bench-regression` job. `csr_pipeline_threads_4` additionally fans the multi-source
//! BFS over four worker threads — judge its scaling only on hardware with that many cores.
//!
//! The `indegree` group benchmarks the in-degree family the same way: `full` recounts
//! the distribution, stats and Gini coefficient from the snapshot's edge list on every
//! sample, `incremental` patches a pre-synced [`IncrementalIndegree`] from the
//! snapshot's edge delta (a 0.5% edge churn, the steady-state shape) — the ratio is the
//! documented speedup of the delta fast path. The `driver` group measures the pipelined
//! metrics plane end to end: one complete experiment run with the per-sample analysis
//! synchronous (`overlap/sync`) vs offloaded to two metrics workers
//! (`overlap/workers_2`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use croupier::{CroupierConfig, CroupierNode};
use croupier_experiments::runner::{run_pss, ExperimentParams};
use croupier_metrics::reference::{
    naive_average_clustering_coefficient, naive_average_path_length,
    naive_largest_component_fraction,
};
use croupier_metrics::{
    indegree_gini, indegree_histogram, indegree_stats, IncrementalIndegree, MetricsContext,
    NodeObservation, OverlaySnapshot,
};
use croupier_simulator::{NatClass, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Out-edges per node: roughly a Croupier node's two view capacities.
const OUT_DEGREE: u64 = 20;
/// BFS sources per sample, matching the sampled mode the figure runs use.
const SOURCES: usize = 32;

/// Builds a random overlay snapshot shaped like a steady-state capture: every node holds
/// `OUT_DEGREE` directed edges to uniformly random peers (self-loops and duplicates
/// included, as real captures contain them too).
fn synthetic_snapshot(nodes: u64, seed: u64) -> OverlaySnapshot {
    let mut rng = SmallRng::seed_from_u64(seed);
    let observations: Vec<NodeObservation> = (0..nodes)
        .map(|i| NodeObservation {
            id: NodeId::new(i),
            class: if i % 5 == 0 {
                NatClass::Public
            } else {
                NatClass::Private
            },
            ratio_estimate: Some(0.2),
            rounds_executed: 50,
        })
        .collect();
    let mut edges = Vec::with_capacity((nodes * OUT_DEGREE) as usize);
    for i in 0..nodes {
        for _ in 0..OUT_DEGREE {
            edges.push((NodeId::new(i), NodeId::new(rng.gen_range(0..nodes))));
        }
    }
    edges.sort_unstable();
    OverlaySnapshot::from_parts(observations, edges)
}

/// The pre-CSR per-sample pipeline: three independent tree/hash graph rebuilds.
fn naive_pipeline(snapshot: &OverlaySnapshot, rng: &mut SmallRng) -> (Option<f64>, f64, f64) {
    (
        naive_average_path_length(snapshot, SOURCES, rng),
        naive_average_clustering_coefficient(snapshot),
        naive_largest_component_fraction(snapshot),
    )
}

/// The CSR per-sample pipeline: one build shared by all three metrics.
fn csr_pipeline(
    ctx: &mut MetricsContext,
    snapshot: &OverlaySnapshot,
    rng: &mut SmallRng,
) -> (Option<f64>, f64, f64) {
    ctx.build(snapshot);
    (
        ctx.average_path_length(SOURCES, rng),
        ctx.average_clustering_coefficient(),
        ctx.largest_component_fraction(),
    )
}

fn bench_metrics_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group.sample_size(10);
    // A naive 100k-node sample runs for seconds; the budget keeps total bench time sane
    // while still collecting several iterations of the fast rows.
    group.measurement_time(Duration::from_secs(12));
    for &nodes in &[10_000u64, 100_000] {
        let snapshot = synthetic_snapshot(nodes, 0xC5A0 + nodes);
        let label = format!("{}k_nodes", nodes / 1_000);
        let mut rng = SmallRng::seed_from_u64(9);
        group.bench_function(format!("{label}/naive_pipeline"), |b| {
            b.iter(|| naive_pipeline(&snapshot, &mut rng))
        });
        for threads in [1usize, 4] {
            let mut ctx = MetricsContext::new(threads);
            let mut rng = SmallRng::seed_from_u64(9);
            let name = match threads {
                1 => format!("{label}/csr_pipeline"),
                t => format!("{label}/csr_pipeline_threads_{t}"),
            };
            group.bench_function(name, |b| {
                b.iter(|| csr_pipeline(&mut ctx, &snapshot, &mut rng))
            });
        }
    }
    group.finish();
}

/// Stages the steady-state shape of the incremental in-degree fast path: a tracker
/// synced to capture `k` and a snapshot holding capture `k + 1` with a valid edge delta
/// (0.5% of the directed edges re-targeted since `k`).
fn staged_incremental(nodes: u64) -> (IncrementalIndegree, OverlaySnapshot) {
    let mut rng = SmallRng::seed_from_u64(0x1DE6 + nodes);
    let base = synthetic_snapshot(nodes, 0xC5A0 + nodes);
    let mut snapshot = OverlaySnapshot::default();
    snapshot.enable_delta_tracking();
    snapshot.replace_from_parts(base.nodes.clone(), base.edges.clone());
    let mut tracker = IncrementalIndegree::new();
    tracker.update(&snapshot);
    let mut edges = base.edges.clone();
    let churn = edges.len() / 200;
    for _ in 0..churn {
        let i = rng.gen_range(0..edges.len());
        edges[i].1 = NodeId::new(rng.gen_range(0..nodes));
    }
    snapshot.replace_from_parts(base.nodes, edges);
    // Guard the staging itself: the delta must take the fast path and reproduce the full
    // recount bit for bit, otherwise the row would time the wrong code path.
    let mut check = tracker.clone();
    check.update(&snapshot);
    assert_eq!(check.fast_update_count(), 1, "staged delta must be fast");
    assert_eq!(check.gini().to_bits(), indegree_gini(&snapshot).to_bits());
    (tracker, snapshot)
}

fn bench_indegree(c: &mut Criterion) {
    let mut group = c.benchmark_group("indegree");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    for &nodes in &[10_000u64, 100_000] {
        let label = format!("{}k_nodes", nodes / 1_000);
        let (tracker, snapshot) = staged_incremental(nodes);
        group.bench_function(format!("{label}/full"), |b| {
            b.iter(|| {
                (
                    indegree_histogram(&snapshot),
                    indegree_stats(&snapshot),
                    indegree_gini(&snapshot),
                )
            })
        });
        group.bench_function(format!("{label}/incremental"), |b| {
            // The clone in the setup hands every iteration a tracker still synced to
            // capture k, so the routine applies the k → k+1 delta exactly once.
            b.iter_batched(
                || tracker.clone(),
                |mut t| {
                    t.update(&snapshot);
                    (t.stats(), t.gini())
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// One complete experiment run with the full graph-metric pipeline per sample; the
/// `workers` knob is the only difference between the `driver` rows.
fn overlap_run(workers: usize) -> f64 {
    let params = ExperimentParams::default()
        .with_seed(0xD21)
        .with_population(80, 320)
        .with_rounds(40)
        .with_sample_every(2)
        .with_graph_metrics(16)
        .with_incremental_indegree()
        .with_metrics_workers(workers);
    let out = run_pss(&params, |id, class, _| {
        CroupierNode::new(id, class, CroupierConfig::default())
    });
    out.last_sample()
        .and_then(|s| s.indegree_gini)
        .unwrap_or(0.0)
}

fn bench_driver_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("driver");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(15));
    group.bench_function("overlap/sync", |b| b.iter(|| overlap_run(0)));
    group.bench_function("overlap/workers_2", |b| b.iter(|| overlap_run(2)));
    group.finish();
}

criterion_group!(
    benches,
    bench_metrics_pipeline,
    bench_indegree,
    bench_driver_overlap
);
criterion_main!(benches);
