//! Ablation of Croupier's design choices called out in `DESIGN.md`: the *tail* neighbour
//! selection policy and the *swapper* merge policy versus their alternatives (*random*
//! selection, *healer* merge). Each combination runs the same small workload; Criterion
//! reports the simulation cost, and the bench prints the resulting estimation error so the
//! quality impact of each choice is visible alongside the timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use croupier::{CroupierConfig, CroupierNode, MergePolicy, SelectionPolicy};
use croupier_bench::SIMULATION_SAMPLE_SIZE;
use croupier_experiments::runner::{run_pss, ExperimentParams};

fn params() -> ExperimentParams {
    ExperimentParams::default()
        .with_seed(0xAB1A)
        .with_population(10, 40)
        .with_rounds(60)
        .with_sample_every(10)
}

fn combos() -> Vec<(&'static str, CroupierConfig)> {
    vec![
        (
            "tail+swapper (paper)",
            CroupierConfig::default()
                .with_selection(SelectionPolicy::Tail)
                .with_merge(MergePolicy::Swapper),
        ),
        (
            "tail+healer",
            CroupierConfig::default()
                .with_selection(SelectionPolicy::Tail)
                .with_merge(MergePolicy::Healer),
        ),
        (
            "random+swapper",
            CroupierConfig::default()
                .with_selection(SelectionPolicy::Random)
                .with_merge(MergePolicy::Swapper),
        ),
        (
            "random+healer",
            CroupierConfig::default()
                .with_selection(SelectionPolicy::Random)
                .with_merge(MergePolicy::Healer),
        ),
    ]
}

fn run_combo(config: &CroupierConfig) -> f64 {
    let config = config.clone();
    let out = run_pss(&params(), move |id, class, _| {
        CroupierNode::new(id, class, config.clone())
    });
    out.tail_avg_error(3).unwrap_or(f64::NAN)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_policies");
    group.sample_size(SIMULATION_SAMPLE_SIZE);
    for (label, config) in combos() {
        let error = run_combo(&config);
        println!("ablation_policies: {label}: steady-state avg estimation error = {error:.4}");
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| run_combo(config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
