//! Regenerates the per-class protocol-overhead comparison of the paper's Figure 7(a) at a
//! reduced scale and benchmarks the four underlying simulations.

use criterion::{criterion_group, criterion_main, Criterion};
use croupier_bench::SIMULATION_SAMPLE_SIZE;
use croupier_experiments::figures::fig7_overhead;
use croupier_experiments::output::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_overhead");
    group.sample_size(SIMULATION_SAMPLE_SIZE);
    group.bench_function("tiny", |b| b.iter(|| fig7_overhead::run(Scale::Tiny)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
