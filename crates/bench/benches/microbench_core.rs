//! Micro-benchmarks of Croupier's hot paths: view merging, ratio-estimator bookkeeping,
//! sampling, and a complete simulated gossip round of a mid-sized system.

use criterion::{criterion_group, criterion_main, Criterion};
use croupier::{
    sample_from_views, CroupierConfig, CroupierNode, Descriptor, EstimateRecord, RatioEstimator,
    View,
};
use croupier_nat::NatTopologyBuilder;
use croupier_simulator::{NatClass, NodeId, Simulation, SimulationConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn filled_view(capacity: usize, n: u64) -> View {
    let mut view = View::new(capacity);
    for i in 0..n {
        view.insert(Descriptor::with_age(
            NodeId::new(i),
            NatClass::Public,
            (i % 7) as u32,
        ));
    }
    view
}

fn bench_view_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("view");
    let received: Vec<Descriptor> = (100..105u64)
        .map(|i| Descriptor::new(NodeId::new(i), NatClass::Public))
        .collect();
    let sent: Vec<Descriptor> = (0..5u64)
        .map(|i| Descriptor::new(NodeId::new(i), NatClass::Public))
        .collect();
    group.bench_function("swapper_merge_10", |b| {
        b.iter_batched(
            || filled_view(10, 10),
            |mut view| view.apply_exchange_swapper(&sent, &received, NodeId::new(999)),
            criterion::BatchSize::SmallInput,
        )
    });
    let mut rng = SmallRng::seed_from_u64(1);
    let mut view = filled_view(10, 10);
    group.bench_function("random_subset_5_of_10", |b| {
        b.iter(|| view.random_subset(5, &mut rng))
    });
    group.finish();
}

fn bench_estimator(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator");
    group.bench_function("advance_round_alpha25", |b| {
        b.iter_batched(
            || {
                let mut est = RatioEstimator::new(NatClass::Public, 25, 50);
                for i in 0..20u64 {
                    est.ingest(
                        &[EstimateRecord::new(NodeId::new(i), 0.2)],
                        NodeId::new(999),
                    );
                }
                est.record_request(NatClass::Private);
                est.record_request(NatClass::Public);
                est
            },
            |mut est| est.advance_round(),
            criterion::BatchSize::SmallInput,
        )
    });
    let mut est = RatioEstimator::new(NatClass::Private, 25, 50);
    for i in 0..50u64 {
        est.ingest(
            &[EstimateRecord::new(NodeId::new(i), 0.2)],
            NodeId::new(999),
        );
    }
    group.bench_function("estimate_50_cached", |b| b.iter(|| est.estimate()));
    group.finish();
}

fn bench_sampler(c: &mut Criterion) {
    let public = filled_view(10, 10);
    let private = filled_view(10, 10);
    let mut rng = SmallRng::seed_from_u64(2);
    c.bench_function("sampler/draw", |b| {
        b.iter(|| sample_from_views(&public, &private, Some(0.2), &mut rng))
    });
}

fn bench_simulated_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(20);
    group.bench_function("croupier_100_nodes_one_round", |b| {
        b.iter_batched(
            || {
                let topology = NatTopologyBuilder::new(7).build();
                let mut sim = Simulation::new(SimulationConfig::default().with_seed(7));
                sim.set_delivery_filter(topology.clone());
                for i in 0..100u64 {
                    let id = NodeId::new(i);
                    let class = if i < 20 {
                        NatClass::Public
                    } else {
                        NatClass::Private
                    };
                    topology.add_node(id, class);
                    if class.is_public() {
                        sim.register_public(id);
                    }
                    sim.add_node(id, CroupierNode::new(id, class, CroupierConfig::default()));
                }
                sim.run_for_rounds(5);
                sim
            },
            |mut sim| sim.run_for_rounds(1),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_view_merge,
    bench_estimator,
    bench_sampler,
    bench_simulated_round
);
criterion_main!(benches);
