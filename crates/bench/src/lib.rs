//! # croupier-bench
//!
//! Criterion benchmark harness for the Croupier reproduction. Each bench target regenerates
//! one table or figure of the paper (at a reduced scale so Criterion can iterate) and
//! reports how long the underlying simulation takes; the full-scale figures themselves are
//! produced by the `figures` binary of `croupier-experiments`:
//!
//! ```text
//! cargo run --release -p croupier-experiments --bin figures -- --scale paper all
//! cargo bench --workspace
//! ```
//!
//! | bench target         | paper artefact                             |
//! |-----------------------|--------------------------------------------|
//! | `fig1_stable_ratio`   | Fig. 1(a)/(b) — stable-ratio estimation     |
//! | `fig2_dynamic_ratio`  | Fig. 2(a)/(b) — dynamic-ratio estimation    |
//! | `fig3_system_size`    | Fig. 3(a)/(b) — estimation vs system size   |
//! | `fig4_ratio_sweep`    | Fig. 4(a)/(b) — estimation vs ratio         |
//! | `fig5_churn`          | Fig. 5(a)/(b) — estimation under churn      |
//! | `fig6_randomness`     | Fig. 6(a)/(b)/(c) — randomness properties   |
//! | `fig7_overhead`       | Fig. 7(a) — protocol overhead per class     |
//! | `fig7_failure`        | Fig. 7(b) — connectivity after failure      |
//! | `ablation_policies`   | design-choice ablation (selection/merge)    |
//! | `microbench_core`     | hot-path micro-benchmarks (view, estimator) |
//! | `microbench_engine`   | sharded-engine round throughput (1/2/4/8 threads, 10k/100k nodes) |
//!
//! Every run additionally emits `BENCH_<target>.json` (mean ns, ops/sec per benchmark)
//! into `target/bench-json/` — see the criterion shim's docs and `cargo xtask
//! bench-compare`, which the CI `bench-regression` job uses to flag >25 % throughput
//! regressions in `microbench_core` and `microbench_engine` against the committed
//! baseline in `ci/bench-baseline/`.

/// Number of Criterion samples used by the simulation-level benches; the underlying runs
/// are full (if reduced-scale) experiments, so a small sample count keeps `cargo bench`
/// within a few minutes.
pub const SIMULATION_SAMPLE_SIZE: usize = 10;
