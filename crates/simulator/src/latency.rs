//! Network latency models.
//!
//! The paper models pairwise latencies on the King data set (Gummadi et al., 2002). Because
//! the original trace files are not redistributable, [`KingLatencyModel`] synthesises a
//! latency matrix with the same qualitative shape: a heavy-tailed distribution with a median
//! one-way delay of a few tens of milliseconds and a long tail of slow transcontinental
//! paths. The protocols under study only depend on that shape, not on exact host pairs (see
//! the substitution table in `DESIGN.md`).

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::time::SimDuration;
use crate::types::NodeId;

/// A source of one-way message latencies between pairs of nodes.
///
/// Implementations may be stateful (e.g. caching per-node coordinates) and receive a
/// dedicated random stream from the engine.
pub trait LatencyModel {
    /// Samples the one-way latency for a message from `from` to `to`.
    fn sample(&mut self, from: NodeId, to: NodeId, rng: &mut SmallRng) -> SimDuration;

    /// Samples a latency without mutating the model, for phase-parallel engines.
    ///
    /// The sharded engine calls this concurrently from several worker threads, each passing
    /// the *sending node's* private random stream, so implementations must derive any
    /// per-node state deterministically from the node ids (never lazily from `rng`): the
    /// result may depend only on `(from, to)` and on draws from `rng`. The default
    /// implementation panics; every model shipped with this crate overrides it.
    fn sample_shared(&self, from: NodeId, to: NodeId, rng: &mut SmallRng) -> SimDuration {
        let _ = (from, to, rng);
        unimplemented!("this latency model does not support phase-parallel execution")
    }
}

/// Fixed latency for every message; useful in unit tests and micro-benchmarks.
///
/// # Examples
///
/// ```
/// use croupier_simulator::{ConstantLatency, LatencyModel, NodeId, SimDuration};
/// use rand::SeedableRng;
///
/// let mut model = ConstantLatency::new(SimDuration::from_millis(25));
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let d = model.sample(NodeId::new(0), NodeId::new(1), &mut rng);
/// assert_eq!(d, SimDuration::from_millis(25));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConstantLatency {
    latency: SimDuration,
}

impl ConstantLatency {
    /// Creates a model that always returns `latency`.
    pub fn new(latency: SimDuration) -> Self {
        ConstantLatency { latency }
    }
}

impl Default for ConstantLatency {
    fn default() -> Self {
        ConstantLatency::new(SimDuration::from_millis(50))
    }
}

impl LatencyModel for ConstantLatency {
    fn sample(&mut self, _from: NodeId, _to: NodeId, _rng: &mut SmallRng) -> SimDuration {
        self.latency
    }

    fn sample_shared(&self, _from: NodeId, _to: NodeId, _rng: &mut SmallRng) -> SimDuration {
        self.latency
    }
}

/// Latency drawn uniformly at random from a closed interval, independently per message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UniformLatency {
    min_ms: u64,
    max_ms: u64,
}

impl UniformLatency {
    /// Creates a model sampling uniformly from `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: SimDuration, max: SimDuration) -> Self {
        assert!(
            min.as_millis() <= max.as_millis(),
            "uniform latency interval must satisfy min <= max"
        );
        UniformLatency {
            min_ms: min.as_millis(),
            max_ms: max.as_millis(),
        }
    }
}

impl LatencyModel for UniformLatency {
    fn sample(&mut self, _from: NodeId, _to: NodeId, rng: &mut SmallRng) -> SimDuration {
        SimDuration::from_millis(rng.gen_range(self.min_ms..=self.max_ms))
    }

    fn sample_shared(&self, _from: NodeId, _to: NodeId, rng: &mut SmallRng) -> SimDuration {
        SimDuration::from_millis(rng.gen_range(self.min_ms..=self.max_ms))
    }
}

/// Synthetic King-data-set-like latency model.
///
/// Every node is lazily assigned a point in a two-dimensional virtual coordinate space plus
/// a per-node access delay. The one-way latency between two nodes is the Euclidean distance
/// between their coordinates plus both access delays plus per-message jitter. The default
/// parameters give a median one-way delay of roughly 40 ms and a 99th percentile of a few
/// hundred milliseconds, matching the published statistics of the King measurements closely
/// enough for gossip-convergence experiments.
#[derive(Clone, Debug)]
pub struct KingLatencyModel {
    /// Side length of the virtual coordinate square, in milliseconds of propagation delay.
    plane_side_ms: f64,
    /// Maximum per-node access-link delay in milliseconds.
    max_access_ms: f64,
    /// Fractional jitter applied per message (0.1 = +/-10%).
    jitter_frac: f64,
    /// Minimum latency floor in milliseconds.
    floor_ms: f64,
    coords: HashMap<NodeId, (f64, f64, f64)>,
}

impl KingLatencyModel {
    /// Creates the model with the default, King-like parameters.
    pub fn new() -> Self {
        KingLatencyModel {
            plane_side_ms: 90.0,
            max_access_ms: 15.0,
            jitter_frac: 0.15,
            floor_ms: 2.0,
            coords: HashMap::new(),
        }
    }

    /// Overrides the side length of the coordinate plane (larger = higher typical latency).
    pub fn with_plane_side_ms(mut self, side: f64) -> Self {
        self.plane_side_ms = side;
        self
    }

    /// Overrides the per-message jitter fraction.
    pub fn with_jitter(mut self, jitter_frac: f64) -> Self {
        self.jitter_frac = jitter_frac;
        self
    }

    fn coords_for(&mut self, node: NodeId, rng: &mut SmallRng) -> (f64, f64, f64) {
        let side = self.plane_side_ms;
        let access = self.max_access_ms;
        *self.coords.entry(node).or_insert_with(|| {
            let x = rng.gen_range(0.0..side);
            let y = rng.gen_range(0.0..side);
            // Access delays follow a mildly heavy-tailed distribution: most nodes are on
            // fast links, a few sit behind slow DSL-like links.
            let u: f64 = rng.gen_range(0.0f64..1.0);
            let a = access * u.powi(3);
            (x, y, a)
        })
    }

    /// Order-independent coordinates: derived by hashing the node id rather than by lazily
    /// drawing from the shared latency stream, so every thread (and every sampling order)
    /// sees the same virtual position for a node. Used by [`LatencyModel::sample_shared`].
    fn hashed_coords(&self, node: NodeId) -> (f64, f64, f64) {
        const COORD_SALT: u64 = 0x4b49_4e47_5eed_c0de;
        let h1 = crate::rng::splitmix64(node.as_u64() ^ COORD_SALT);
        let h2 = crate::rng::splitmix64(h1);
        let h3 = crate::rng::splitmix64(h2);
        let unit = |h: u64| (h >> 11) as f64 / (1u64 << 53) as f64;
        let x = unit(h1) * self.plane_side_ms;
        let y = unit(h2) * self.plane_side_ms;
        let a = self.max_access_ms * unit(h3).powi(3);
        (x, y, a)
    }
}

impl Default for KingLatencyModel {
    fn default() -> Self {
        Self::new()
    }
}

impl KingLatencyModel {
    fn combine(&self, c1: (f64, f64, f64), c2: (f64, f64, f64), rng: &mut SmallRng) -> SimDuration {
        let (x1, y1, a1) = c1;
        let (x2, y2, a2) = c2;
        let dist = ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt();
        let base = dist + a1 + a2 + self.floor_ms;
        let jitter = if self.jitter_frac > 0.0 {
            1.0 + rng.gen_range(-self.jitter_frac..self.jitter_frac)
        } else {
            1.0
        };
        SimDuration::from_millis_f64(base * jitter)
    }
}

impl LatencyModel for KingLatencyModel {
    fn sample(&mut self, from: NodeId, to: NodeId, rng: &mut SmallRng) -> SimDuration {
        let c1 = self.coords_for(from, rng);
        let c2 = self.coords_for(to, rng);
        self.combine(c1, c2, rng)
    }

    fn sample_shared(&self, from: NodeId, to: NodeId, rng: &mut SmallRng) -> SimDuration {
        self.combine(self.hashed_coords(from), self.hashed_coords(to), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xFEED)
    }

    #[test]
    fn constant_latency_is_constant() {
        let mut m = ConstantLatency::new(SimDuration::from_millis(10));
        let mut r = rng();
        for i in 0..20 {
            let d = m.sample(NodeId::new(i), NodeId::new(i + 1), &mut r);
            assert_eq!(d, SimDuration::from_millis(10));
        }
    }

    #[test]
    fn uniform_latency_stays_in_bounds() {
        let mut m = UniformLatency::new(SimDuration::from_millis(5), SimDuration::from_millis(15));
        let mut r = rng();
        for _ in 0..200 {
            let d = m.sample(NodeId::new(0), NodeId::new(1), &mut r).as_millis();
            assert!((5..=15).contains(&d));
        }
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn uniform_latency_rejects_inverted_interval() {
        UniformLatency::new(SimDuration::from_millis(10), SimDuration::from_millis(5));
    }

    #[test]
    fn king_latency_is_positive_and_bounded() {
        let mut m = KingLatencyModel::new();
        let mut r = rng();
        for i in 0..100u64 {
            let d = m
                .sample(NodeId::new(i % 10), NodeId::new((i + 1) % 10), &mut r)
                .as_millis();
            assert!(d >= 1, "latency should respect the floor, got {d}");
            assert!(d < 500, "latency unexpectedly large: {d}");
        }
    }

    #[test]
    fn king_latency_reuses_coordinates() {
        let mut m = KingLatencyModel::new().with_jitter(0.0);
        let mut r = rng();
        let d1 = m.sample(NodeId::new(1), NodeId::new(2), &mut r);
        let d2 = m.sample(NodeId::new(1), NodeId::new(2), &mut r);
        assert_eq!(d1, d2, "without jitter the same pair has a stable latency");
    }

    #[test]
    fn king_latency_median_is_realistic() {
        let mut m = KingLatencyModel::new();
        let mut r = rng();
        let mut samples: Vec<u64> = Vec::new();
        for i in 0..200u64 {
            for j in 0..5u64 {
                samples.push(
                    m.sample(NodeId::new(i), NodeId::new(1000 + j), &mut r)
                        .as_millis(),
                );
            }
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        assert!(
            (20..=120).contains(&median),
            "median one-way latency should sit in the tens of milliseconds, got {median}"
        );
    }

    #[test]
    fn shared_sampling_is_order_independent() {
        let m = KingLatencyModel::new().with_jitter(0.0);
        let mut r1 = rng();
        let mut r2 = rng();
        // Sampling pairs in different orders must not change any pair's latency.
        let forward: Vec<_> = (0..20u64)
            .map(|i| m.sample_shared(NodeId::new(i), NodeId::new(i + 20), &mut r1))
            .collect();
        let mut backward: Vec<_> = (0..20u64)
            .rev()
            .map(|i| m.sample_shared(NodeId::new(i), NodeId::new(i + 20), &mut r2))
            .collect();
        backward.reverse();
        assert_eq!(forward, backward);
        assert!(forward.iter().all(|d| d.as_millis() >= 1));
    }

    #[test]
    fn shared_king_sampling_is_realistic() {
        let m = KingLatencyModel::new();
        let mut r = rng();
        let mut samples: Vec<u64> = Vec::new();
        for i in 0..500u64 {
            samples.push(
                m.sample_shared(NodeId::new(i), NodeId::new(i + 500), &mut r)
                    .as_millis(),
            );
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        assert!(
            (20..=120).contains(&median),
            "hash-derived coordinates should keep the King-like shape, got median {median}"
        );
    }

    #[test]
    fn constant_and_uniform_shared_sampling_match_contract() {
        let m = ConstantLatency::new(SimDuration::from_millis(7));
        let mut r = rng();
        assert_eq!(
            m.sample_shared(NodeId::new(0), NodeId::new(1), &mut r),
            SimDuration::from_millis(7)
        );
        let u = UniformLatency::new(SimDuration::from_millis(5), SimDuration::from_millis(15));
        for _ in 0..100 {
            let d = u
                .sample_shared(NodeId::new(0), NodeId::new(1), &mut r)
                .as_millis();
            assert!((5..=15).contains(&d));
        }
    }

    #[test]
    fn king_latency_is_heterogeneous() {
        let mut m = KingLatencyModel::new();
        let mut r = rng();
        let mut min = u64::MAX;
        let mut max = 0;
        for i in 0..50u64 {
            let d = m
                .sample(NodeId::new(i), NodeId::new(i + 50), &mut r)
                .as_millis();
            min = min.min(d);
            max = max.max(d);
        }
        assert!(
            max > min * 2,
            "latency matrix should be heterogeneous (min={min}, max={max})"
        );
    }
}
