//! The transport seam between protocol logic and the engines.
//!
//! Protocols never talk to an engine directly: every capability a callback may use —
//! sending a message, arming a timer, drawing randomness, reading the clock, sampling the
//! bootstrap service — is expressed by the [`Transport`] trait, and the [`Context`] handed
//! to protocol callbacks is a thin facade over a `&mut dyn Transport`. The engines
//! ([`Simulation`](crate::Simulation) and [`ShardedSimulation`](crate::ShardedSimulation))
//! both back that facade with the same concrete [`SimTransport`], which records effects
//! into recycled buffers; a future deployment can substitute a socket-backed transport
//! without touching a single protocol crate.
//!
//! # Determinism
//!
//! The facade is behavior-preserving by construction: `SimTransport` stores exactly the
//! state the old monolithic `Context` stored (node, clock, round period, the node's
//! private RNG, the bootstrap registry, and the two effect buffers), and every `Context`
//! method forwards to the corresponding `Transport` method without reordering, adding or
//! dropping RNG draws. Seeded runs therefore produce bit-identical results through the
//! seam — the determinism suite and the byte-identical figure-JSON tests pin this.
//!
//! [`Context`]: crate::Context

use rand::rngs::SmallRng;

use crate::bootstrap::BootstrapRegistry;
use crate::protocol::{Outgoing, TimerRequest};
use crate::time::{SimDuration, SimTime};
use crate::types::NodeId;

/// The capabilities a protocol callback may use, abstracted away from any engine.
///
/// The trait is object-safe on purpose: [`Context`](crate::Context) holds a
/// `&mut dyn Transport<M>` so protocol crates compile against this interface only and
/// never name an engine type. Implementations must be deterministic: all randomness comes
/// from the per-node stream returned by [`rng`](Transport::rng), and the clock is whatever
/// the driving engine says it is.
pub trait Transport<M> {
    /// Identity of the node executing the callback.
    fn node_id(&self) -> NodeId;

    /// Current time as observed by this node.
    fn now(&self) -> SimTime;

    /// The gossip round period configured on the engine.
    fn round_period(&self) -> SimDuration;

    /// The node's private random number generator.
    fn rng(&mut self) -> &mut SmallRng;

    /// Queues `msg` for sending to `to`.
    fn send(&mut self, to: NodeId, msg: M);

    /// Requests a timer that fires after `delay`, identified by `key`.
    fn set_timer(&mut self, delay: SimDuration, key: crate::protocol::TimerKey);

    /// Samples up to `count` bootstrap nodes, excluding the caller.
    fn bootstrap_sample(&mut self, count: usize) -> Vec<NodeId>;

    /// Messages queued so far (used by tests driving a protocol without an engine).
    fn outbox(&self) -> &[Outgoing<M>];
}

/// The inputs a [`SimTransport`] needs for one callback invocation.
///
/// Bundling them in a struct (instead of seven same-typed positional arguments) makes the
/// construction sites self-describing and removes the arg-order foot-gun from protocol
/// unit tests.
pub struct ContextParams<'a> {
    /// Identity of the node the callback runs on.
    pub node: NodeId,
    /// Current simulated time.
    pub now: SimTime,
    /// The gossip round period configured on the engine.
    pub round_period: SimDuration,
    /// The node's private random stream.
    pub rng: &'a mut SmallRng,
    /// The shared bootstrap service.
    pub bootstrap: &'a BootstrapRegistry,
}

/// The simulated transport backing protocol callbacks in both engines.
///
/// It collects the messages and timers a callback produces into buffers the engine owns
/// and recycles: [`into_effects`](SimTransport::into_effects) hands the buffers back, the
/// engine drains them, and the next callback reuses the retained capacity — zero
/// allocations per event in steady state (pinned by `tests/alloc_counter.rs`).
pub struct SimTransport<'a, M> {
    node: NodeId,
    now: SimTime,
    round_period: SimDuration,
    rng: &'a mut SmallRng,
    bootstrap: &'a BootstrapRegistry,
    outbox: Vec<Outgoing<M>>,
    timers: Vec<TimerRequest>,
}

impl<'a, M> SimTransport<'a, M> {
    /// Creates a transport with fresh effect buffers. Used by protocol unit tests; the
    /// engines recycle their buffers through [`SimTransport::with_buffers`] instead.
    pub fn new(params: ContextParams<'a>) -> Self {
        SimTransport::with_buffers(params, Vec::new(), Vec::new())
    }

    /// Creates a transport that collects effects into caller-provided buffers.
    ///
    /// The buffers are cleared here, so passing a dirty buffer is harmless.
    pub fn with_buffers(
        params: ContextParams<'a>,
        mut outbox: Vec<Outgoing<M>>,
        mut timers: Vec<TimerRequest>,
    ) -> Self {
        outbox.clear();
        timers.clear();
        SimTransport {
            node: params.node,
            now: params.now,
            round_period: params.round_period,
            rng: params.rng,
            bootstrap: params.bootstrap,
            outbox,
            timers,
        }
    }

    /// Consumes the transport, returning queued messages and timer requests.
    pub fn into_effects(self) -> (Vec<Outgoing<M>>, Vec<TimerRequest>) {
        (self.outbox, self.timers)
    }
}

impl<M> Transport<M> for SimTransport<'_, M> {
    fn node_id(&self) -> NodeId {
        self.node
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn round_period(&self) -> SimDuration {
        self.round_period
    }

    fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push(Outgoing { to, msg });
    }

    fn set_timer(&mut self, delay: SimDuration, key: crate::protocol::TimerKey) {
        self.timers.push(TimerRequest { delay, key });
    }

    fn bootstrap_sample(&mut self, count: usize) -> Vec<NodeId> {
        self.bootstrap.sample_excluding(count, self.node, self.rng)
    }

    fn outbox(&self) -> &[Outgoing<M>] {
        &self.outbox
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::TimerKey;
    use crate::Context;
    use rand::SeedableRng;

    #[derive(Clone, Debug, PartialEq)]
    struct Msg(u32);

    impl crate::protocol::WireSize for Msg {
        fn wire_size(&self) -> usize {
            32
        }
    }

    #[test]
    fn sim_transport_records_effects() {
        let bootstrap = BootstrapRegistry::new();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut transport: SimTransport<'_, Msg> = SimTransport::new(ContextParams {
            node: NodeId::new(4),
            now: SimTime::from_millis(25),
            round_period: SimDuration::from_secs(2),
            rng: &mut rng,
            bootstrap: &bootstrap,
        });
        transport.send(NodeId::new(5), Msg(11));
        transport.set_timer(SimDuration::from_millis(40), TimerKey::new(8));
        assert_eq!(transport.node_id(), NodeId::new(4));
        assert_eq!(transport.now(), SimTime::from_millis(25));
        assert_eq!(transport.round_period(), SimDuration::from_secs(2));
        let (outbox, timers) = transport.into_effects();
        assert_eq!(outbox.len(), 1);
        assert_eq!(outbox[0].to, NodeId::new(5));
        assert_eq!(timers.len(), 1);
        assert_eq!(timers[0].key, TimerKey::new(8));
    }

    #[test]
    fn with_buffers_clears_dirty_buffers_and_keeps_capacity() {
        let bootstrap = BootstrapRegistry::new();
        let mut rng = SmallRng::seed_from_u64(10);
        let mut dirty_out: Vec<Outgoing<Msg>> = Vec::with_capacity(16);
        dirty_out.push(Outgoing {
            to: NodeId::new(1),
            msg: Msg(0),
        });
        let dirty_timers: Vec<TimerRequest> = Vec::with_capacity(8);
        let transport = SimTransport::with_buffers(
            ContextParams {
                node: NodeId::new(1),
                now: SimTime::ZERO,
                round_period: SimDuration::from_secs(1),
                rng: &mut rng,
                bootstrap: &bootstrap,
            },
            dirty_out,
            dirty_timers,
        );
        let (outbox, timers) = transport.into_effects();
        assert!(outbox.is_empty(), "dirty buffer must be cleared");
        assert!(outbox.capacity() >= 16, "capacity must be retained");
        assert!(timers.is_empty());
    }

    #[test]
    fn context_is_a_transparent_facade_over_the_transport() {
        let mut bootstrap = BootstrapRegistry::new();
        bootstrap.register(NodeId::new(1));
        bootstrap.register(NodeId::new(2));
        let mut rng = SmallRng::seed_from_u64(11);
        let mut transport: SimTransport<'_, Msg> = SimTransport::new(ContextParams {
            node: NodeId::new(1),
            now: SimTime::from_millis(5),
            round_period: SimDuration::from_secs(1),
            rng: &mut rng,
            bootstrap: &bootstrap,
        });
        {
            let mut ctx = Context::new(&mut transport);
            ctx.send(NodeId::new(2), Msg(3));
            assert_eq!(ctx.bootstrap_sample(5), vec![NodeId::new(2)]);
            assert_eq!(ctx.node_id(), NodeId::new(1));
            assert_eq!(ctx.outbox().len(), 1);
        }
        let (outbox, _) = transport.into_effects();
        assert_eq!(outbox[0].msg, Msg(3));
    }
}
