//! Simulated time.
//!
//! The engine advances a virtual clock with millisecond resolution. Wrapping time in
//! dedicated newtypes ([`SimTime`] for instants, [`SimDuration`] for spans) keeps the rest
//! of the codebase free of unit confusion.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, measured in milliseconds since the start of the run.
///
/// # Examples
///
/// ```
/// use croupier_simulator::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_millis(), 2_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(2_000));
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time in milliseconds.
///
/// # Examples
///
/// ```
/// use croupier_simulator::SimDuration;
///
/// let d = SimDuration::from_secs(1) + SimDuration::from_millis(500);
/// assert_eq!(d.as_millis(), 1_500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from milliseconds since the start of the run.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant from whole seconds since the start of the run.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000)
    }

    /// Milliseconds since the start of the run.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a floating point number.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the instant `duration` later than `self`, saturating on overflow.
    pub const fn saturating_add(self, duration: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(duration.0))
    }

    /// Returns the span elapsed since `earlier`, or [`SimDuration::ZERO`] if `earlier` is in
    /// the future.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000)
    }

    /// Creates a span from a floating point number of milliseconds, rounding to the nearest
    /// whole millisecond and clamping negative values to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms.is_nan() || ms <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration(ms.round() as u64)
        }
    }

    /// The span in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The span in seconds, as a floating point number.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub const fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_millis(100) + SimDuration::from_millis(50);
        assert_eq!(t, SimTime::from_millis(150));
        assert_eq!(t - SimTime::from_millis(100), SimDuration::from_millis(50));
    }

    #[test]
    fn subtraction_saturates_at_zero() {
        let earlier = SimTime::from_millis(10);
        let later = SimTime::from_millis(50);
        assert_eq!(earlier - later, SimDuration::ZERO);
        assert_eq!(earlier.saturating_since(later), SimDuration::ZERO);
    }

    #[test]
    fn duration_from_float_rounds_and_clamps() {
        assert_eq!(SimDuration::from_millis_f64(1.4).as_millis(), 1);
        assert_eq!(SimDuration::from_millis_f64(1.6).as_millis(), 2);
        assert_eq!(SimDuration::from_millis_f64(-5.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn seconds_conversions() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs(3).as_secs_f64(), 3.0);
        assert!(SimDuration::ZERO.is_zero());
    }

    #[test]
    fn add_assign_advances_time() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_millis(250);
        assert_eq!(t.as_millis(), 250);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1_500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(42).to_string(), "42ms");
    }

    #[test]
    fn saturating_mul_does_not_overflow() {
        let d = SimDuration::from_millis(u64::MAX / 2);
        assert_eq!(d.saturating_mul(4).as_millis(), u64::MAX);
    }
}
