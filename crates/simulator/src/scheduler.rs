//! The event queue at the heart of the discrete-event engine: a bucketed time-wheel.
//!
//! Through PR 3 the queue was a global `BinaryHeap` — `O(log n)` per operation with poor
//! cache locality once millions of deliveries are in flight. The engines' workload is
//! heavily skewed towards the near future (gossip rounds fire every second, network
//! latencies are a few hundred milliseconds), which is the textbook case for a
//! *hierarchical time-wheel*:
//!
//! * a **near wheel** of `WHEEL_SLOTS` millisecond buckets covers a sliding window of
//!   ~8 seconds of virtual time; scheduling into it and popping from it are `O(1)`, and
//!   same-tick events pop in insertion order because each bucket is a FIFO;
//! * a **far wheel** (an ordered map keyed by tick) absorbs anything beyond the window —
//!   far-future timers, mostly — and is drained bucket-by-bucket into the near wheel
//!   whenever the window rotates past the current one.
//!
//! An occupancy bitmap over the near slots lets the cursor skip empty buckets 64 ticks at
//! a time, so advancing virtual time costs `O(slots/64)` per window rotation, amortised
//! `O(1)` per event.
//!
//! # Ordering contract
//!
//! Pop order is **bit-identical** to the retained heap implementation
//! ([`reference::ReferenceEventQueue`]): ascending `(time, insertion sequence)`. The
//! equivalence is enforced by randomized tests in this module driving both queues through
//! identical mixed schedule/pop workloads (same-tick bursts, far-future timers, window
//! rotations). The one deliberate divergence: scheduling an event *before* the time of the
//! most recently popped event (which no engine does — delays are non-negative) is treated
//! as scheduling at the current instant rather than re-sorting the past.

use std::collections::{BTreeMap, VecDeque};

use crate::event::{Event, ScheduledEvent};
use crate::time::SimTime;

pub mod reference;

/// Number of millisecond buckets in the near wheel (~8 s of virtual time).
///
/// Gossip rounds repeat every ~1 000 ms and the King latency model stays well below one
/// second, so in steady state every delivery and round lands in the near wheel and the far
/// wheel stays empty — the hot path never touches the ordered map.
///
/// The count is deliberately **not** a power of two: it is divisible by 64 (whole
/// occupancy-bitmap words) and by 1 000 (the default round period in ms). The sharded
/// engine clamps most deliveries to the round barrier at `(phase + 1) * period`, a huge
/// same-tick burst every phase; with `1000 | WHEEL_SLOTS` those bursts always map to the
/// same 8 buckets, whose once-grown capacity is then reused every cycle. A power-of-two
/// wheel would smear the barrier tick over `WHEEL_SLOTS / gcd(period, WHEEL_SLOTS)`
/// different buckets, retaining a burst-sized buffer in each. `tick % WHEEL_SLOTS` with a
/// constant divisor compiles to a multiply-shift, so nothing is lost over a mask.
const WHEEL_SLOTS: u64 = 8_000;
/// Words of the occupancy bitmap (64 slots per word; exact because `64 | WHEEL_SLOTS`).
const WHEEL_WORDS: usize = (WHEEL_SLOTS / 64) as usize;

/// A priority queue of [`ScheduledEvent`]s ordered by execution time, with deterministic
/// FIFO tie-breaking for events scheduled at the same instant.
///
/// # Examples
///
/// ```
/// use croupier_simulator::scheduler::EventQueue;
/// use croupier_simulator::event::Event;
/// use croupier_simulator::{NodeId, SimTime};
///
/// let mut q: EventQueue<u32> = EventQueue::new();
/// q.schedule(SimTime::from_millis(20), Event::Round { node: NodeId::new(1) });
/// q.schedule(SimTime::from_millis(10), Event::Round { node: NodeId::new(2) });
/// let first = q.pop().unwrap();
/// assert_eq!(first.at, SimTime::from_millis(10));
/// ```
#[derive(Debug)]
pub struct EventQueue<M> {
    /// The near wheel: one FIFO bucket per millisecond tick of the sliding window
    /// `[cursor, cursor + WHEEL_SLOTS)`, indexed by `tick % WHEEL_SLOTS`. Each bucket
    /// holds events of exactly one in-window tick (older occupants were popped before the
    /// cursor moved past them), and buckets keep their allocation when drained, so the
    /// steady-state hot path allocates nothing.
    slots: Box<[VecDeque<ScheduledEvent<M>>]>,
    /// One bit per slot: set iff the bucket holds unpopped events.
    occupied: Box<[u64; WHEEL_WORDS]>,
    /// The tick currently being drained; the window slides with it. Never moves backwards.
    cursor: u64,
    /// Events beyond the window horizon, keyed by tick; each bucket preserves insertion
    /// order, so migration into the near wheel preserves the FIFO tie-break. Migration
    /// happens as soon as the cursor advance brings a far tick inside the horizon —
    /// *before* any direct push could target its slot, which keeps sequence order intact.
    far: BTreeMap<u64, Vec<ScheduledEvent<M>>>,
    len: usize,
    next_seq: u64,
    scheduled_total: u64,
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: Box::new([0; WHEEL_WORDS]),
            cursor: 0,
            far: BTreeMap::new(),
            len: 0,
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    #[inline]
    fn set_bit(&mut self, idx: usize) {
        self.occupied[idx / 64] |= 1u64 << (idx % 64);
    }

    #[inline]
    fn clear_bit(&mut self, idx: usize) {
        self.occupied[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// Number of slots between the cursor slot and the next occupied slot, scanning the
    /// bitmap as a ring starting at the cursor (ring order equals ascending tick order
    /// within the window). Returns `None` when the near wheel is empty. A distance of
    /// zero means the cursor bucket itself is occupied.
    fn next_occupied_distance(&self) -> Option<u64> {
        let start = (self.cursor % WHEEL_SLOTS) as usize;
        let mut word_idx = start / 64;
        let mut word = self.occupied[word_idx] & (!0u64 << (start % 64));
        let mut scanned = 0usize;
        loop {
            if word != 0 {
                let idx = word_idx * 64 + word.trailing_zeros() as usize;
                return Some(((idx + WHEEL_SLOTS as usize - start) as u64) % WHEEL_SLOTS);
            }
            scanned += 1;
            if scanned > WHEEL_WORDS {
                return None;
            }
            word_idx = (word_idx + 1) % WHEEL_WORDS;
            word = self.occupied[word_idx];
            if word_idx == start / 64 {
                // Wrapped back to the starting word: include the bits below `start` that
                // the first probe masked off (they map to the window's far end).
                word &= !(!0u64 << (start % 64));
            }
        }
    }

    /// Migrates every far bucket whose tick now falls inside the window horizon.
    fn migrate_far(&mut self) {
        while let Some(entry) = self.far.first_entry() {
            let tick = *entry.key();
            if tick - self.cursor >= WHEEL_SLOTS {
                break;
            }
            let events = entry.remove();
            let idx = (tick % WHEEL_SLOTS) as usize;
            self.slots[idx].extend(events);
            self.set_bit(idx);
        }
    }

    /// Schedules `event` for execution at `at`.
    ///
    /// Events scheduled for the same instant execute in the order they were scheduled.
    /// Scheduling before the most recently popped event's time (which the engines never
    /// do) executes the event at the current instant instead, preserving the original
    /// timestamp.
    pub fn schedule(&mut self, at: SimTime, event: Event<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.len += 1;
        debug_assert!(
            at.as_millis() >= self.cursor,
            "event scheduled in the past: at={} cursor={}",
            at.as_millis(),
            self.cursor
        );
        let tick = at.as_millis().max(self.cursor);
        let scheduled = ScheduledEvent { at, seq, event };
        // `tick >= cursor`, so the subtraction is exact.
        if tick - self.cursor < WHEEL_SLOTS {
            let idx = (tick % WHEEL_SLOTS) as usize;
            self.slots[idx].push_back(scheduled);
            self.set_bit(idx);
        } else {
            self.far.entry(tick).or_default().push(scheduled);
        }
    }

    /// Removes and returns the next event, or `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<M>> {
        if self.len == 0 {
            return None;
        }
        loop {
            let idx = (self.cursor % WHEEL_SLOTS) as usize;
            if let Some(event) = self.slots[idx].pop_front() {
                if self.slots[idx].is_empty() {
                    self.clear_bit(idx);
                }
                self.len -= 1;
                return Some(event);
            }
            // The cursor bucket is drained: slide to the next occupied bucket, or jump to
            // the earliest far tick when the near wheel is exhausted. Either move widens
            // the horizon, so far buckets that entered it are pulled in immediately.
            match self.next_occupied_distance() {
                Some(distance) => self.cursor += distance,
                None => {
                    self.cursor = *self
                        .far
                        .keys()
                        .next()
                        .expect("len > 0 with an empty near wheel implies far events");
                }
            }
            if !self.far.is_empty() {
                self.migrate_far();
            }
        }
    }

    /// Execution time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if let Some(distance) = self.next_occupied_distance() {
            let idx = ((self.cursor + distance) % WHEEL_SLOTS) as usize;
            let near = self.slots[idx].front().map(|event| event.at);
            // Near events always precede far events: every near tick is inside the
            // window, every far tick beyond it.
            if near.is_some() {
                return near;
            }
        }
        self.far
            .values()
            .next()
            .and_then(|bucket| bucket.first())
            .map(|event| event.at)
    }

    /// Number of events currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events that have ever been scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    use super::reference::ReferenceEventQueue;
    use super::*;
    use crate::types::NodeId;

    fn round(node: u64) -> Event<u32> {
        Event::Round {
            node: NodeId::new(node),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), round(3));
        q.schedule(SimTime::from_millis(10), round(1));
        q.schedule(SimTime::from_millis(20), round(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|ev| ev.event.target().as_u64())
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_in_fifo_order() {
        let mut q = EventQueue::new();
        for node in 0..50u64 {
            q.schedule(SimTime::from_millis(5), round(node));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|ev| ev.event.target().as_u64())
            .collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest_without_removal() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_millis(40), round(1));
        q.schedule(SimTime::from_millis(15), round(2));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(15)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn counters_track_scheduled_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, round(1));
        q.schedule(SimTime::ZERO, round(2));
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn far_future_events_cross_the_window_boundary() {
        let mut q = EventQueue::new();
        // One event per window for many windows ahead, scheduled out of order.
        let ticks: Vec<u64> = (0..20).rev().map(|w| w * WHEEL_SLOTS + 17).collect();
        for (i, &tick) in ticks.iter().enumerate() {
            q.schedule(SimTime::from_millis(tick), round(i as u64));
        }
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(17)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|ev| ev.at.as_millis())
            .collect();
        let mut expected = ticks.clone();
        expected.sort_unstable();
        assert_eq!(order, expected);
    }

    #[test]
    fn events_scheduled_while_draining_the_current_tick_stay_fifo() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), round(1));
        q.schedule(SimTime::from_millis(5), round(2));
        let first = q.pop().unwrap();
        assert_eq!(first.event.target(), NodeId::new(1));
        // A zero-latency reaction to the first event lands behind the tick's backlog.
        q.schedule(SimTime::from_millis(5), round(3));
        assert_eq!(q.pop().unwrap().event.target(), NodeId::new(2));
        assert_eq!(q.pop().unwrap().event.target(), NodeId::new(3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_far_and_near_events_preserve_seq_within_a_tick() {
        let mut q = EventQueue::new();
        let far_tick = 3 * WHEEL_SLOTS + 5;
        // Scheduled while the tick is beyond the window: goes to the far wheel.
        q.schedule(SimTime::from_millis(far_tick), round(1));
        q.schedule(SimTime::from_millis(1), round(0));
        assert_eq!(q.pop().unwrap().event.target(), NodeId::new(0));
        // The pop above exhausted the near wheel; the next pop rotates the window, after
        // which the same tick accepts direct (higher-seq) pushes.
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(far_tick)));
        assert_eq!(q.pop().unwrap().event.target(), NodeId::new(1));
        q.schedule(SimTime::from_millis(far_tick), round(2));
        assert_eq!(q.pop().unwrap().event.target(), NodeId::new(2));
    }

    /// Drives the wheel and the reference heap through an identical randomized workload of
    /// schedules and pops — same-tick bursts, far-future timers, pop runs that force
    /// window rotations — and asserts bit-identical pop sequences.
    #[test]
    fn randomized_equivalence_with_reference_heap() {
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ seed);
            let mut wheel: EventQueue<u32> = EventQueue::new();
            let mut heap: ReferenceEventQueue<u32> = ReferenceEventQueue::new();
            // `now` tracks the latest popped time so schedules are never in the past,
            // matching the engines' contract.
            let mut now = 0u64;
            let mut payload = 0u32;
            for _ in 0..4_000 {
                match rng.gen_range(0..10u32) {
                    // Same-tick FIFO burst at a nearby instant.
                    0..=2 => {
                        let at = now + rng.gen_range(0..50u64);
                        let burst = rng.gen_range(1..=8);
                        for _ in 0..burst {
                            let ev = Event::Deliver {
                                from: NodeId::new(0),
                                to: NodeId::new(u64::from(payload)),
                                msg: payload,
                            };
                            wheel.schedule(SimTime::from_millis(at), ev.clone());
                            heap.schedule(SimTime::from_millis(at), ev);
                            payload += 1;
                        }
                    }
                    // Scattered near-future events (within and just beyond one window).
                    3..=5 => {
                        let at = now + rng.gen_range(0..6_000u64);
                        let ev = round(u64::from(payload));
                        wheel.schedule(SimTime::from_millis(at), ev.clone());
                        heap.schedule(SimTime::from_millis(at), ev);
                        payload += 1;
                    }
                    // Far-future timer, several windows ahead.
                    6 => {
                        let at = now + rng.gen_range(20_000..2_000_000u64);
                        let ev = round(u64::from(payload));
                        wheel.schedule(SimTime::from_millis(at), ev.clone());
                        heap.schedule(SimTime::from_millis(at), ev);
                        payload += 1;
                    }
                    // Pop run: drains across ticks and occasionally across windows.
                    _ => {
                        for _ in 0..rng.gen_range(1..=12) {
                            let a = wheel.pop();
                            let b = heap.pop();
                            match (a, b) {
                                (None, None) => break,
                                (Some(x), Some(y)) => {
                                    assert_eq!(x.at, y.at, "pop times diverged");
                                    assert_eq!(x.seq, y.seq, "pop sequences diverged");
                                    assert_eq!(x.event, y.event, "pop events diverged");
                                    now = x.at.as_millis();
                                }
                                (a, b) => panic!(
                                    "queue lengths diverged: wheel={:?} heap={:?}",
                                    a.map(|e| e.at),
                                    b.map(|e| e.at)
                                ),
                            }
                            assert_eq!(wheel.len(), heap.len());
                            assert_eq!(wheel.peek_time(), heap.peek_time());
                        }
                    }
                }
            }
            // Drain both queues completely.
            loop {
                match (wheel.pop(), heap.pop()) {
                    (None, None) => break,
                    (Some(x), Some(y)) => {
                        assert_eq!((x.at, x.seq, x.event), (y.at, y.seq, y.event));
                    }
                    _ => panic!("queues drained to different lengths"),
                }
            }
            assert_eq!(wheel.scheduled_total(), heap.scheduled_total());
        }
    }

    #[test]
    fn steady_state_reuses_bucket_allocations() {
        // Simulates the engine's steady state: schedule/pop churn inside one window. After
        // warm-up the buckets retain capacity, so the wheel performs no allocation — the
        // allocation-counter integration test asserts this end-to-end; here we just check
        // the queue stays correct over many window rotations.
        let mut q = EventQueue::new();
        let mut now = 0u64;
        let mut expected = 0u64;
        for step in 0..50_000u64 {
            q.schedule(SimTime::from_millis(now + 1 + (step % 700)), round(step));
            if step % 3 != 0 {
                if let Some(ev) = q.pop() {
                    assert!(ev.at.as_millis() >= now);
                    now = ev.at.as_millis();
                    expected += 1;
                }
            }
        }
        while q.pop().is_some() {
            expected += 1;
        }
        assert_eq!(expected, 50_000);
        assert_eq!(q.scheduled_total(), 50_000);
        assert!(q.is_empty());
    }
}
