//! Internal event representation used by the scheduler and the engine.

use crate::protocol::TimerKey;
use crate::time::SimTime;
use crate::types::NodeId;

/// A single discrete event queued for execution.
///
/// The type is generic over the protocol message type `M`, so the scheduler and engine are
/// monomorphised per protocol and message payloads never need boxing.
#[derive(Clone, Debug, PartialEq)]
pub enum Event<M> {
    /// Delivery of a message sent by `from` to `to`.
    Deliver {
        /// Sender of the message.
        from: NodeId,
        /// Destination of the message.
        to: NodeId,
        /// The message payload.
        msg: M,
    },
    /// A periodic gossip round fires at `node`.
    Round {
        /// Node whose round fires.
        node: NodeId,
    },
    /// A protocol-requested timer fires at `node`.
    Timer {
        /// Node owning the timer.
        node: NodeId,
        /// Key passed back to the protocol, letting it distinguish its timers.
        key: TimerKey,
    },
}

impl<M> Event<M> {
    /// The node at which the event executes.
    pub fn target(&self) -> NodeId {
        match self {
            Event::Deliver { to, .. } => *to,
            Event::Round { node } => *node,
            Event::Timer { node, .. } => *node,
        }
    }
}

/// An event stamped with its execution time and a monotone sequence number.
///
/// The sequence number breaks ties between events scheduled for the same instant so that
/// execution order is fully deterministic and insertion-ordered.
#[derive(Clone, Debug)]
pub struct ScheduledEvent<M> {
    /// When the event executes.
    pub at: SimTime,
    /// Tie-breaking sequence number (insertion order).
    pub seq: u64,
    /// The event itself.
    pub event: Event<M>,
}

impl<M> PartialEq for ScheduledEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for ScheduledEvent<M> {}

impl<M> PartialOrd for ScheduledEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for ScheduledEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earlier times first; for equal times, lower sequence numbers first.
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(at: u64, seq: u64) -> ScheduledEvent<u32> {
        ScheduledEvent {
            at: SimTime::from_millis(at),
            seq,
            event: Event::Deliver {
                from: NodeId::new(0),
                to: NodeId::new(1),
                msg: 0,
            },
        }
    }

    #[test]
    fn ordering_is_time_then_sequence() {
        let a = deliver(10, 5);
        let b = deliver(10, 6);
        let c = deliver(11, 0);
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
    }

    #[test]
    fn target_reports_the_executing_node() {
        let e: Event<u32> = Event::Round {
            node: NodeId::new(3),
        };
        assert_eq!(e.target(), NodeId::new(3));
        let e: Event<u32> = Event::Timer {
            node: NodeId::new(4),
            key: TimerKey::new(1),
        };
        assert_eq!(e.target(), NodeId::new(4));
        let e: Event<u32> = Event::Deliver {
            from: NodeId::new(1),
            to: NodeId::new(2),
            msg: 9,
        };
        assert_eq!(e.target(), NodeId::new(2));
    }

    #[test]
    fn equality_ignores_payload() {
        // ScheduledEvent equality is positional (time + seq); payloads are compared only
        // through Event's own PartialEq where needed.
        let a = deliver(5, 1);
        let b = deliver(5, 1);
        assert_eq!(a, b);
    }
}
