//! Message-loss models.
//!
//! Croupier's estimator assumes "no bias in message loss between public and private nodes";
//! [`ClassBiasedLoss`] exists precisely to let experiments violate that assumption and
//! observe the resulting estimation bias.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::types::{NatClass, NodeId};

/// Decides whether an individual message is dropped by the network.
pub trait LossModel {
    /// Returns `true` if the message from `from` to `to` should be dropped.
    fn drops(&mut self, from: NodeId, to: NodeId, rng: &mut SmallRng) -> bool;

    /// Loss decision without mutating the model, for phase-parallel engines.
    ///
    /// The sharded engine calls this concurrently from several worker threads, each passing
    /// the sending node's private random stream; the decision may depend only on
    /// `(from, to)` and on draws from `rng`. The default implementation panics; every model
    /// shipped with this crate overrides it.
    fn drops_shared(&self, from: NodeId, to: NodeId, rng: &mut SmallRng) -> bool {
        let _ = (from, to, rng);
        unimplemented!("this loss model does not support phase-parallel execution")
    }
}

/// Never drops messages. The default for the paper's experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoLoss;

impl LossModel for NoLoss {
    fn drops(&mut self, _from: NodeId, _to: NodeId, _rng: &mut SmallRng) -> bool {
        false
    }

    fn drops_shared(&self, _from: NodeId, _to: NodeId, _rng: &mut SmallRng) -> bool {
        false
    }
}

/// Drops each message independently with a fixed probability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BernoulliLoss {
    probability: f64,
}

impl BernoulliLoss {
    /// Creates a loss model with per-message drop `probability`.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not within `[0, 1]`.
    pub fn new(probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "loss probability must be within [0, 1]"
        );
        BernoulliLoss { probability }
    }

    /// The configured drop probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

impl LossModel for BernoulliLoss {
    fn drops(&mut self, _from: NodeId, _to: NodeId, rng: &mut SmallRng) -> bool {
        rng.gen_bool(self.probability)
    }

    fn drops_shared(&self, _from: NodeId, _to: NodeId, rng: &mut SmallRng) -> bool {
        rng.gen_bool(self.probability)
    }
}

/// Loss that differs depending on the destination's connectivity class.
///
/// Used by ablation experiments to break the paper's third estimator assumption ("no bias in
/// message loss between public and private nodes") and quantify the resulting error.
#[derive(Clone, Debug)]
pub struct ClassBiasedLoss<F> {
    public_probability: f64,
    private_probability: f64,
    classifier: F,
}

impl<F> ClassBiasedLoss<F>
where
    F: Fn(NodeId) -> NatClass,
{
    /// Creates a biased loss model.
    ///
    /// `classifier` maps a destination node to its connectivity class.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(public_probability: f64, private_probability: f64, classifier: F) -> Self {
        assert!((0.0..=1.0).contains(&public_probability));
        assert!((0.0..=1.0).contains(&private_probability));
        ClassBiasedLoss {
            public_probability,
            private_probability,
            classifier,
        }
    }
}

impl<F> LossModel for ClassBiasedLoss<F>
where
    F: Fn(NodeId) -> NatClass,
{
    fn drops(&mut self, from: NodeId, to: NodeId, rng: &mut SmallRng) -> bool {
        self.drops_shared(from, to, rng)
    }

    fn drops_shared(&self, _from: NodeId, to: NodeId, rng: &mut SmallRng) -> bool {
        let p = match (self.classifier)(to) {
            NatClass::Public => self.public_probability,
            NatClass::Private => self.private_probability,
        };
        rng.gen_bool(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    #[test]
    fn no_loss_never_drops() {
        let mut m = NoLoss;
        let mut r = rng();
        assert!((0..100).all(|i| !m.drops(NodeId::new(i), NodeId::new(i + 1), &mut r)));
    }

    #[test]
    fn bernoulli_zero_never_drops_and_one_always_drops() {
        let mut never = BernoulliLoss::new(0.0);
        let mut always = BernoulliLoss::new(1.0);
        let mut r = rng();
        for i in 0..50 {
            assert!(!never.drops(NodeId::new(i), NodeId::new(i), &mut r));
            assert!(always.drops(NodeId::new(i), NodeId::new(i), &mut r));
        }
    }

    #[test]
    fn bernoulli_rate_is_approximately_honoured() {
        let mut m = BernoulliLoss::new(0.3);
        let mut r = rng();
        let drops = (0..10_000)
            .filter(|_| m.drops(NodeId::new(0), NodeId::new(1), &mut r))
            .count();
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "observed loss rate {rate}");
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn bernoulli_rejects_invalid_probability() {
        BernoulliLoss::new(1.5);
    }

    #[test]
    fn class_biased_loss_discriminates_by_destination() {
        // Even node ids are public, odd ids private; drop everything to private nodes.
        let mut m = ClassBiasedLoss::new(0.0, 1.0, |n: NodeId| {
            if n.as_u64().is_multiple_of(2) {
                NatClass::Public
            } else {
                NatClass::Private
            }
        });
        let mut r = rng();
        assert!(!m.drops(NodeId::new(0), NodeId::new(2), &mut r));
        assert!(m.drops(NodeId::new(0), NodeId::new(3), &mut r));
    }
}
