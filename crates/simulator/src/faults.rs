//! Deterministic fault injection at the engines' delivery seam.
//!
//! A [`FaultPlane`] sits between a protocol's sends and the engine's delivery queue and
//! injects message-plane faults — probabilistic drops, correlated loss bursts
//! (Gilbert–Elliott two-state chains), duplication, bounded reordering delays and payload
//! corruption — according to per-gateway [`FaultProfile`]s. It is the message-level
//! counterpart of the topology-level NAT dynamics: where the scenario scripts mutate
//! *reachability*, the fault plane degrades the *channel* itself.
//!
//! # Determinism
//!
//! Every fault decision is drawn from one dedicated RNG stream
//! ([`Stream::Custom`]`(`[`FAULT_RNG_STREAM`]`)` off the run seed), and both engines
//! consult the plane only on the coordinating thread, in the canonical message order:
//!
//! * the event engine judges messages as each callback's effects are applied (its event
//!   order is already total), and
//! * the sharded engine judges them inside the barrier's canonical
//!   `(send time, sender, sequence)` merge pass — the same single-threaded pass that runs
//!   the delivery filter.
//!
//! The draw sequence therefore never depends on the worker-thread count, which preserves
//! the sharded engine's bit-identity guarantee with faults enabled. Burst chains are
//! plane state keyed by destination and advance in the same canonical order.
//!
//! # Cost when disabled
//!
//! The plane is shared state behind an `Arc`; engines hold an `Option<FaultPlane>` and
//! call [`FaultPlane::begin`] once per effect batch. With no profile installed that is a
//! single relaxed atomic load — the hot path stays branch-predictable and the
//! `microbench_engine` `fault_plane_inactive` row guards the overhead.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::fasthash::{FastHashMap, FastHashSet};
use crate::rng::{Seed, Stream};
use crate::time::SimDuration;
use crate::types::NodeId;

/// The [`Stream::Custom`] tag from which the fault plane derives its RNG.
pub const FAULT_RNG_STREAM: u64 = 0xFA17;

/// Parameters of a Gilbert–Elliott two-state correlated-loss chain.
///
/// Each destination gateway carries its own chain. Messages toward a gateway advance the
/// chain one step (in canonical order): in the *good* state loss is [`good_loss`] and the
/// chain enters the *bad* state with [`enter_probability`]; in the *bad* state loss is
/// [`bad_loss`] and the chain recovers with [`exit_probability`].
///
/// [`good_loss`]: BurstLoss::good_loss
/// [`bad_loss`]: BurstLoss::bad_loss
/// [`enter_probability`]: BurstLoss::enter_probability
/// [`exit_probability`]: BurstLoss::exit_probability
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BurstLoss {
    /// Probability of transitioning good → bad per message.
    pub enter_probability: f64,
    /// Probability of transitioning bad → good per message.
    pub exit_probability: f64,
    /// Loss probability while the chain is in the good state.
    pub good_loss: f64,
    /// Loss probability while the chain is in the bad state.
    pub bad_loss: f64,
}

impl BurstLoss {
    fn validate(&self) {
        for (name, p) in [
            ("enter_probability", self.enter_probability),
            ("exit_probability", self.exit_probability),
            ("good_loss", self.good_loss),
            ("bad_loss", self.bad_loss),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "BurstLoss::{name} must be within [0, 1], got {p}"
            );
        }
    }
}

/// A fault profile: the per-message fault probabilities applied to a link.
///
/// The default profile injects nothing. Profiles compose with the independent loss model:
/// a message must survive both to be delivered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Independent per-message drop probability.
    pub drop_probability: f64,
    /// Correlated loss bursts (Gilbert–Elliott), if any.
    pub burst: Option<BurstLoss>,
    /// Probability that a delivered message arrives twice.
    pub duplicate_probability: f64,
    /// Probability that a delivered message is delayed by a reordering spike.
    pub reorder_probability: f64,
    /// Upper bound of the uniform extra delay drawn for a reordered message.
    pub reorder_max_delay: SimDuration,
    /// Probability that a delivered message's payload is corrupted
    /// (via [`WireSize::fault_mutate`](crate::WireSize::fault_mutate)).
    pub corrupt_probability: f64,
}

impl FaultProfile {
    /// A profile that only drops messages independently with probability `p`.
    pub fn lossy(p: f64) -> Self {
        FaultProfile {
            drop_probability: p,
            ..FaultProfile::default()
        }
    }

    /// The canned correlated-loss profile used by the `burst_loss` scenario: rare
    /// transitions into a heavily lossy bad state, near-clean good state.
    pub fn burst_loss() -> Self {
        FaultProfile {
            burst: Some(BurstLoss {
                enter_probability: 0.05,
                exit_probability: 0.25,
                good_loss: 0.02,
                bad_loss: 0.75,
            }),
            ..FaultProfile::default()
        }
    }

    /// The canned duplication + reordering profile used by the `dup_reorder` scenario;
    /// includes a low corruption rate so the decode-hardening paths are exercised.
    pub fn dup_reorder() -> Self {
        FaultProfile {
            duplicate_probability: 0.15,
            reorder_probability: 0.25,
            reorder_max_delay: SimDuration::from_millis(1_500),
            corrupt_probability: 0.05,
            ..FaultProfile::default()
        }
    }

    /// Sets the independent drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_probability = p;
        self
    }

    /// Sets the duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate_probability = p;
        self
    }

    /// Sets the reordering probability and its maximum extra delay.
    pub fn with_reorder(mut self, p: f64, max_delay: SimDuration) -> Self {
        self.reorder_probability = p;
        self.reorder_max_delay = max_delay;
        self
    }

    /// Sets the corruption probability.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt_probability = p;
        self
    }

    /// Sets the correlated-loss burst chain.
    pub fn with_burst(mut self, burst: BurstLoss) -> Self {
        self.burst = Some(burst);
        self
    }

    /// Panics if any probability lies outside `[0, 1]`.
    pub fn validate(&self) {
        for (name, p) in [
            ("drop_probability", self.drop_probability),
            ("duplicate_probability", self.duplicate_probability),
            ("reorder_probability", self.reorder_probability),
            ("corrupt_probability", self.corrupt_probability),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "FaultProfile::{name} must be within [0, 1], got {p}"
            );
        }
        if let Some(burst) = &self.burst {
            burst.validate();
        }
    }
}

/// Counters of everything the fault plane injected plus the protocols' recovery effort.
///
/// The injection counters are filled by the plane itself and deliberately kept separate
/// from [`NetworkStats`](crate::NetworkStats): injected drops *also* count into
/// `NetworkStats::lost` (they are losses), but NAT-filter drops never appear here, so the
/// two failure planes stay distinguishable. The recovery counters (`retries_fired`,
/// `exchanges_abandoned`) are summed from the protocol nodes by the experiment driver.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Messages dropped by the independent drop probability.
    pub injected_drops: u64,
    /// Messages dropped while a Gilbert–Elliott chain was involved (good or bad state).
    pub burst_drops: u64,
    /// Messages duplicated.
    pub duplicates: u64,
    /// Messages delayed by a reordering spike.
    pub reorders: u64,
    /// Messages whose payload was corrupted.
    pub corruptions: u64,
    /// Retransmissions protocols fired after a timeout.
    pub retries_fired: u64,
    /// Exchanges protocols gave up on (timeout budget exhausted or superseded).
    pub exchanges_abandoned: u64,
}

impl FaultReport {
    /// Total number of messages the plane dropped.
    pub fn total_drops(&self) -> u64 {
        self.injected_drops + self.burst_drops
    }

    /// Total number of injection events of any class.
    pub fn total_injected(&self) -> u64 {
        self.total_drops() + self.duplicates + self.reorders + self.corruptions
    }
}

/// The verdict for one message, in canonical draw order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultDecision {
    /// The message is dropped (already counted); skip delivery entirely.
    pub drop: bool,
    /// Deliver a second copy of the message alongside the original.
    pub duplicate: bool,
    /// Extra delay to add to the message's delivery instant ([`SimDuration::ZERO`] when
    /// the message is not reordered).
    pub extra_delay: SimDuration,
    /// The payload must be corrupted via
    /// [`WireSize::fault_mutate`](crate::WireSize::fault_mutate) with the session RNG.
    pub corrupt: bool,
}

#[derive(Debug)]
struct PlaneState {
    default_profile: Option<FaultProfile>,
    /// Per-gateway overrides; the destination's entry wins over the source's, which wins
    /// over the default profile.
    overrides: FastHashMap<NodeId, FaultProfile>,
    /// Destinations whose Gilbert–Elliott chain currently sits in the bad state.
    bad_links: FastHashSet<NodeId>,
    rng: SmallRng,
    report: FaultReport,
}

/// A deterministic fault-injection plane shared between an engine and a scenario script.
///
/// The plane is a cloneable handle over shared state (like
/// [`NatTopology`](https://docs.rs/croupier-nat)'s): the engine holds one clone on its
/// delivery path, the scenario executor holds another and flips profiles mid-run at round
/// barriers. Fresh planes are inactive and cost one atomic load per effect batch; they
/// activate when a profile is installed and deactivate again on [`clear`](Self::clear).
///
/// # Examples
///
/// ```
/// use croupier_simulator::{FaultPlane, FaultProfile, NodeId, Seed};
///
/// let plane = FaultPlane::new(Seed::new(7));
/// assert!(!plane.is_active());
/// plane.set_default_profile(FaultProfile::lossy(1.0));
/// let mut session = plane.begin().expect("active plane");
/// let decision = session.judge(NodeId::new(1), NodeId::new(2));
/// assert!(decision.drop);
/// drop(session);
/// assert_eq!(plane.report().injected_drops, 1);
/// plane.clear();
/// assert!(plane.begin().is_none());
/// ```
#[derive(Clone, Debug)]
pub struct FaultPlane {
    active: Arc<AtomicBool>,
    state: Arc<Mutex<PlaneState>>,
}

impl FaultPlane {
    /// Creates an inactive plane whose RNG stream derives from `seed`.
    pub fn new(seed: Seed) -> Self {
        FaultPlane {
            active: Arc::new(AtomicBool::new(false)),
            state: Arc::new(Mutex::new(PlaneState {
                default_profile: None,
                overrides: FastHashMap::default(),
                bad_links: FastHashSet::default(),
                rng: seed.stream_rng(Stream::Custom(FAULT_RNG_STREAM)),
                report: FaultReport::default(),
            })),
        }
    }

    /// Returns `true` when any profile is installed. One relaxed atomic load — this is
    /// the whole cost of the plane on a fault-free hot path.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Installs (or replaces) the profile applied to every link without an override, and
    /// activates the plane.
    ///
    /// # Panics
    ///
    /// Panics if `profile` holds a probability outside `[0, 1]`.
    pub fn set_default_profile(&self, profile: FaultProfile) {
        profile.validate();
        self.state
            .lock()
            .expect("fault plane poisoned")
            .default_profile = Some(profile);
        self.active.store(true, Ordering::Relaxed);
    }

    /// Installs (or replaces) a per-gateway override for `node` (consulted for messages
    /// to *and* from it; the destination's override wins), and activates the plane.
    ///
    /// # Panics
    ///
    /// Panics if `profile` holds a probability outside `[0, 1]`.
    pub fn set_link_profile(&self, node: NodeId, profile: FaultProfile) {
        profile.validate();
        self.state
            .lock()
            .expect("fault plane poisoned")
            .overrides
            .insert(node, profile);
        self.active.store(true, Ordering::Relaxed);
    }

    /// Removes every profile and burst chain and deactivates the plane. The injection
    /// counters and the RNG position are kept, so a cleared-then-reactivated plane stays
    /// on its deterministic draw sequence.
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("fault plane poisoned");
        state.default_profile = None;
        state.overrides.clear();
        state.bad_links.clear();
        self.active.store(false, Ordering::Relaxed);
    }

    /// A copy of the injection counters accumulated so far.
    pub fn report(&self) -> FaultReport {
        self.state.lock().expect("fault plane poisoned").report
    }

    /// Opens a judging session for one canonical-order batch of messages, or `None` when
    /// the plane is inactive. The session holds the plane lock; engines call this once
    /// per effect batch, never per message.
    pub fn begin(&self) -> Option<FaultSession<'_>> {
        if !self.is_active() {
            return None;
        }
        Some(FaultSession {
            state: self.state.lock().expect("fault plane poisoned"),
        })
    }
}

/// An open judging session over the plane (see [`FaultPlane::begin`]).
pub struct FaultSession<'a> {
    state: MutexGuard<'a, PlaneState>,
}

impl FaultSession<'_> {
    /// Judges one message in canonical order. Draw order is fixed — burst-chain
    /// transition, drop, duplication, reordering, corruption — and draws for disabled
    /// fault classes are skipped, so the consumed stream depends only on the installed
    /// profiles and the message sequence.
    pub fn judge(&mut self, from: NodeId, to: NodeId) -> FaultDecision {
        let state = &mut *self.state;
        let Some(profile) = state
            .overrides
            .get(&to)
            .or_else(|| state.overrides.get(&from))
            .or(state.default_profile.as_ref())
            .copied()
        else {
            return FaultDecision::default();
        };

        let mut loss = profile.drop_probability;
        let mut bursty = false;
        if let Some(burst) = profile.burst {
            let was_bad = state.bad_links.contains(&to);
            let toggle = state.rng.gen_bool(if was_bad {
                burst.exit_probability
            } else {
                burst.enter_probability
            });
            let is_bad = was_bad ^ toggle;
            if toggle {
                if is_bad {
                    state.bad_links.insert(to);
                } else {
                    state.bad_links.remove(&to);
                }
            }
            let chain_loss = if is_bad {
                burst.bad_loss
            } else {
                burst.good_loss
            };
            // Survive both the independent and the chain loss to get through.
            loss = 1.0 - (1.0 - loss) * (1.0 - chain_loss);
            // Attribute drops to the burst class only during bad episodes; good-state
            // drops are indistinguishable from independent loss and count as such.
            bursty = is_bad;
        }
        if loss > 0.0 && state.rng.gen_bool(loss) {
            if bursty {
                state.report.burst_drops += 1;
            } else {
                state.report.injected_drops += 1;
            }
            return FaultDecision {
                drop: true,
                ..FaultDecision::default()
            };
        }

        let duplicate = profile.duplicate_probability > 0.0
            && state.rng.gen_bool(profile.duplicate_probability);
        if duplicate {
            state.report.duplicates += 1;
        }

        let mut extra_delay = SimDuration::ZERO;
        if profile.reorder_probability > 0.0 && state.rng.gen_bool(profile.reorder_probability) {
            let cap = profile.reorder_max_delay.as_millis().max(1);
            extra_delay = SimDuration::from_millis(state.rng.gen_range(1..=cap));
            state.report.reorders += 1;
        }

        let corrupt =
            profile.corrupt_probability > 0.0 && state.rng.gen_bool(profile.corrupt_probability);
        if corrupt {
            state.report.corruptions += 1;
        }

        FaultDecision {
            drop: false,
            duplicate,
            extra_delay,
            corrupt,
        }
    }

    /// The plane's RNG, for applying a corruption verdict
    /// ([`WireSize::fault_mutate`](crate::WireSize::fault_mutate)) with draws on the same
    /// deterministic stream.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.state.rng
    }
}

/// Shared timeout/retry schedule for the protocols' exchange hardening: capped
/// exponential backoff with a bounded retransmission budget.
///
/// # Examples
///
/// ```
/// use croupier_simulator::{RetryPolicy, SimDuration};
///
/// let policy = RetryPolicy::for_round_period(SimDuration::from_secs(1));
/// assert_eq!(policy.backoff(0), SimDuration::from_millis(500));
/// assert_eq!(policy.backoff(1), SimDuration::from_millis(1_000));
/// assert_eq!(policy.backoff(10), policy.cap, "backoff is capped");
/// assert!(!policy.exhausted(2));
/// assert!(policy.exhausted(3));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Timeout before the first retransmission.
    pub base: SimDuration,
    /// Upper bound on any backoff interval.
    pub cap: SimDuration,
    /// Maximum number of retransmissions before the exchange is abandoned.
    pub max_retries: u32,
}

impl RetryPolicy {
    /// The schedule the protocol crates share: first timeout at half a gossip round,
    /// doubling per attempt, capped at two rounds, at most two retransmissions.
    pub fn for_round_period(period: SimDuration) -> Self {
        RetryPolicy {
            base: SimDuration::from_millis((period.as_millis() / 2).max(1)),
            cap: SimDuration::from_millis(period.as_millis().saturating_mul(2).max(1)),
            max_retries: 2,
        }
    }

    /// The timeout armed after `attempt` transmissions have already happened
    /// (`attempt = 0` is the initial send): `base * 2^attempt`, capped.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let factor = 1u64 << attempt.min(32);
        SimDuration::from_millis(
            self.base
                .as_millis()
                .saturating_mul(factor)
                .min(self.cap.as_millis()),
        )
    }

    /// Returns `true` once `attempt` transmissions exceed the budget (initial send plus
    /// [`max_retries`](Self::max_retries) retransmissions).
    pub fn exhausted(&self, attempt: u32) -> bool {
        attempt > self.max_retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane() -> FaultPlane {
        FaultPlane::new(Seed::new(42))
    }

    #[test]
    fn fresh_plane_is_inactive_and_free() {
        let p = plane();
        assert!(!p.is_active());
        assert!(p.begin().is_none());
        assert_eq!(p.report(), FaultReport::default());
    }

    #[test]
    fn default_profile_drops_at_the_configured_rate() {
        let p = plane();
        p.set_default_profile(FaultProfile::lossy(0.3));
        let mut session = p.begin().unwrap();
        let drops = (0..10_000)
            .filter(|i| session.judge(NodeId::new(*i), NodeId::new(i + 1)).drop)
            .count();
        drop(session);
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "observed drop rate {rate}");
        assert_eq!(p.report().injected_drops, drops as u64);
        assert_eq!(p.report().burst_drops, 0);
    }

    #[test]
    fn override_beats_default_and_destination_beats_source() {
        let p = plane();
        p.set_default_profile(FaultProfile::default());
        p.set_link_profile(NodeId::new(7), FaultProfile::lossy(1.0));
        p.set_link_profile(NodeId::new(8), FaultProfile::lossy(0.0));
        let mut s = p.begin().unwrap();
        // Default profile: nothing happens.
        assert!(!s.judge(NodeId::new(1), NodeId::new(2)).drop);
        // Destination override: always drops.
        assert!(s.judge(NodeId::new(1), NodeId::new(7)).drop);
        // Source override applies when the destination has none.
        assert!(s.judge(NodeId::new(7), NodeId::new(2)).drop);
        // Destination's no-op override wins over the source's lossy one.
        assert!(!s.judge(NodeId::new(7), NodeId::new(8)).drop);
    }

    #[test]
    fn burst_chain_correlates_losses() {
        let p = plane();
        p.set_default_profile(FaultProfile {
            burst: Some(BurstLoss {
                enter_probability: 0.02,
                exit_probability: 0.2,
                good_loss: 0.0,
                bad_loss: 1.0,
            }),
            ..FaultProfile::default()
        });
        let mut s = p.begin().unwrap();
        let verdicts: Vec<bool> = (0..20_000)
            .map(|_| s.judge(NodeId::new(0), NodeId::new(1)).drop)
            .collect();
        drop(s);
        let report = p.report();
        assert!(report.burst_drops > 0, "bad state never dropped anything");
        assert_eq!(report.injected_drops, 0, "all drops belong to the chain");
        // Correlation: the probability that a drop is followed by another drop must far
        // exceed the marginal drop rate (0.8 exit leaves runs of mean length 5).
        let marginal = verdicts.iter().filter(|v| **v).count() as f64 / verdicts.len() as f64;
        let pairs = verdicts.windows(2).filter(|w| w[0]).count();
        let after_drop = verdicts.windows(2).filter(|w| w[0] && w[1]).count();
        let conditional = after_drop as f64 / pairs as f64;
        assert!(
            conditional > marginal * 2.0,
            "losses are uncorrelated: P(drop|drop)={conditional:.3} vs marginal {marginal:.3}"
        );
    }

    #[test]
    fn duplication_reordering_and_corruption_are_counted() {
        let p = plane();
        p.set_default_profile(FaultProfile::dup_reorder());
        let mut s = p.begin().unwrap();
        let mut max_delay = SimDuration::ZERO;
        for i in 0..5_000 {
            let d = s.judge(NodeId::new(i), NodeId::new(i + 1));
            assert!(!d.drop, "dup_reorder never drops");
            if d.extra_delay > max_delay {
                max_delay = d.extra_delay;
            }
        }
        drop(s);
        let report = p.report();
        assert!(report.duplicates > 400, "duplicates: {}", report.duplicates);
        assert!(report.reorders > 800, "reorders: {}", report.reorders);
        assert!(
            report.corruptions > 100,
            "corruptions: {}",
            report.corruptions
        );
        assert!(max_delay <= SimDuration::from_millis(1_500));
        assert!(max_delay > SimDuration::ZERO);
    }

    #[test]
    fn identical_seeds_draw_identical_decisions() {
        let run = || {
            let p = plane();
            p.set_default_profile(FaultProfile::lossy(0.5).with_duplicate(0.3));
            let mut s = p.begin().unwrap();
            let seq: Vec<FaultDecision> = (0..500)
                .map(|i| s.judge(NodeId::new(i % 13), NodeId::new(i % 7)))
                .collect();
            drop(s);
            (seq, p.report())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clear_deactivates_but_keeps_counters() {
        let p = plane();
        p.set_default_profile(FaultProfile::lossy(1.0));
        p.begin().unwrap().judge(NodeId::new(1), NodeId::new(2));
        p.clear();
        assert!(!p.is_active());
        assert!(p.begin().is_none());
        assert_eq!(
            p.report().injected_drops,
            1,
            "clear must not reset counters"
        );
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn invalid_probability_is_rejected() {
        plane().set_default_profile(FaultProfile::lossy(1.5));
    }

    #[test]
    fn retry_policy_backoff_doubles_and_caps() {
        let policy = RetryPolicy::for_round_period(SimDuration::from_secs(1));
        assert_eq!(policy.backoff(0).as_millis(), 500);
        assert_eq!(policy.backoff(1).as_millis(), 1_000);
        assert_eq!(policy.backoff(2).as_millis(), 2_000);
        assert_eq!(policy.backoff(3).as_millis(), 2_000, "capped at two rounds");
        assert_eq!(policy.backoff(63).as_millis(), 2_000, "no shift overflow");
        assert!(!policy.exhausted(0));
        assert!(policy.exhausted(policy.max_retries + 1));
    }

    #[test]
    fn report_totals_add_up() {
        let report = FaultReport {
            injected_drops: 3,
            burst_drops: 2,
            duplicates: 4,
            reorders: 5,
            corruptions: 6,
            retries_fired: 7,
            exchanges_abandoned: 8,
        };
        assert_eq!(report.total_drops(), 5);
        assert_eq!(report.total_injected(), 20);
    }
}
