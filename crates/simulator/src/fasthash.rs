//! A fast, deterministic hasher for the hot-path maps.
//!
//! The engines and the NAT emulation perform several map lookups per delivered message
//! (traffic ledger, NAT profiles, mapping tables). `std`'s default SipHash is
//! DoS-resistant but costs tens of nanoseconds per small key — significant when multiplied
//! by hundreds of thousands of messages per round — and its per-process random seed makes
//! iteration order vary between runs (nothing observable depends on map iteration order,
//! but a fixed seed removes one source of run-to-run noise). [`FastHasher`] is an
//! FxHash-style multiply-rotate-xor over 8-byte words with a splitmix-style finalizer:
//! ~5x faster on the word-sized keys these maps use. All keys come from the simulation
//! itself (node ids, addresses), never from untrusted input, so hash-flooding resistance
//! is not needed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from FxHash (the golden-ratio-derived constant used by rustc's hasher).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style streaming hasher. See the module documentation.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Splitmix-style finalizer: spreads the multiply's high-bit entropy back into the
        // low bits that hashbrown uses for bucket selection.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^ (h >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// The deterministic `BuildHasher` for [`FastHashMap`]/[`FastHashSet`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed with [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FastBuildHasher::default().hash_one(value)
    }

    #[test]
    fn equal_keys_hash_equal_and_deterministically() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&(1u64, 2u64)), hash_of(&(1u64, 2u64)));
        // No per-process randomness: rebuilding the hasher does not change values.
        let a = FastBuildHasher::default().hash_one(7u64);
        let b = FastBuildHasher::default().hash_one(7u64);
        assert_eq!(a, b);
    }

    #[test]
    fn nearby_keys_spread_across_low_bits() {
        // Dense node ids are the common key; the low bits (hashbrown's bucket index) must
        // not collapse for sequential ids.
        let mut low_bits = FastHashSet::default();
        for id in 0..256u64 {
            low_bits.insert(hash_of(&id) & 0xFF);
        }
        assert!(
            low_bits.len() > 128,
            "sequential ids collide too much in the low bits: {} distinct",
            low_bits.len()
        );
    }

    #[test]
    fn map_round_trips() {
        let mut map: FastHashMap<(u64, u64), u32> = FastHashMap::default();
        for i in 0..1_000u64 {
            map.insert((i, i * 3), i as u32);
        }
        assert_eq!(map.len(), 1_000);
        assert_eq!(map.get(&(500, 1_500)), Some(&500));
        assert_eq!(map.get(&(500, 1_501)), None);
    }

    #[test]
    fn byte_stream_remainder_matches_explicit_word_writes() {
        // `write` consumes 8-byte words and zero-pads the tail; an equivalent sequence of
        // explicit word/byte writes must produce the same state, which pins the remainder
        // path (dropping the tail would diverge here).
        let bytes = [1u8, 2, 3, 4, 5, 6, 7, 8, 9];
        let mut via_stream = FastHasher::default();
        via_stream.write(&bytes);
        let mut via_words = FastHasher::default();
        via_words.write_u64(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
        via_words.write_u8(bytes[8]);
        assert_eq!(via_stream.finish(), via_words.finish());
        // And the tail genuinely participates in the hash.
        let mut truncated = FastHasher::default();
        truncated.write(&bytes[..8]);
        assert_ne!(via_stream.finish(), truncated.finish());
    }
}
