//! # croupier-simulator
//!
//! A deterministic discrete-event simulation substrate for gossip protocols, built as a
//! replacement for the Kompics simulator used in the Croupier paper
//! (*Shuffling with a Croupier: NAT-Aware Peer Sampling*, ICDCS 2012).
//!
//! The crate provides:
//!
//! * a [`Simulation`] engine driving per-node [`Protocol`] state machines with periodic
//!   gossip rounds, timers and point-to-point messages,
//! * a [`ShardedSimulation`] engine executing the same protocols phase-parallel over
//!   multiple worker threads (see the [`sharded`] module for the execution model), behind
//!   the common [`SimulationEngine`] trait,
//! * pluggable [`LatencyModel`]s (constant, uniform, and a synthetic King-data-set-like
//!   model), [`LossModel`]s and [`DeliveryFilter`]s (the NAT emulation in `croupier-nat`
//!   implements the latter),
//! * a [`BootstrapRegistry`] emulating the bootstrap server that hands joining nodes a set
//!   of public nodes, and
//! * a [`TrafficLedger`] that accounts every byte sent and received per node, which the
//!   protocol-overhead experiments build on.
//!
//! Everything is deterministic: a single [`Seed`] fixes the behaviour of the
//! engine and of every node, so experiments regenerate bit-identically.
//!
//! ## Example
//!
//! ```
//! use croupier_simulator::{
//!     Context, NodeId, Protocol, Simulation, SimulationConfig, WireSize,
//! };
//!
//! /// A toy protocol: every round each node pings a random bootstrap node.
//! struct Ping {
//!     pings_received: u64,
//! }
//!
//! #[derive(Clone, Debug)]
//! struct PingMsg;
//!
//! impl WireSize for PingMsg {
//!     fn wire_size(&self) -> usize {
//!         28
//!     }
//! }
//!
//! impl Protocol for Ping {
//!     type Message = PingMsg;
//!
//!     fn on_start(&mut self, _ctx: &mut Context<'_, Self::Message>) {}
//!
//!     fn on_round(&mut self, ctx: &mut Context<'_, Self::Message>) {
//!         if let Some(peer) = ctx.bootstrap_sample(1).first().copied() {
//!             if peer != ctx.node_id() {
//!                 ctx.send(peer, PingMsg);
//!             }
//!         }
//!     }
//!
//!     fn on_message(
//!         &mut self,
//!         _from: NodeId,
//!         _msg: Self::Message,
//!         _ctx: &mut Context<'_, Self::Message>,
//!     ) {
//!         self.pings_received += 1;
//!     }
//! }
//!
//! let mut sim = Simulation::new(SimulationConfig::default().with_seed(7));
//! for i in 0..8 {
//!     let id = NodeId::new(i);
//!     sim.register_public(id);
//!     sim.add_node(id, Ping { pings_received: 0 });
//! }
//! sim.run_for_rounds(20);
//! let total: u64 = sim.nodes().map(|(_, p)| p.pings_received).sum();
//! assert!(total > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod bootstrap;
pub mod engine;
pub mod engine_api;
pub mod event;
pub mod fasthash;
pub mod faults;
pub mod inline;
pub mod latency;
pub mod loss;
pub mod network;
pub mod protocol;
pub mod rng;
pub mod scheduler;
pub mod sharded;
pub mod time;
pub mod traffic;
pub mod transport;
pub mod types;

pub use bootstrap::BootstrapRegistry;
pub use engine::{NetworkStats, Simulation, SimulationConfig};
pub use engine_api::{CompositeRoundHook, HookOps, RoundHook, SimulationEngine};
pub use fasthash::{FastBuildHasher, FastHashMap, FastHashSet};
pub use faults::{
    BurstLoss, FaultDecision, FaultPlane, FaultProfile, FaultReport, FaultSession, RetryPolicy,
    FAULT_RNG_STREAM,
};
pub use inline::InlineVec;
pub use latency::{ConstantLatency, KingLatencyModel, LatencyModel, UniformLatency};
pub use loss::{BernoulliLoss, LossModel, NoLoss};
pub use network::{DeliveryFilter, DeliveryVerdict, OpenInternet};
pub use protocol::{Context, Protocol, PssNode, TimerKey, WireSize};
pub use rng::Seed;
pub use sharded::ShardedSimulation;
pub use time::{SimDuration, SimTime};
pub use traffic::{NodeTraffic, TrafficLedger};
pub use transport::{ContextParams, SimTransport, Transport};
pub use types::{NatClass, NodeId};
