//! Fundamental identifiers shared by every crate in the workspace.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Logical identity of a node participating in the simulation.
///
/// `NodeId` is a plain 64-bit integer wrapped in a newtype so that node identities cannot
/// accidentally be mixed up with other integer quantities (round numbers, ages, counters).
///
/// # Examples
///
/// ```
/// use croupier_simulator::NodeId;
///
/// let a = NodeId::new(3);
/// let b = NodeId::new(4);
/// assert!(a < b);
/// assert_eq!(a.as_u64(), 3);
/// assert_eq!(format!("{a}"), "n3");
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates a node identifier from its raw integer value.
    pub const fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// Returns the raw integer value of this identifier.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u64 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

/// Connectivity class of a node: either directly reachable (public) or behind a NAT or
/// firewall (private).
///
/// The paper's system model only distinguishes these two classes; the finer-grained NAT
/// behaviour (filtering policy, mapping timeouts, UPnP) lives in the `croupier-nat` crate
/// and collapses onto this classification through the NAT-type identification protocol.
///
/// # Examples
///
/// ```
/// use croupier_simulator::NatClass;
///
/// assert!(NatClass::Public.is_public());
/// assert!(!NatClass::Private.is_public());
/// assert_eq!(NatClass::Public.opposite(), NatClass::Private);
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub enum NatClass {
    /// The node has a globally reachable address (open IP or UPnP-mapped port).
    #[default]
    Public,
    /// The node sits behind at least one NAT or firewall and cannot be contacted unless it
    /// initiated the exchange.
    Private,
}

impl NatClass {
    /// Returns `true` for [`NatClass::Public`].
    pub const fn is_public(self) -> bool {
        matches!(self, NatClass::Public)
    }

    /// Returns `true` for [`NatClass::Private`].
    pub const fn is_private(self) -> bool {
        matches!(self, NatClass::Private)
    }

    /// Returns the other class; handy in tests and when flipping scenarios.
    pub const fn opposite(self) -> Self {
        match self {
            NatClass::Public => NatClass::Private,
            NatClass::Private => NatClass::Public,
        }
    }
}

impl fmt::Display for NatClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NatClass::Public => write!(f, "public"),
            NatClass::Private => write!(f, "private"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_roundtrips_through_u64() {
        let id = NodeId::new(42);
        assert_eq!(u64::from(id), 42);
        assert_eq!(NodeId::from(42u64), id);
        assert_eq!(id.as_u64(), 42);
    }

    #[test]
    fn node_id_display_is_prefixed() {
        assert_eq!(NodeId::new(7).to_string(), "n7");
    }

    #[test]
    fn node_id_ordering_follows_raw_value() {
        let mut ids = vec![NodeId::new(5), NodeId::new(1), NodeId::new(3)];
        ids.sort();
        assert_eq!(ids, vec![NodeId::new(1), NodeId::new(3), NodeId::new(5)]);
    }

    #[test]
    fn node_id_hashes_distinctly() {
        let set: HashSet<NodeId> = (0..100).map(NodeId::new).collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn nat_class_predicates() {
        assert!(NatClass::Public.is_public());
        assert!(!NatClass::Public.is_private());
        assert!(NatClass::Private.is_private());
        assert!(!NatClass::Private.is_public());
    }

    #[test]
    fn nat_class_opposite_is_involutive() {
        for class in [NatClass::Public, NatClass::Private] {
            assert_eq!(class.opposite().opposite(), class);
        }
    }

    #[test]
    fn nat_class_display() {
        assert_eq!(NatClass::Public.to_string(), "public");
        assert_eq!(NatClass::Private.to_string(), "private");
    }
}
