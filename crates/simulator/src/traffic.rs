//! Per-node traffic accounting.
//!
//! Every message handed to the engine is measured through the [`WireSize`](crate::WireSize)
//! trait and charged to both its sender and (if delivered) its receiver. The overhead
//! experiment (Fig. 7a of the paper) reads average bytes-per-second per connectivity class
//! out of this ledger.

use serde::{Deserialize, Serialize};

use crate::fasthash::FastHashMap;
use crate::time::SimTime;
use crate::types::NodeId;

/// Cumulative traffic counters for one node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeTraffic {
    /// Bytes this node has put on the wire.
    pub bytes_sent: u64,
    /// Bytes delivered to this node.
    pub bytes_received: u64,
    /// Messages this node has put on the wire.
    pub messages_sent: u64,
    /// Messages delivered to this node.
    pub messages_received: u64,
    /// Messages this node sent that the network dropped (loss or NAT filtering).
    pub messages_dropped: u64,
}

impl NodeTraffic {
    /// Total bytes either sent or received by the node.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }

    /// Average total load (sent + received) in bytes per second over `duration_secs`.
    ///
    /// Returns zero if `duration_secs` is not a positive finite number.
    pub fn load_bytes_per_sec(&self, duration_secs: f64) -> f64 {
        if duration_secs.is_finite() && duration_secs > 0.0 {
            self.bytes_total() as f64 / duration_secs
        } else {
            0.0
        }
    }
}

/// Workspace-wide traffic ledger indexed by node.
///
/// The map uses the deterministic [`FastHashMap`] — the ledger is charged once per send
/// and once per delivery, which makes its lookup cost part of the message-plane hot path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrafficLedger {
    per_node: FastHashMap<NodeId, NodeTraffic>,
    window_start: SimTime,
}

impl TrafficLedger {
    /// Creates an empty ledger whose measurement window starts at time zero.
    pub fn new() -> Self {
        TrafficLedger::default()
    }

    /// Records `bytes` sent by `node`.
    pub fn record_sent(&mut self, node: NodeId, bytes: usize) {
        let entry = self.per_node.entry(node).or_default();
        entry.bytes_sent += bytes as u64;
        entry.messages_sent += 1;
    }

    /// Records `bytes` delivered to `node`.
    pub fn record_received(&mut self, node: NodeId, bytes: usize) {
        let entry = self.per_node.entry(node).or_default();
        entry.bytes_received += bytes as u64;
        entry.messages_received += 1;
    }

    /// Records that a message sent by `node` was dropped before delivery.
    pub fn record_dropped(&mut self, node: NodeId) {
        self.per_node.entry(node).or_default().messages_dropped += 1;
    }

    /// Traffic counters for `node`, if it has ever sent or received anything.
    pub fn node(&self, node: NodeId) -> Option<&NodeTraffic> {
        self.per_node.get(&node)
    }

    /// Traffic counters for `node`, defaulting to zeroes.
    pub fn node_or_default(&self, node: NodeId) -> NodeTraffic {
        self.per_node.get(&node).copied().unwrap_or_default()
    }

    /// Iterates over every node with recorded traffic.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeTraffic)> {
        self.per_node.iter().map(|(id, t)| (*id, t))
    }

    /// Number of nodes with recorded traffic.
    pub fn len(&self) -> usize {
        self.per_node.len()
    }

    /// Returns `true` when no traffic has been recorded.
    pub fn is_empty(&self) -> bool {
        self.per_node.is_empty()
    }

    /// Instant at which the current measurement window started.
    pub fn window_start(&self) -> SimTime {
        self.window_start
    }

    /// Clears all counters and restarts the measurement window at `now`.
    ///
    /// Overhead experiments call this once the overlay has reached steady state so that the
    /// reported bytes-per-second excludes the join phase.
    pub fn reset_window(&mut self, now: SimTime) {
        self.per_node.clear();
        self.window_start = now;
    }

    /// Adds every counter of `other` into this ledger.
    ///
    /// The sharded engine keeps one ledger per shard (plus one for barrier-side
    /// accounting) so workers never contend on a shared map; merging the per-shard ledgers
    /// yields the same per-node totals as a single shared ledger would, because every
    /// counter is a commutative sum.
    pub fn merge_from(&mut self, other: &TrafficLedger) {
        for (node, t) in other.iter() {
            let entry = self.per_node.entry(node).or_default();
            entry.bytes_sent += t.bytes_sent;
            entry.bytes_received += t.bytes_received;
            entry.messages_sent += t.messages_sent;
            entry.messages_received += t.messages_received;
            entry.messages_dropped += t.messages_dropped;
        }
    }

    /// Sum of bytes sent by every node.
    pub fn total_bytes_sent(&self) -> u64 {
        self.per_node.values().map(|t| t.bytes_sent).sum()
    }

    /// Sum of messages sent by every node.
    pub fn total_messages_sent(&self) -> u64 {
        self.per_node.values().map(|t| t.messages_sent).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_sent_and_received_independently() {
        let mut ledger = TrafficLedger::new();
        ledger.record_sent(NodeId::new(1), 100);
        ledger.record_sent(NodeId::new(1), 50);
        ledger.record_received(NodeId::new(1), 30);
        let t = ledger.node(NodeId::new(1)).unwrap();
        assert_eq!(t.bytes_sent, 150);
        assert_eq!(t.bytes_received, 30);
        assert_eq!(t.messages_sent, 2);
        assert_eq!(t.messages_received, 1);
        assert_eq!(t.bytes_total(), 180);
    }

    #[test]
    fn unknown_node_defaults_to_zero() {
        let ledger = TrafficLedger::new();
        assert!(ledger.node(NodeId::new(9)).is_none());
        assert_eq!(
            ledger.node_or_default(NodeId::new(9)),
            NodeTraffic::default()
        );
    }

    #[test]
    fn load_per_second_uses_duration() {
        let mut ledger = TrafficLedger::new();
        ledger.record_sent(NodeId::new(1), 500);
        ledger.record_received(NodeId::new(1), 500);
        let t = ledger.node_or_default(NodeId::new(1));
        assert_eq!(t.load_bytes_per_sec(10.0), 100.0);
        assert_eq!(t.load_bytes_per_sec(0.0), 0.0);
        assert_eq!(t.load_bytes_per_sec(f64::NAN), 0.0);
    }

    #[test]
    fn reset_window_clears_counters_and_moves_origin() {
        let mut ledger = TrafficLedger::new();
        ledger.record_sent(NodeId::new(1), 10);
        ledger.reset_window(SimTime::from_secs(30));
        assert!(ledger.is_empty());
        assert_eq!(ledger.window_start(), SimTime::from_secs(30));
    }

    #[test]
    fn merge_from_sums_counters_per_node() {
        let mut a = TrafficLedger::new();
        a.record_sent(NodeId::new(1), 10);
        a.record_received(NodeId::new(2), 5);
        let mut b = TrafficLedger::new();
        b.record_sent(NodeId::new(1), 30);
        b.record_dropped(NodeId::new(1));
        b.record_sent(NodeId::new(3), 7);
        a.merge_from(&b);
        let n1 = a.node_or_default(NodeId::new(1));
        assert_eq!(n1.bytes_sent, 40);
        assert_eq!(n1.messages_sent, 2);
        assert_eq!(n1.messages_dropped, 1);
        assert_eq!(a.node_or_default(NodeId::new(2)).bytes_received, 5);
        assert_eq!(a.node_or_default(NodeId::new(3)).bytes_sent, 7);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn ledgers_with_same_counters_compare_equal() {
        let mut a = TrafficLedger::new();
        let mut b = TrafficLedger::new();
        a.record_sent(NodeId::new(1), 10);
        b.record_sent(NodeId::new(1), 10);
        assert_eq!(a, b);
        b.record_dropped(NodeId::new(1));
        assert_ne!(a, b);
    }

    #[test]
    fn totals_aggregate_across_nodes() {
        let mut ledger = TrafficLedger::new();
        ledger.record_sent(NodeId::new(1), 10);
        ledger.record_sent(NodeId::new(2), 20);
        ledger.record_dropped(NodeId::new(2));
        assert_eq!(ledger.total_bytes_sent(), 30);
        assert_eq!(ledger.total_messages_sent(), 2);
        assert_eq!(ledger.node_or_default(NodeId::new(2)).messages_dropped, 1);
        assert_eq!(ledger.len(), 2);
    }
}
