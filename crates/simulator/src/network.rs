//! Reachability filtering for message delivery.
//!
//! The engine asks a [`DeliveryFilter`] two things for every message: it notifies the filter
//! when a packet leaves its sender (so NAT bindings can be created or refreshed) and asks
//! whether the packet can be delivered to its destination (so NAT filtering and firewall
//! rules can be enforced). The `croupier-nat` crate provides the NAT-aware implementation;
//! [`OpenInternet`] is the trivial filter used for NAT-free baselines such as Cyclon.

use crate::time::SimTime;
use crate::types::NodeId;

/// Outcome of a delivery decision, with the reason a message was blocked.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeliveryVerdict {
    /// The message reaches its destination.
    Deliver,
    /// The destination's NAT or firewall filtered the packet.
    BlockedByNat,
    /// The destination does not exist or has left the system.
    NoSuchDestination,
}

impl DeliveryVerdict {
    /// Returns `true` when the verdict allows delivery.
    pub fn is_delivered(self) -> bool {
        matches!(self, DeliveryVerdict::Deliver)
    }
}

/// Decides whether messages can traverse the (possibly NAT-ed) network.
///
/// Implementations are consulted by the [`Simulation`](crate::Simulation) engine:
///
/// 1. [`on_send`](DeliveryFilter::on_send) fires when a message leaves its sender — stateful
///    filters use this to create or refresh NAT bindings keyed on (sender, destination).
/// 2. [`can_deliver`](DeliveryFilter::can_deliver) fires when the message arrives at the
///    destination side of the network — filters decide whether the packet passes the
///    destination's NAT/firewall.
pub trait DeliveryFilter {
    /// Called when `from` emits a packet addressed to `to` at time `now`.
    fn on_send(&mut self, from: NodeId, to: NodeId, now: SimTime);

    /// Returns the delivery verdict for a packet from `from` arriving at `to` at `now`.
    fn can_deliver(&mut self, from: NodeId, to: NodeId, now: SimTime) -> DeliveryVerdict;

    /// Called when a node permanently leaves the simulation (failure or churn departure).
    fn on_node_removed(&mut self, _node: NodeId) {}

    /// Called when a node joins the simulation.
    fn on_node_added(&mut self, _node: NodeId) {}
}

/// A filter that lets every packet through: the open Internet without NATs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpenInternet;

impl DeliveryFilter for OpenInternet {
    fn on_send(&mut self, _from: NodeId, _to: NodeId, _now: SimTime) {}

    fn can_deliver(&mut self, _from: NodeId, _to: NodeId, _now: SimTime) -> DeliveryVerdict {
        DeliveryVerdict::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_internet_always_delivers() {
        let mut f = OpenInternet;
        for i in 0..10 {
            f.on_send(NodeId::new(i), NodeId::new(i + 1), SimTime::from_millis(i));
            assert_eq!(
                f.can_deliver(NodeId::new(i), NodeId::new(i + 1), SimTime::from_millis(i)),
                DeliveryVerdict::Deliver
            );
        }
    }

    #[test]
    fn verdict_predicate() {
        assert!(DeliveryVerdict::Deliver.is_delivered());
        assert!(!DeliveryVerdict::BlockedByNat.is_delivered());
        assert!(!DeliveryVerdict::NoSuchDestination.is_delivered());
    }
}
